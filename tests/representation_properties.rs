//! Property-based integration tests over the public API: random kernels from
//! the catalogue, random sizes, random launch configurations — the structural
//! invariants of ParaGraph and the monotonicity properties of the simulator
//! must always hold.

use paragraph::advisor::{instantiate, LaunchConfig, Variant};
use paragraph::core::{build, BuilderConfig, EdgeType, Representation};
use paragraph::frontend::parse;
use paragraph::kernels::all_kernels;
use paragraph::perfsim::{measure, NoiseModel, Platform};
use proptest::prelude::*;

fn arb_kernel_index() -> impl Strategy<Value = usize> {
    0..all_kernels().len()
}

fn arb_launch() -> impl Strategy<Value = LaunchConfig> {
    (1u64..=160, 1u64..=256).prop_map(|(teams, threads)| LaunchConfig { teams, threads })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Graph invariants hold for arbitrary kernels, variants and launches.
    #[test]
    fn paragraph_invariants_hold_for_catalogue_kernels(
        kernel_idx in arb_kernel_index(),
        variant_idx in 0usize..6,
        launch in arb_launch(),
        size_choice in 0usize..4,
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_idx];
        let variant = Variant::ALL[variant_idx];
        prop_assume!(variant.applicable_to(kernel));

        // Pick one of the smaller sweep values to keep graphs small.
        let sizes: std::collections::HashMap<String, i64> = kernel
            .sizes
            .iter()
            .map(|p| (p.name.to_string(), p.sweep[size_choice.min(p.sweep.len() - 1)]))
            .collect();

        let instance = instantiate(kernel, variant, &sizes, launch);
        let ast = parse(&instance.source).unwrap();
        let graph = build(
            &ast,
            &BuilderConfig::for_representation(Representation::ParaGraph)
                .with_launch(launch.teams, launch.threads),
        );
        graph.validate().unwrap();

        // Child edges form a spanning tree; weights are positive and finite.
        prop_assert_eq!(
            graph.edges_of_type(EdgeType::Child).count(),
            graph.node_count() - 1
        );
        prop_assert!(graph.edges_of_type(EdgeType::Child).all(|e| e.weight > 0.0));
        // Loop-flow edges exist for every ForStmt (4 per canonical loop).
        let loops = ast.find_all(paragraph::frontend::AstKind::ForStmt).len();
        prop_assert_eq!(graph.edges_of_type(EdgeType::ForExec).count(), 2 * loops);
        prop_assert_eq!(graph.edges_of_type(EdgeType::ForNext).count(), 2 * loops);
    }

    /// The simulator never produces negative, zero or non-finite runtimes and
    /// transfer-bearing variants are never faster than their transfer-free
    /// counterparts.
    #[test]
    fn simulated_runtimes_are_sane(
        kernel_idx in arb_kernel_index(),
        launch in arb_launch(),
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_idx];
        let sizes = kernel.default_sizes();
        let noise = NoiseModel::disabled();

        let gpu = instantiate(kernel, Variant::Gpu, &sizes, launch);
        let gpu_mem = instantiate(kernel, Variant::GpuMem, &sizes, launch);
        let t_gpu = measure(&gpu, Platform::CoronaMi50, &noise).unwrap().runtime_ms;
        let t_mem = measure(&gpu_mem, Platform::CoronaMi50, &noise).unwrap().runtime_ms;
        prop_assert!(t_gpu > 0.0 && t_gpu.is_finite());
        prop_assert!(t_mem >= t_gpu, "adding transfers cannot make a kernel faster");
    }

    /// More CPU threads never increase the simulated runtime by more than the
    /// fork/join overhead (weak monotonicity of the CPU model).
    #[test]
    fn cpu_threads_weakly_improve_runtime(kernel_idx in arb_kernel_index()) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_idx];
        let sizes = kernel.default_sizes();
        let noise = NoiseModel::disabled();
        let t1 = measure(
            &instantiate(kernel, Variant::Cpu, &sizes, LaunchConfig { teams: 1, threads: 1 }),
            Platform::SummitPower9,
            &noise,
        )
        .unwrap()
        .runtime_ms;
        let t16 = measure(
            &instantiate(kernel, Variant::Cpu, &sizes, LaunchConfig { teams: 1, threads: 16 }),
            Platform::SummitPower9,
            &noise,
        )
        .unwrap()
        .runtime_ms;
        // Allow a small tolerance for the per-thread overhead term.
        prop_assert!(t16 <= t1 * 1.05 + 0.05, "16 threads ({t16} ms) much slower than 1 ({t1} ms)");
    }
}
