//! End-to-end integration tests spanning the whole workspace: source →
//! variants → graphs → simulated runtimes → trained model → predictions.

use paragraph::advisor::{instantiate, LaunchConfig, Variant};
use paragraph::core::{build, BuilderConfig, EdgeType, Representation};
use paragraph::dataset::{
    collect_platform, collect_platform_unsharded, generate_platform, DatasetScale, PipelineConfig,
    ShardPlan, ShardStore,
};
use paragraph::engine::{Engine, SimulatorBackend};
use paragraph::frontend::parse;
use paragraph::gnn::{self, TrainConfig};
use paragraph::kernels::{all_kernels, find_kernel};
use paragraph::perfsim::{measure, NoiseModel, Platform};
use proptest::prelude::*;
use std::path::PathBuf;

fn fast_pipeline() -> PipelineConfig {
    PipelineConfig {
        scale: DatasetScale::Fast,
        seed: 17,
        noise_sigma: 0.03,
    }
}

/// A unique, throwaway shard-store directory for one test (or one proptest
/// case), so cold/warm behaviour is controlled by the test and not by
/// whatever earlier runs left in the workspace store.
fn temp_store(tag: &str) -> (ShardStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "paragraph-pipeline-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    (ShardStore::at(dir.clone()), dir)
}

/// The engine a generation run measures through — same construction the
/// pipeline uses, for tests that execute shards by hand.
fn measurement_engine(platform: Platform, config: &PipelineConfig) -> Engine {
    Engine::builder()
        .platform(platform)
        .backend(SimulatorBackend::new(NoiseModel {
            sigma: config.noise_sigma,
            seed: config.seed,
        }))
        .build()
}

/// Every kernel of the catalogue survives the whole static pipeline for every
/// applicable variant: instantiate → parse → build graph → simulate runtime.
#[test]
fn every_kernel_variant_flows_through_the_whole_pipeline() {
    let launch_gpu = LaunchConfig {
        teams: 80,
        threads: 128,
    };
    let launch_cpu = LaunchConfig {
        teams: 1,
        threads: 16,
    };
    for kernel in all_kernels() {
        let sizes = kernel.default_sizes();
        for variant in Variant::applicable_variants(&kernel) {
            let launch = if variant.is_gpu() {
                launch_gpu
            } else {
                launch_cpu
            };
            let instance = instantiate(&kernel, variant, &sizes, launch);
            let ast = parse(&instance.source)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.full_name(), variant.name()));
            let graph = build(
                &ast,
                &BuilderConfig::for_representation(Representation::ParaGraph)
                    .with_launch(launch.teams, launch.threads),
            );
            graph.validate().unwrap();
            assert!(
                graph.node_count() > 20,
                "{} graph suspiciously small",
                kernel.full_name()
            );

            let platform = if variant.is_gpu() {
                Platform::SummitV100
            } else {
                Platform::SummitPower9
            };
            let m = measure(&instance, platform, &NoiseModel::default()).unwrap();
            assert!(
                m.runtime_ms > 0.0 && m.runtime_ms.is_finite(),
                "{} [{}] produced a bad runtime {}",
                kernel.full_name(),
                variant.name(),
                m.runtime_ms
            );
        }
    }
}

/// The weighted representation reflects the launch configuration: more
/// threads means smaller per-thread loop weights.
#[test]
fn edge_weights_shrink_as_parallelism_grows() {
    let mm = find_kernel("MM/matmul").unwrap();
    let sizes = mm.default_sizes();

    let weight_for = |threads: u64| {
        let instance = instantiate(
            &mm,
            Variant::Cpu,
            &sizes,
            LaunchConfig { teams: 1, threads },
        );
        let ast = parse(&instance.source).unwrap();
        let graph = build(
            &ast,
            &BuilderConfig::for_representation(Representation::ParaGraph).with_launch(1, threads),
        );
        graph.stats().max_edge_weight
    };
    let serial = weight_for(1);
    let parallel = weight_for(16);
    assert!(
        parallel < serial,
        "per-thread weights must shrink with more threads ({serial} -> {parallel})"
    );
}

/// GPU offloading beats the CPU for large compute-heavy kernels and loses for
/// tiny transfer-dominated ones — the crossover the cost model must expose.
#[test]
fn simulator_reproduces_the_cpu_gpu_crossover() {
    let mm = find_kernel("MM/matmul").unwrap();
    let gpu_launch = LaunchConfig {
        teams: 160,
        threads: 256,
    };
    let cpu_launch = LaunchConfig {
        teams: 1,
        threads: 22,
    };
    let noise = NoiseModel::disabled();

    // Large matmul: GPU (even with transfers) wins.
    let mut large = std::collections::HashMap::new();
    large.insert("N".to_string(), 1024i64);
    let gpu_large = measure(
        &instantiate(&mm, Variant::GpuMem, &large, gpu_launch),
        Platform::SummitV100,
        &noise,
    )
    .unwrap();
    let cpu_large = measure(
        &instantiate(&mm, Variant::Cpu, &large, cpu_launch),
        Platform::SummitPower9,
        &noise,
    )
    .unwrap();
    assert!(
        gpu_large.runtime_ms < cpu_large.runtime_ms,
        "large matmul: GPU {} ms should beat CPU {} ms",
        gpu_large.runtime_ms,
        cpu_large.runtime_ms
    );

    // Tiny kernel: the CPU avoids launch + transfer overheads and wins.
    let pf = find_kernel("ParticleFilter/init_weights").unwrap();
    let mut tiny = std::collections::HashMap::new();
    tiny.insert("P".to_string(), 16384i64);
    let gpu_tiny = measure(
        &instantiate(&pf, Variant::GpuMem, &tiny, gpu_launch),
        Platform::SummitV100,
        &noise,
    )
    .unwrap();
    let cpu_tiny = measure(
        &instantiate(&pf, Variant::Cpu, &tiny, cpu_launch),
        Platform::SummitPower9,
        &noise,
    )
    .unwrap();
    assert!(
        cpu_tiny.runtime_ms < gpu_tiny.runtime_ms,
        "tiny kernel: CPU {} ms should beat GPU-with-transfers {} ms",
        cpu_tiny.runtime_ms,
        gpu_tiny.runtime_ms
    );
}

/// Training the GNN end to end on a small dataset reaches a sane error and
/// the ablation ordering (ParaGraph at least as good as Raw AST) holds.
#[test]
fn end_to_end_training_and_ablation_ordering() {
    let dataset = collect_platform(Platform::SummitV100, &fast_pipeline());
    assert!(dataset.len() > 100);

    let paragraph = gnn::train(
        &dataset,
        &TrainConfig {
            representation: Representation::ParaGraph,
            epochs: 8,
            ..TrainConfig::fast()
        },
    )
    .unwrap();
    let raw = gnn::train(
        &dataset,
        &TrainConfig {
            representation: Representation::RawAst,
            epochs: 8,
            ..TrainConfig::fast()
        },
    )
    .unwrap();
    assert!(
        paragraph.norm_rmse < 0.35,
        "ParaGraph norm RMSE {}",
        paragraph.norm_rmse
    );
    // At this smoke scale (a few hundred points, a handful of epochs, a tiny
    // hidden dimension) the representation ordering is noisy; the full
    // Table IV comparison runs at bench scale. Here we only require that the
    // weighted representation stays in the same ballpark as the raw AST and
    // that both models produce sane errors.
    assert!(
        paragraph.rmse_ms <= raw.rmse_ms * 1.5,
        "ParaGraph ({}) is dramatically worse than Raw AST ({})",
        paragraph.rmse_ms,
        raw.rmse_ms
    );
    assert!(raw.norm_rmse < 0.5, "Raw AST norm RMSE {}", raw.norm_rmse);
}

/// The COMPOFF baseline trains on the same dataset and produces finite,
/// comparable errors on the same validation split.
#[test]
fn compoff_baseline_runs_on_the_same_split() {
    let dataset = collect_platform(Platform::SummitV100, &fast_pipeline());
    let compoff = paragraph::compoff::train(
        &dataset,
        &paragraph::compoff::CompoffConfig {
            seed: 17,
            ..paragraph::compoff::CompoffConfig::fast()
        },
    );
    let gnn_outcome = gnn::train(
        &dataset,
        &TrainConfig {
            seed: 17,
            epochs: 8,
            ..TrainConfig::fast()
        },
    )
    .unwrap();
    // Identical validation points (same split seed).
    let mut compoff_ids: Vec<usize> = compoff.validation.iter().map(|p| p.id).collect();
    let mut gnn_ids: Vec<usize> = gnn_outcome.validation.iter().map(|p| p.id).collect();
    compoff_ids.sort_unstable();
    gnn_ids.sort_unstable();
    assert_eq!(compoff_ids, gnn_ids);
    assert!(compoff.rmse_ms.is_finite() && compoff.rmse_ms >= 0.0);
}

/// The graph representations are consistent across the dataset: every point
/// yields a valid graph for all three ablation variants.
#[test]
fn all_dataset_graphs_are_valid_for_every_representation() {
    let dataset = collect_platform(Platform::CoronaEpyc7401, &fast_pipeline());
    for point in dataset.points.iter().take(50) {
        for representation in Representation::ALL {
            let graph = point.build_graph(representation);
            graph.validate().unwrap();
            if representation == Representation::RawAst {
                assert_eq!(graph.edge_count(), graph.node_count() - 1);
            } else {
                assert!(graph.edges_of_type(EdgeType::NextToken).count() > 0);
            }
        }
    }
}

/// The tentpole guarantee of the sharded rewrite: for the same
/// configuration, the sharded, store-backed, engine-routed pipeline
/// produces a dataset bit-identical to the pre-shard reference sweep —
/// same points, same `f64` labels, same ids, same order.
#[test]
fn sharded_default_scale_is_bit_identical_to_the_reference_pipeline() {
    let config = PipelineConfig {
        scale: DatasetScale::Default,
        seed: 42,
        noise_sigma: 0.04,
    };
    let reference = collect_platform_unsharded(Platform::SummitV100, &config);
    // `collect_platform` is the sharded path against the workspace store;
    // run it twice so both the cold (measure + persist) and the warm
    // (resume from artifacts, including the JSON round-trip of every f64
    // label) paths are held to bit-identity.
    let cold_or_warm = collect_platform(Platform::SummitV100, &config);
    let warm = collect_platform(Platform::SummitV100, &config);
    assert_eq!(reference, cold_or_warm);
    assert_eq!(reference, warm);
}

/// A second run over an already-populated store must resume every shard
/// (zero misses) and be at least twice as fast as the cold run — the
/// pipeline's reason to exist. Wall-clock ratios are noisy on loaded CI
/// runners, so the timing claim gets three attempts (each with a fresh
/// store); the functional resume assertions are checked on every attempt.
#[test]
fn warm_resume_hits_every_shard_and_is_at_least_twice_as_fast() {
    let config = PipelineConfig {
        scale: DatasetScale::Fast,
        seed: 2024,
        noise_sigma: 0.03,
    };
    let mut ratios = Vec::new();
    for attempt in 0..3 {
        let (store, dir) = temp_store(&format!("warm-resume-{attempt}"));
        let cold = generate_platform(Platform::CoronaMi50, &config, &store);
        assert_eq!(cold.summary.shard_hits, 0, "store must start cold");
        assert!(cold.summary.instances_measured > 0);

        let warm = generate_platform(Platform::CoronaMi50, &config, &store);
        assert_eq!(warm.summary.shard_misses, 0, "warm run must miss nothing");
        assert_eq!(warm.summary.shard_hits, warm.summary.shards_total);
        assert_eq!(warm.summary.instances_measured, 0);
        assert_eq!(cold.dataset, warm.dataset);
        let _ = std::fs::remove_dir_all(dir);

        ratios.push(cold.summary.wall_ms / warm.summary.wall_ms.max(1e-6));
        if *ratios.last().unwrap() >= 2.0 {
            return;
        }
    }
    panic!("warm resume never reached 2x over cold in three attempts: ratios {ratios:?}");
}

/// Deterministic Fisher-Yates over a xorshift stream: the proptest shim
/// supplies integers, the test derives the permutation.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    seed |= 1;
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        order.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Property: whatever order shards complete in, and wherever a run is
    /// interrupted and resumed, the merged dataset is byte-identical to the
    /// reference sweep for a fixed seed. The first `resume_at` shards (in a
    /// random permutation) are executed by hand and persisted — the
    /// "interrupted first run" — then the pipeline finishes the job from
    /// the half-populated store.
    #[test]
    fn any_shard_completion_order_and_resume_point_is_byte_identical(
        perm_seed in 0u64..1_000_000,
        resume_fraction in 0usize..=100,
    ) {
        let config = PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 17,
            noise_sigma: 0.03,
        };
        let platform = Platform::SummitPower9;
        let (store, dir) = temp_store(&format!("order-{perm_seed}-{resume_fraction}"));

        let plan = ShardPlan::plan(platform, &config);
        let order = permutation(plan.shards.len(), perm_seed);
        let resume_at = plan.shards.len() * resume_fraction / 100;
        let engine = measurement_engine(platform, &config);
        for &i in order.iter().take(resume_at) {
            let (labels, _) = plan.shards[i].measure(&engine);
            store.save(&plan.shards[i], &labels);
        }

        let outcome = generate_platform(platform, &config, &store);
        prop_assert_eq!(outcome.summary.shard_hits, resume_at);
        prop_assert_eq!(
            outcome.summary.shard_misses,
            plan.shards.len() - resume_at
        );
        let reference = collect_platform_unsharded(platform, &config);
        prop_assert_eq!(&outcome.dataset, &reference);
        // Byte-identical, not merely equal: serialize both and compare.
        let a = serde_json::to_string(&outcome.dataset).unwrap();
        let b = serde_json::to_string(&reference).unwrap();
        prop_assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(dir);
    }
}
