//! End-to-end integration tests spanning the whole workspace: source →
//! variants → graphs → simulated runtimes → trained model → predictions.

use paragraph::advisor::{instantiate, LaunchConfig, Variant};
use paragraph::core::{build, BuilderConfig, EdgeType, Representation};
use paragraph::dataset::{collect_platform, DatasetScale, PipelineConfig};
use paragraph::frontend::parse;
use paragraph::gnn::{self, TrainConfig};
use paragraph::kernels::{all_kernels, find_kernel};
use paragraph::perfsim::{measure, NoiseModel, Platform};

fn fast_pipeline() -> PipelineConfig {
    PipelineConfig {
        scale: DatasetScale::Fast,
        seed: 17,
        noise_sigma: 0.03,
    }
}

/// Every kernel of the catalogue survives the whole static pipeline for every
/// applicable variant: instantiate → parse → build graph → simulate runtime.
#[test]
fn every_kernel_variant_flows_through_the_whole_pipeline() {
    let launch_gpu = LaunchConfig {
        teams: 80,
        threads: 128,
    };
    let launch_cpu = LaunchConfig {
        teams: 1,
        threads: 16,
    };
    for kernel in all_kernels() {
        let sizes = kernel.default_sizes();
        for variant in Variant::applicable_variants(&kernel) {
            let launch = if variant.is_gpu() {
                launch_gpu
            } else {
                launch_cpu
            };
            let instance = instantiate(&kernel, variant, &sizes, launch);
            let ast = parse(&instance.source)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.full_name(), variant.name()));
            let graph = build(
                &ast,
                &BuilderConfig::for_representation(Representation::ParaGraph)
                    .with_launch(launch.teams, launch.threads),
            );
            graph.validate().unwrap();
            assert!(
                graph.node_count() > 20,
                "{} graph suspiciously small",
                kernel.full_name()
            );

            let platform = if variant.is_gpu() {
                Platform::SummitV100
            } else {
                Platform::SummitPower9
            };
            let m = measure(&instance, platform, &NoiseModel::default()).unwrap();
            assert!(
                m.runtime_ms > 0.0 && m.runtime_ms.is_finite(),
                "{} [{}] produced a bad runtime {}",
                kernel.full_name(),
                variant.name(),
                m.runtime_ms
            );
        }
    }
}

/// The weighted representation reflects the launch configuration: more
/// threads means smaller per-thread loop weights.
#[test]
fn edge_weights_shrink_as_parallelism_grows() {
    let mm = find_kernel("MM/matmul").unwrap();
    let sizes = mm.default_sizes();

    let weight_for = |threads: u64| {
        let instance = instantiate(
            &mm,
            Variant::Cpu,
            &sizes,
            LaunchConfig { teams: 1, threads },
        );
        let ast = parse(&instance.source).unwrap();
        let graph = build(
            &ast,
            &BuilderConfig::for_representation(Representation::ParaGraph).with_launch(1, threads),
        );
        graph.stats().max_edge_weight
    };
    let serial = weight_for(1);
    let parallel = weight_for(16);
    assert!(
        parallel < serial,
        "per-thread weights must shrink with more threads ({serial} -> {parallel})"
    );
}

/// GPU offloading beats the CPU for large compute-heavy kernels and loses for
/// tiny transfer-dominated ones — the crossover the cost model must expose.
#[test]
fn simulator_reproduces_the_cpu_gpu_crossover() {
    let mm = find_kernel("MM/matmul").unwrap();
    let gpu_launch = LaunchConfig {
        teams: 160,
        threads: 256,
    };
    let cpu_launch = LaunchConfig {
        teams: 1,
        threads: 22,
    };
    let noise = NoiseModel::disabled();

    // Large matmul: GPU (even with transfers) wins.
    let mut large = std::collections::HashMap::new();
    large.insert("N".to_string(), 1024i64);
    let gpu_large = measure(
        &instantiate(&mm, Variant::GpuMem, &large, gpu_launch),
        Platform::SummitV100,
        &noise,
    )
    .unwrap();
    let cpu_large = measure(
        &instantiate(&mm, Variant::Cpu, &large, cpu_launch),
        Platform::SummitPower9,
        &noise,
    )
    .unwrap();
    assert!(
        gpu_large.runtime_ms < cpu_large.runtime_ms,
        "large matmul: GPU {} ms should beat CPU {} ms",
        gpu_large.runtime_ms,
        cpu_large.runtime_ms
    );

    // Tiny kernel: the CPU avoids launch + transfer overheads and wins.
    let pf = find_kernel("ParticleFilter/init_weights").unwrap();
    let mut tiny = std::collections::HashMap::new();
    tiny.insert("P".to_string(), 16384i64);
    let gpu_tiny = measure(
        &instantiate(&pf, Variant::GpuMem, &tiny, gpu_launch),
        Platform::SummitV100,
        &noise,
    )
    .unwrap();
    let cpu_tiny = measure(
        &instantiate(&pf, Variant::Cpu, &tiny, cpu_launch),
        Platform::SummitPower9,
        &noise,
    )
    .unwrap();
    assert!(
        cpu_tiny.runtime_ms < gpu_tiny.runtime_ms,
        "tiny kernel: CPU {} ms should beat GPU-with-transfers {} ms",
        cpu_tiny.runtime_ms,
        gpu_tiny.runtime_ms
    );
}

/// Training the GNN end to end on a small dataset reaches a sane error and
/// the ablation ordering (ParaGraph at least as good as Raw AST) holds.
#[test]
fn end_to_end_training_and_ablation_ordering() {
    let dataset = collect_platform(Platform::SummitV100, &fast_pipeline());
    assert!(dataset.len() > 100);

    let paragraph = gnn::train(
        &dataset,
        &TrainConfig {
            representation: Representation::ParaGraph,
            epochs: 8,
            ..TrainConfig::fast()
        },
    );
    let raw = gnn::train(
        &dataset,
        &TrainConfig {
            representation: Representation::RawAst,
            epochs: 8,
            ..TrainConfig::fast()
        },
    );
    assert!(
        paragraph.norm_rmse < 0.35,
        "ParaGraph norm RMSE {}",
        paragraph.norm_rmse
    );
    // At this smoke scale (a few hundred points, a handful of epochs, a tiny
    // hidden dimension) the representation ordering is noisy; the full
    // Table IV comparison runs at bench scale. Here we only require that the
    // weighted representation stays in the same ballpark as the raw AST and
    // that both models produce sane errors.
    assert!(
        paragraph.rmse_ms <= raw.rmse_ms * 1.5,
        "ParaGraph ({}) is dramatically worse than Raw AST ({})",
        paragraph.rmse_ms,
        raw.rmse_ms
    );
    assert!(raw.norm_rmse < 0.5, "Raw AST norm RMSE {}", raw.norm_rmse);
}

/// The COMPOFF baseline trains on the same dataset and produces finite,
/// comparable errors on the same validation split.
#[test]
fn compoff_baseline_runs_on_the_same_split() {
    let dataset = collect_platform(Platform::SummitV100, &fast_pipeline());
    let compoff = paragraph::compoff::train(
        &dataset,
        &paragraph::compoff::CompoffConfig {
            seed: 17,
            ..paragraph::compoff::CompoffConfig::fast()
        },
    );
    let gnn_outcome = gnn::train(
        &dataset,
        &TrainConfig {
            seed: 17,
            epochs: 8,
            ..TrainConfig::fast()
        },
    );
    // Identical validation points (same split seed).
    let mut compoff_ids: Vec<usize> = compoff.validation.iter().map(|p| p.id).collect();
    let mut gnn_ids: Vec<usize> = gnn_outcome.validation.iter().map(|p| p.id).collect();
    compoff_ids.sort_unstable();
    gnn_ids.sort_unstable();
    assert_eq!(compoff_ids, gnn_ids);
    assert!(compoff.rmse_ms.is_finite() && compoff.rmse_ms >= 0.0);
}

/// The graph representations are consistent across the dataset: every point
/// yields a valid graph for all three ablation variants.
#[test]
fn all_dataset_graphs_are_valid_for_every_representation() {
    let dataset = collect_platform(Platform::CoronaEpyc7401, &fast_pipeline());
    for point in dataset.points.iter().take(50) {
        for representation in Representation::ALL {
            let graph = point.build_graph(representation);
            graph.validate().unwrap();
            if representation == Representation::RawAst {
                assert_eq!(graph.edge_count(), graph.node_count() - 1);
            } else {
                assert!(graph.edges_of_type(EdgeType::NextToken).count() > 0);
            }
        }
    }
}
