//! Integration tests of the unified prediction engine: all three backends
//! serve the same request shape, the simulator backend reproduces the legacy
//! `rank_variants_by_simulation` output exactly, and repeated requests hit
//! the frontend cache.

use paragraph::advisor::LaunchConfig;
use paragraph::compoff;
use paragraph::compoff::CompoffBackend;
use paragraph::dataset::{collect_platform, DatasetScale, PipelineConfig};
use paragraph::engine::{AdviseRequest, Engine, SimulatorBackend};
use paragraph::gnn::GnnBackend;
use paragraph::gnn::{TrainConfig, TrainedModel};
use paragraph::kernels::find_kernel;
use paragraph::perfsim::Platform;

const PLATFORM: Platform = Platform::SummitV100;
const LAUNCH: LaunchConfig = LaunchConfig {
    teams: 80,
    threads: 128,
};

fn fast_dataset() -> paragraph::dataset::PlatformDataset {
    collect_platform(
        PLATFORM,
        &PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 17,
            noise_sigma: 0.03,
        },
    )
}

/// All three backends rank the same kernel through the same request shape
/// without panicking, and produce positive, finite, sorted predictions.
#[test]
fn all_three_backends_rank_the_same_kernel() {
    let dataset = fast_dataset();
    let (bundle, _) = TrainedModel::fit(&dataset, &TrainConfig::fast()).unwrap();
    let compoff_model = compoff::train_model(&dataset, &compoff::CompoffConfig::fast());

    let engines = [
        Engine::builder()
            .platform(PLATFORM)
            .backend(SimulatorBackend::noise_free())
            .build(),
        Engine::builder()
            .platform(PLATFORM)
            .backend(GnnBackend::new(bundle, PLATFORM))
            .build(),
        Engine::builder()
            .platform(PLATFORM)
            .backend(CompoffBackend::new(compoff_model))
            .build(),
    ];

    let request = AdviseRequest::catalog("MM/matmul").with_launch(LAUNCH);
    let mut backends_seen = Vec::new();
    for engine in &engines {
        let report = engine.advise(&request).unwrap();
        backends_seen.push(report.backend.clone());
        assert_eq!(
            report.rankings.len(),
            4,
            "{}: four GPU variants expected",
            report.backend
        );
        assert!(
            report.failures.is_empty(),
            "{}: no failures expected",
            report.backend
        );
        assert!(
            report
                .rankings
                .iter()
                .all(|r| r.predicted_ms.is_finite() && r.predicted_ms >= 0.0),
            "{}: predictions must be finite and non-negative",
            report.backend
        );
        assert!(
            report
                .rankings
                .windows(2)
                .all(|w| w[0].predicted_ms <= w[1].predicted_ms),
            "{}: rankings must be sorted fastest-first",
            report.backend
        );
        assert!(report.rankings.iter().all(|r| r.variant.unwrap().is_gpu()));
    }
    assert_eq!(backends_seen, vec!["simulator", "gnn", "compoff"]);
}

/// The engine-backed `rank_variants_by_simulation` shim reproduces the
/// legacy free-function output exactly — same variants, same order, same
/// floating-point runtimes.
#[test]
#[allow(deprecated)]
fn simulator_backend_matches_legacy_ranking_exactly() {
    for kernel_name in ["MM/matmul", "MV/matvec", "Laplace/copy"] {
        let kernel = find_kernel(kernel_name).unwrap();
        let sizes = kernel.default_sizes();

        // The legacy implementation, reproduced inline from the pre-engine
        // umbrella crate (this is the byte-for-byte behaviour contract).
        let noise = paragraph::perfsim::NoiseModel::disabled();
        let mut legacy: Vec<(paragraph::advisor::Variant, f64)> =
            paragraph::advisor::Variant::applicable_variants(&kernel)
                .into_iter()
                .filter(|v| v.is_gpu() == PLATFORM.is_gpu())
                .filter_map(|variant| {
                    let instance =
                        paragraph::advisor::instantiate(&kernel, variant, &sizes, LAUNCH);
                    paragraph::perfsim::measure(&instance, PLATFORM, &noise)
                        .ok()
                        .map(|m| (variant, m.runtime_ms))
                })
                .collect();
        legacy.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let shimmed = paragraph::rank_variants_by_simulation(&kernel, &sizes, PLATFORM, LAUNCH);
        assert_eq!(
            legacy, shimmed,
            "{kernel_name}: engine-backed shim must reproduce the legacy ranking bit-for-bit"
        );
    }
}

/// A second identical request is served from the graph/AST cache: no
/// frontend misses, only hits, and identical rankings.
#[test]
fn second_identical_request_hits_the_graph_cache() {
    let engine = Engine::builder()
        .platform(PLATFORM)
        .cache_capacity(64)
        .build();
    let request = AdviseRequest::catalog("MM/matmul").with_launch(LAUNCH);

    let cold = engine.advise(&request).unwrap();
    assert!(
        cold.cache.misses > 0,
        "cold request must populate the cache"
    );

    let warm = engine.advise(&request).unwrap();
    assert_eq!(
        warm.cache.misses, 0,
        "warm request must not re-run the frontend"
    );
    assert!(
        warm.cache.hits > 0,
        "warm request must be served from the cache"
    );
    assert_eq!(
        cold.rankings, warm.rankings,
        "caching must not change results"
    );

    // The engine-lifetime counters add up across both requests.
    let counters = engine.cache_counters();
    assert_eq!(counters.hits, cold.cache.hits + warm.cache.hits);
    assert_eq!(counters.misses, cold.cache.misses);
}

/// The GNN backend also benefits from the graph cache, and its warm-path
/// predictions are identical to the cold path.
#[test]
fn gnn_backend_uses_the_cache_and_stays_deterministic() {
    let dataset = fast_dataset();
    let (bundle, _) = TrainedModel::fit(&dataset, &TrainConfig::fast()).unwrap();
    let engine = Engine::builder()
        .platform(PLATFORM)
        .backend(GnnBackend::new(bundle, PLATFORM))
        .build();
    let request = AdviseRequest::catalog("MV/matvec").with_launch(LAUNCH);

    let cold = engine.advise(&request).unwrap();
    let warm = engine.advise(&request).unwrap();
    assert!(cold.cache.misses > 0);
    assert_eq!(warm.cache.misses, 0);
    assert_eq!(cold.rankings, warm.rankings);
}

/// Backends refuse platforms they cannot speak for: a GNN bundle trained on
/// one platform rejects requests for another, and COMPOFF (GPU-only, as in
/// the paper) rejects CPU platforms — instead of extrapolating silently
/// wrong numbers.
#[test]
fn mismatched_backend_platform_is_refused() {
    let dataset = fast_dataset();
    let (bundle, _) = TrainedModel::fit(&dataset, &TrainConfig::fast()).unwrap();
    let gnn_on_cpu = Engine::builder()
        .platform(Platform::SummitPower9)
        .backend(GnnBackend::new(bundle, PLATFORM)) // trained on the V100
        .build();
    let request = AdviseRequest::catalog("MM/matmul").with_launch(LaunchConfig {
        teams: 1,
        threads: 16,
    });
    let err = gnn_on_cpu.advise(&request).unwrap_err();
    assert!(
        err.to_string().contains("trained on"),
        "expected a BackendUnavailable failure, got: {err}"
    );

    let compoff_model = compoff::train_model(&dataset, &compoff::CompoffConfig::fast());
    let compoff_on_cpu = Engine::builder()
        .platform(Platform::CoronaEpyc7401)
        .backend(CompoffBackend::new(compoff_model))
        .build();
    let err = compoff_on_cpu.advise(&request).unwrap_err();
    assert!(
        err.to_string().contains("GPU offloading only"),
        "expected a BackendUnavailable failure, got: {err}"
    );
}

/// The deprecated shim honours the template it is handed — including
/// templates that are not in the catalogue — because candidates are
/// instantiated from the argument, not re-resolved by name.
#[test]
#[allow(deprecated)]
fn legacy_shim_ranks_custom_templates() {
    let base = find_kernel("MV/matvec").unwrap();
    let custom = paragraph::kernels::KernelTemplate {
        application: "Custom",
        kernel: "not_in_catalog",
        ..base
    };
    let ranked =
        paragraph::rank_variants_by_simulation(&custom, &custom.default_sizes(), PLATFORM, LAUNCH);
    assert!(
        !ranked.is_empty(),
        "a custom template must rank through the shim, not vanish"
    );
    // And the numbers match measuring the custom template directly.
    let noise = paragraph::perfsim::NoiseModel::disabled();
    for (variant, predicted_ms) in &ranked {
        let instance =
            paragraph::advisor::instantiate(&custom, *variant, &custom.default_sizes(), LAUNCH);
        let measured = paragraph::perfsim::measure(&instance, PLATFORM, &noise).unwrap();
        assert_eq!(*predicted_ms, measured.runtime_ms);
    }
}
