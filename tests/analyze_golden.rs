//! Golden acceptance suite for the legality gate: every shipped catalogue
//! kernel × variant must pass `pg_analyze` unchanged (Safe or
//! SafeWithClauses under the documented tolerances), hand-seeded race
//! mutants must be rejected with span-accurate diagnostics, and the
//! analyzer must stay panic-free and terminating on arbitrarily mutated
//! sources. This is the contract that lets the engine run the gate on by
//! default without perturbing a single ranking.

use pg_advisor::{instantiate, LaunchConfig, Variant};
use pg_analyze::{analyze_source, analyze_source_tolerant, catalogue_tolerances, Severity};
use pg_engine::LaunchBudget;
use pg_kernels::{all_kernels, find_kernel};
use pg_perfsim::Platform;
use pg_tune::{SearchSpace, TuneError};
use proptest::prelude::*;

/// The two catalogue kernels whose idioms the analysis cannot prove safe
/// and therefore tolerates (each documents the paper's own judgement call:
/// Gauss–Seidel sweeps are racy-by-construction relaxations, the particle
/// filter's resampling index is data-dependent).
const TOLERATED: [&str; 2] = ["Gauss Seidel/sweep", "ParticleFilter/move_particles"];

/// Every shipped variant of every catalogue kernel is admissible, warnings
/// appear only on the two tolerated kernels, and the verdict is invariant
/// under the launch configuration (legality never depends on num_teams /
/// thread_limit).
#[test]
fn golden_catalogue_sweep_every_variant_is_admissible() {
    let launches = [
        LaunchConfig {
            teams: 80,
            threads: 128,
        },
        LaunchConfig {
            teams: 8,
            threads: 32,
        },
    ];
    let mut swept = 0usize;
    for kernel in all_kernels() {
        let full_name = kernel.full_name();
        let tolerated = catalogue_tolerances(&full_name);
        let sizes = kernel.default_sizes();
        for variant in Variant::applicable_variants(&kernel) {
            let reports: Vec<_> = launches
                .iter()
                .map(|&launch| {
                    let instance = instantiate(&kernel, variant, &sizes, launch);
                    analyze_source_tolerant(&instance.source, tolerated)
                })
                .collect();
            for report in &reports {
                assert!(
                    report.verdict.is_admissible(),
                    "{full_name} [{}] failed the gate: {:?}",
                    variant.name(),
                    report.verdict
                );
                let warnings = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count();
                if warnings > 0 {
                    assert!(
                        TOLERATED.contains(&full_name.as_str()),
                        "{full_name} [{}] warned outside the tolerance table: {:?}",
                        variant.name(),
                        report.diagnostics
                    );
                }
            }
            assert_eq!(
                reports[0].verdict,
                reports[1].verdict,
                "{full_name} [{}]: verdict changed with the launch config",
                variant.name()
            );
            swept += 1;
        }
    }
    // Both tolerated kernels actually exercise their tolerance.
    for name in TOLERATED {
        assert!(
            !catalogue_tolerances(name).is_empty(),
            "{name} lost its tolerance entry"
        );
    }
    assert!(swept >= 34, "catalogue shrank: only {swept} variants swept");
}

/// Seeded race mutants of clean catalogue kernels are rejected, and the
/// dependence diagnostic lands on the exact line of the seeded statement.
#[test]
fn seeded_race_mutants_are_rejected_with_span_accurate_diagnostics() {
    // Maps a kernel's instantiated (N, M) sizes to (original statement,
    // racy replacement).
    type SeedFn = fn(i64, i64) -> (String, String);
    let seeds: [(&str, SeedFn); 2] = [
        // matmul: the store reads the next parallel row of c.
        ("MM/matmul", |n, _m| {
            (
                "= sum;".to_string(),
                format!("= sum + c[(i + 1) * {n} + j];"),
            )
        }),
        // matvec: the store reads the previous parallel row of y.
        ("MV/matvec", |_n, _m| {
            (
                "y[i] = sum;".to_string(),
                "y[i] = sum + y[i - 1];".to_string(),
            )
        }),
    ];
    for (name, seed) in seeds {
        let kernel = find_kernel(name).unwrap();
        let sizes = kernel.default_sizes();
        let (n, m) = (
            sizes.get("N").copied().unwrap_or(0),
            sizes.get("M").copied().unwrap_or(0),
        );
        let (needle, replacement) = seed(n, m);
        for variant in Variant::applicable_variants(&kernel) {
            let instance = instantiate(
                &kernel,
                variant,
                &sizes,
                LaunchConfig {
                    teams: 80,
                    threads: 128,
                },
            );
            assert!(
                instance.source.contains(&needle),
                "{name}: seed needle `{needle}` not found — template drifted"
            );
            let mutated = instance.source.replace(&needle, &replacement);
            let report = analyze_source_tolerant(&mutated, catalogue_tolerances(name));
            assert!(
                report.verdict.is_race(),
                "{name} [{}] mutant passed the gate: {:?}",
                variant.name(),
                report.diagnostics
            );
            // Span accuracy: the diagnostic points at the seeded line.
            let seeded_line = 1 + mutated
                .lines()
                .position(|l| l.contains(replacement.as_str()))
                .expect("seeded statement present");
            let dep = report
                .errors()
                .find(|d| d.rule == "loop-carried-dependence")
                .expect("dependence diagnostic");
            assert_eq!(
                dep.span.map(|s| s.line),
                Some(seeded_line as u32),
                "{name} [{}]: diagnostic span off target",
                variant.name()
            );
        }
    }
}

/// The same mutant at the search-space level: `pg_tune` refuses to build a
/// space in which every variant is a provable race, naming the rule.
#[test]
fn race_mutant_template_cannot_enter_the_search_space() {
    let mut mutant = find_kernel("MV/matvec").unwrap();
    mutant.source = Box::leak(
        mutant
            .source
            .replace("y[i] = sum;", "y[i] = sum + y[i - 1];")
            .into_boxed_str(),
    );
    for platform in [Platform::SummitV100, Platform::SummitPower9] {
        let err =
            SearchSpace::build_for_template(mutant, platform, None, &LaunchBudget::PlatformDefault)
                .unwrap_err();
        match err {
            TuneError::AllVariantsRace { kernel, reason } => {
                assert_eq!(kernel, "MV/matvec");
                assert!(reason.contains("loop-carried-dependence"), "{reason}");
            }
            other => panic!("expected AllVariantsRace on {platform:?}, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analyzer is total: on truncated, junk-spliced catalogue sources
    /// it terminates without panicking and returns a bounded diagnostic
    /// stream. (Garbage in, conservative verdict out — never a crash.)
    #[test]
    fn analyzer_is_panic_free_and_terminating_on_mutated_sources(
        kernel_idx in 0usize..17,
        variant_idx in 0usize..4,
        cut in 0usize..8192,
        junk_pick in 0usize..6,
        junk_pos in 0usize..8192,
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_idx % kernels.len()];
        let variants = Variant::applicable_variants(kernel);
        let variant = variants[variant_idx % variants.len()];
        let instance = instantiate(
            kernel,
            variant,
            &kernel.default_sizes(),
            LaunchConfig { teams: 80, threads: 128 },
        );
        let mut source = instance.source;
        let mut cut = cut % (source.len() + 1);
        while !source.is_char_boundary(cut) {
            cut -= 1;
        }
        source.truncate(cut);
        let junk = [
            "#pragma omp ",
            "[i + 1]",
            "}}{{",
            "for (int q = 0; ",
            "+= a[i * j];",
            "\u{0}\u{7f}",
        ][junk_pick];
        let mut pos = junk_pos % (source.len() + 1);
        while !source.is_char_boundary(pos) {
            pos -= 1;
        }
        source.insert_str(pos, junk);
        let report = analyze_source(&source);
        prop_assert!(report.diagnostics.len() < 10_000);
    }
}
