//! What callers ask the engine: a kernel, optional problem sizes, and a
//! launch budget.

use pg_advisor::{LaunchConfig, ParallelismBudget};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which kernel to advise on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelSpec {
    /// A kernel from the Table I catalogue, by fully qualified name
    /// (`"MM/matmul"`). The engine enumerates every applicable transformation
    /// variant.
    Catalog(String),
    /// A raw OpenMP C source. Variant enumeration needs a catalogue
    /// template, so the engine ranks this source across the launch budget
    /// as-is.
    Source {
        /// Display name for the report.
        name: String,
        /// The kernel source code.
        source: String,
    },
}

impl KernelSpec {
    /// Display name of the kernel.
    pub fn name(&self) -> &str {
        match self {
            KernelSpec::Catalog(name) => name,
            KernelSpec::Source { name, .. } => name,
        }
    }
}

/// The launch configurations to consider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum LaunchBudget {
    /// Derive a sweep from the engine platform's hardware (cores / SMs).
    #[default]
    PlatformDefault,
    /// Exactly one launch configuration.
    Fixed(LaunchConfig),
    /// An explicit sweep.
    Sweep(ParallelismBudget),
}

/// One advise request: kernel, sizes, launch budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdviseRequest {
    /// Which kernel to advise on.
    pub kernel: KernelSpec,
    /// Problem sizes; `None` uses the catalogue kernel's defaults (raw
    /// sources carry their sizes inline and ignore this).
    pub sizes: Option<HashMap<String, i64>>,
    /// Launch configurations to consider.
    pub budget: LaunchBudget,
}

impl AdviseRequest {
    /// Advise on a catalogue kernel with default sizes and the platform's
    /// default launch sweep.
    pub fn catalog(name: impl Into<String>) -> Self {
        Self {
            kernel: KernelSpec::Catalog(name.into()),
            sizes: None,
            budget: LaunchBudget::default(),
        }
    }

    /// Advise on a raw kernel source.
    pub fn source(name: impl Into<String>, source: impl Into<String>) -> Self {
        Self {
            kernel: KernelSpec::Source {
                name: name.into(),
                source: source.into(),
            },
            sizes: None,
            budget: LaunchBudget::default(),
        }
    }

    /// Set explicit problem sizes.
    pub fn with_sizes(mut self, sizes: HashMap<String, i64>) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Restrict the budget to one launch configuration.
    pub fn with_launch(mut self, launch: LaunchConfig) -> Self {
        self.budget = LaunchBudget::Fixed(launch);
        self
    }

    /// Sweep an explicit parallelism budget.
    pub fn with_budget(mut self, budget: ParallelismBudget) -> Self {
        self.budget = LaunchBudget::Sweep(budget);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), 256i64);
        let request = AdviseRequest::catalog("MM/matmul")
            .with_sizes(sizes.clone())
            .with_launch(LaunchConfig {
                teams: 80,
                threads: 128,
            });
        assert_eq!(request.kernel.name(), "MM/matmul");
        assert_eq!(request.sizes, Some(sizes));
        assert!(matches!(request.budget, LaunchBudget::Fixed(l) if l.teams == 80));

        let raw = AdviseRequest::source("mine", "void f() {}");
        assert_eq!(raw.kernel.name(), "mine");
        assert!(matches!(raw.budget, LaunchBudget::PlatformDefault));
    }

    #[test]
    fn requests_serialize() {
        let request = AdviseRequest::catalog("MM/matmul");
        let json = serde_json::to_string(&request).unwrap();
        let back: AdviseRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(request, back);
    }
}
