//! # pg-engine
//!
//! The unified serving facade of the ParaGraph reproduction: one
//! trait-based prediction API over the analytical simulator, the trained
//! RGAT model and the COMPOFF baseline. The facade sits *below* the model
//! crates: `pg-engine` ships the trait and the simulator backend, while
//! `pg_gnn::GnnBackend` and `pg_compoff::CompoffBackend` implement
//! [`RuntimePredictor`] from above. That keeps the dependency graph acyclic
//! so the dataset pipeline (`pg-dataset`, which the model crates train on)
//! can itself route measurement through an [`Engine`].
//!
//! The paper's end-to-end workflow — parse a kernel, build its weighted
//! ParaGraph, enumerate OpenMP variants, predict runtimes, pick the winner —
//! previously had no single entry point. [`Engine`] owns that whole request
//! path:
//!
//! ```text
//! AdviseRequest ──► resolve kernel ──► enumerate (variant × launch)
//!        │                                      │
//!        │                         predict_batch (rayon fan-out)
//!        │                                      │
//!        │               RuntimePredictor backend (simulator | gnn | compoff)
//!        │                                      │
//!        │               FrontendCache (LRU: source key → AST / graph)
//!        ▼                                      ▼
//!   AdviseReport ◄── rank fastest-first + provenance + timing + cache stats
//! ```
//!
//! ```
//! use pg_engine::{AdviseRequest, Engine};
//! use pg_perfsim::Platform;
//!
//! let engine = Engine::builder().platform(Platform::SummitV100).build();
//! let report = engine.advise(&AdviseRequest::catalog("MM/matmul")).unwrap();
//! assert_eq!(report.backend, "simulator");
//! assert!(report.best().unwrap().predicted_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod error;
pub mod report;
pub mod request;

pub use backend::{PredictionContext, RuntimePredictor, SimulatorBackend};
pub use cache::{CacheCounters, FrontendCache, LruCache, RequestCounters};
pub use error::EngineError;
// Re-exported so downstream tiers (pg-serve) can inspect typed frontend
// rejections and configure parse budgets without a direct pg-frontend
// dependency.
pub use pg_frontend::{FrontendError, FrontendErrorKind, ParseOptions};
pub use report::{
    AdviseReport, CacheActivity, PredictionFailure, StageBreakdown, Timing, VariantPrediction,
};
pub use request::{AdviseRequest, KernelSpec, LaunchBudget};

use pg_advisor::{
    instantiate, KernelInstance, LaunchConfig, ParallelismBudget, PrunedVariant, Variant,
};
use pg_analyze::{AnalysisReport, Diagnostic, LegalityVerdict};
use pg_obs::{obs, Obs, Stage, TraceHandle};
use pg_perfsim::Platform;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default capacity of each frontend-cache layer.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// What candidate enumeration hands the predictor: admitted instances, the
/// unique diagnostics collected while gating them, the variants the
/// legality analysis pruned, and how long the gate itself took.
struct GatedCandidates {
    instances: Vec<KernelInstance>,
    diagnostics: Vec<Diagnostic>,
    race_pruned: Vec<PrunedVariant>,
    /// Wall time spent in the legality gate (0 when untraced or gate off).
    analyze_us: u64,
}

/// The serving facade: a platform, a prediction backend, and a memoized
/// frontend, behind one `advise` call.
///
/// The frontend cache is held behind an `Arc` so several engines (one per
/// platform, say, or one per shard worker) can share a single memo: the
/// sharded dataset pipeline in `pg-dataset` builds one cache and hands it to
/// every per-platform engine, so a kernel source parsed for one platform is
/// a cache hit for every other.
pub struct Engine {
    platform: Platform,
    backend: Box<dyn RuntimePredictor>,
    cache: Arc<FrontendCache>,
    analysis_gate: bool,
    /// Memoized legality analysis keyed by (kernel name, source): analysing
    /// a variant costs far more than a warm advise, so repeated requests
    /// must not re-run it. Kept separate from [`FrontendCache`] so analysis
    /// lookups never perturb the frontend hit/miss accounting.
    analysis_memo: Mutex<LruCache<String, Arc<AnalysisReport>>>,
}

/// Builder for [`Engine`] (`Engine::builder()`).
pub struct EngineBuilder {
    platform: Platform,
    backend: Option<Box<dyn RuntimePredictor>>,
    cache_capacity: usize,
    shared_cache: Option<Arc<FrontendCache>>,
    analysis_gate: bool,
    parse_options: pg_frontend::ParseOptions,
}

impl EngineBuilder {
    /// Target platform (default: Summit's V100 GPU).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Prediction backend (default: the noise-free analytical simulator).
    pub fn backend(mut self, backend: impl RuntimePredictor + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Entries per frontend-cache layer (default
    /// [`DEFAULT_CACHE_CAPACITY`]). Ignored when a [`shared_cache`]
    /// (`EngineBuilder::shared_cache`) is supplied.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Share an existing frontend cache instead of building a private one —
    /// engines sharing a cache share parsed ASTs and built graphs, so the
    /// same kernel source is parsed once per process, not once per engine.
    pub fn shared_cache(mut self, cache: Arc<FrontendCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Enable or disable the static legality gate (default: enabled).
    /// Disabling reproduces the ungated engine exactly: no analysis runs,
    /// reports carry no diagnostics, and nothing is pruned.
    pub fn analysis_gate(mut self, enabled: bool) -> Self {
        self.analysis_gate = enabled;
        self
    }

    /// Per-request parse budget for raw (uncatalogued) sources (default:
    /// [`pg_frontend::ParseOptions::default`]). Ignored when a
    /// [`shared_cache`](EngineBuilder::shared_cache) is supplied — the
    /// shared cache's own budget wins, since cached ASTs must all have
    /// been admitted under one policy.
    pub fn parse_options(mut self, options: pg_frontend::ParseOptions) -> Self {
        self.parse_options = options;
        self
    }

    /// Assemble the engine.
    pub fn build(self) -> Engine {
        Engine {
            platform: self.platform,
            backend: self
                .backend
                .unwrap_or_else(|| Box::new(SimulatorBackend::noise_free())),
            cache: self.shared_cache.unwrap_or_else(|| {
                Arc::new(FrontendCache::with_parse_options(
                    self.cache_capacity,
                    self.parse_options,
                ))
            }),
            analysis_gate: self.analysis_gate,
            analysis_memo: Mutex::new(LruCache::new(self.cache_capacity)),
        }
    }
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            platform: Platform::SummitV100,
            backend: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            shared_cache: None,
            analysis_gate: true,
            parse_options: pg_frontend::ParseOptions::default(),
        }
    }

    /// The platform this engine serves.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Name of the active backend.
    pub fn backend_name(&self) -> &str {
        self.backend.name()
    }

    /// Cumulative frontend-cache counters over the engine's lifetime.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Launch configurations for a request's budget on this platform.
    fn launches(&self, budget: &LaunchBudget, gpu: bool) -> Vec<LaunchConfig> {
        let sweep_for = |budget: &ParallelismBudget| {
            if gpu {
                budget.gpu_launches()
            } else {
                budget.cpu_launches()
            }
        };
        match budget {
            LaunchBudget::Fixed(launch) => vec![*launch],
            LaunchBudget::Sweep(budget) => sweep_for(budget),
            LaunchBudget::PlatformDefault => sweep_for(&self.platform.default_budget()),
        }
    }

    /// Legality analysis of one instance's source, memoized by
    /// (kernel full name, source). Catalogue kernels are assessed under
    /// their documented tolerances via
    /// [`pg_advisor::assess_instance`]; the memo makes the warm advise
    /// path as cheap as before the gate existed.
    fn analysis_of(&self, instance: &KernelInstance) -> Arc<AnalysisReport> {
        let key = format!(
            "{}/{}\u{0}{}",
            instance.application, instance.kernel, instance.source
        );
        if let Some(report) = self
            .analysis_memo
            .lock()
            .expect("analysis memo poisoned")
            .get_by(key.as_str())
        {
            return report;
        }
        let report = Arc::new(pg_advisor::assess_instance(instance));
        self.analysis_memo
            .lock()
            .expect("analysis memo poisoned")
            .insert(key, Arc::clone(&report));
        report
    }

    /// Append `src` diagnostics not already present in `dst` (launch-grid
    /// probes of one kernel repeat the same findings).
    fn merge_diagnostics(dst: &mut Vec<Diagnostic>, src: &[Diagnostic]) {
        for diag in src {
            if !dst.contains(diag) {
                dst.push(diag.clone());
            }
        }
    }

    /// [`Engine::analysis_of`] wrapped in an `analyze` stage span when
    /// observability is on; with it off this is the bare memoized call.
    fn analysis_traced(
        &self,
        o: &Obs,
        trace: &TraceHandle,
        instance: &KernelInstance,
        analyze_us: &mut u64,
    ) -> Arc<AnalysisReport> {
        if !o.enabled() {
            return self.analysis_of(instance);
        }
        let started = Instant::now();
        // Trace-only: the `analyze` histogram is fed by pg-analyze's own
        // instrumented entry point, so a memoized warm probe records no
        // phantom analysis sample.
        let span = o.trace_span(trace, Stage::Analyze, trace.root());
        let report = self.analysis_of(instance);
        span.finish();
        *analyze_us += started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        report
    }

    /// Enumerate the candidate instances of a request, gated by the static
    /// legality analysis when enabled: catalogue variants with a `Race`
    /// verdict are pruned before prediction, raw-source requests are
    /// diagnosed but never pruned (there is no alternative variant to fall
    /// back on — the caller sees the diagnostics and decides).
    fn candidates(
        &self,
        request: &AdviseRequest,
        counters: &RequestCounters,
        trace: &TraceHandle,
    ) -> Result<GatedCandidates, EngineError> {
        let o = obs();
        let mut analyze_us = 0u64;
        let launches = self.launches(&request.budget, self.platform.is_gpu());
        if launches.is_empty() {
            return Err(EngineError::EmptyBudget);
        }
        match &request.kernel {
            KernelSpec::Catalog(name) => {
                let kernel = pg_kernels::find_kernel(name)
                    .ok_or_else(|| EngineError::UnknownKernel(name.clone()))?;
                let sizes = request
                    .sizes
                    .clone()
                    .unwrap_or_else(|| kernel.default_sizes());
                let variants: Vec<Variant> = Variant::applicable_variants(&kernel)
                    .into_iter()
                    .filter(|v| v.is_gpu() == self.platform.is_gpu())
                    .collect();
                if variants.is_empty() {
                    return Err(EngineError::NoApplicableVariants {
                        kernel: name.clone(),
                        platform: self.platform,
                    });
                }
                let mut out = Vec::with_capacity(variants.len() * launches.len());
                let mut diagnostics: Vec<Diagnostic> = Vec::new();
                let mut race_pruned: Vec<PrunedVariant> = Vec::new();
                for variant in variants {
                    // Legality never depends on the launch clauses
                    // (num_teams / thread_limit / schedule), so one probe
                    // at the first grid point gates the variant's whole
                    // launch sweep — the golden suite pins this
                    // launch-invariance.
                    if self.analysis_gate {
                        let probe = instantiate(&kernel, variant, &sizes, launches[0]);
                        let report = self.analysis_traced(o, trace, &probe, &mut analyze_us);
                        Self::merge_diagnostics(&mut diagnostics, &report.diagnostics);
                        if let LegalityVerdict::Race(reason) = &report.verdict {
                            race_pruned.push(PrunedVariant {
                                variant: variant.name().to_string(),
                                reason: reason.clone(),
                            });
                            continue;
                        }
                        out.push(probe);
                        for &launch in &launches[1..] {
                            out.push(instantiate(&kernel, variant, &sizes, launch));
                        }
                    } else {
                        for &launch in &launches {
                            out.push(instantiate(&kernel, variant, &sizes, launch));
                        }
                    }
                }
                if out.is_empty() {
                    return Err(EngineError::AllVariantsRace {
                        kernel: name.clone(),
                        reason: race_pruned
                            .first()
                            .map(|p| p.reason.clone())
                            .unwrap_or_default(),
                    });
                }
                Ok(GatedCandidates {
                    instances: out,
                    diagnostics,
                    race_pruned,
                    analyze_us,
                })
            }
            KernelSpec::Source { name, source } => {
                // Validate the source once up front so a typo fails the
                // request instead of every candidate.
                self.cache.ast_recorded(source, Some(counters))?;
                let (app, kernel_name) = match name.split_once('/') {
                    Some((app, k)) => (app.to_string(), k.to_string()),
                    None => (name.clone(), name.clone()),
                };
                let instances: Vec<KernelInstance> = launches
                    .into_iter()
                    .map(|launch| KernelInstance {
                        application: app.clone(),
                        kernel: kernel_name.clone(),
                        variant: if self.platform.is_gpu() {
                            Variant::Gpu
                        } else {
                            Variant::Cpu
                        },
                        sizes: Default::default(),
                        launch,
                        source: source.clone(),
                        bytes_to_device: 0,
                        bytes_from_device: 0,
                    })
                    .collect();
                if !self.analysis_gate {
                    return Ok(GatedCandidates {
                        instances,
                        diagnostics: Vec::new(),
                        race_pruned: Vec::new(),
                        analyze_us,
                    });
                }
                // Every candidate shares the one raw source, so a single
                // assessment covers the whole launch sweep. Raw sources
                // are diagnosed but never pruned — there is no alternative
                // variant to fall back on.
                let mut diagnostics = Vec::new();
                Self::merge_diagnostics(
                    &mut diagnostics,
                    &self
                        .analysis_traced(o, trace, &instances[0], &mut analyze_us)
                        .diagnostics,
                );
                Ok(GatedCandidates {
                    instances,
                    diagnostics,
                    race_pruned: Vec::new(),
                    analyze_us,
                })
            }
        }
    }

    /// Predict already-enumerated kernel instances through the engine's
    /// backend and frontend cache, preserving order.
    ///
    /// This is the lower-level sibling of [`Engine::advise`] for callers
    /// that bring their own candidates — custom kernel templates not in
    /// the catalogue, hand-built sweeps, or instances produced by the
    /// `pg-dataset` pipeline.
    pub fn predict_instances(&self, instances: &[KernelInstance]) -> Vec<Result<f64, EngineError>> {
        self.predict_instances_counted(instances).0
    }

    /// [`Engine::predict_instances`] plus the frontend-cache activity the
    /// batch caused (hits/misses scoped to this call, not engine-lifetime
    /// totals). The sharded dataset pipeline uses this to report cache
    /// effectiveness per generation run.
    pub fn predict_instances_counted(
        &self,
        instances: &[KernelInstance],
    ) -> (Vec<Result<f64, EngineError>>, CacheCounters) {
        let counters = RequestCounters::default();
        let ctx = PredictionContext::new(&self.cache, self.platform, &counters);
        let results = self.backend.predict_batch(&ctx, instances);
        (results, counters.snapshot())
    }

    /// Run the full request path: resolve → enumerate → batched prediction →
    /// ranked report.
    pub fn advise(&self, request: &AdviseRequest) -> Result<AdviseReport, EngineError> {
        self.advise_many(std::slice::from_ref(request))
            .pop()
            .expect("advise_many returns one result per request")
    }

    /// [`Engine::advise`] over several requests at once, coalescing every
    /// request's candidates into **one** backend `predict_batch` call.
    ///
    /// This is the micro-batching primitive the serving tier (`pg-serve`)
    /// is built on: backends that amortize per-batch work — the GNN
    /// backend's disjoint-union forward pass above all — see one large
    /// candidate set instead of many small ones, so concurrent requests
    /// share tape setup and the batched matmul kernels. Results come back
    /// in request order, one per request; a request that fails enumeration
    /// (unknown kernel, empty budget) reports its own error without
    /// failing the rest of the batch.
    ///
    /// Rankings are bit-identical to per-request [`Engine::advise`] calls:
    /// prediction of one candidate never depends on what else is in the
    /// batch. Two accounting fields are batch-scoped, though:
    /// [`Timing::predict_ms`] is the whole batch's prediction wall time,
    /// and the prediction-phase share of [`CacheActivity`] is accounted to
    /// the batch and reported identically on every member report
    /// (enumeration-phase activity stays per-request).
    pub fn advise_many(
        &self,
        requests: &[AdviseRequest],
    ) -> Vec<Result<AdviseReport, EngineError>> {
        self.advise_many_traced(requests, &[])
    }

    /// [`Engine::advise_many`] with per-request trace handles (`pg_obs`):
    /// candidate enumeration, the legality gate, and the batched backend
    /// prediction each record stage spans against the matching handle, and
    /// traced reports carry a [`StageBreakdown`]. Missing or inactive
    /// handles (including the empty slice `advise_many` passes) make this
    /// identical to the untraced path.
    pub fn advise_many_traced(
        &self,
        requests: &[AdviseRequest],
        traces: &[TraceHandle],
    ) -> Vec<Result<AdviseReport, EngineError>> {
        struct Pending {
            request_idx: usize,
            started: Instant,
            enumerate_ms: f64,
            enumerate_us: u64,
            analyze_us: u64,
            enum_cache: CacheCounters,
            is_catalog: bool,
            range: std::ops::Range<usize>,
            diagnostics: Vec<Diagnostic>,
            race_pruned: Vec<PrunedVariant>,
        }

        let o = obs();
        let disabled = TraceHandle::disabled();
        let trace_of = |idx: usize| traces.get(idx).unwrap_or(&disabled);

        let mut results: Vec<Option<Result<AdviseReport, EngineError>>> =
            requests.iter().map(|_| None).collect();
        let mut pending: Vec<Pending> = Vec::with_capacity(requests.len());
        let mut candidates: Vec<KernelInstance> = Vec::new();
        for (request_idx, request) in requests.iter().enumerate() {
            let started = Instant::now();
            let counters = RequestCounters::default();
            let trace = trace_of(request_idx);
            let enum_span = o.span(trace, Stage::Enumerate, trace.root());
            let gated = self.candidates(request, &counters, trace);
            enum_span.finish();
            match gated {
                Ok(gated) => {
                    let start = candidates.len();
                    let mut enumerated = gated.instances;
                    candidates.append(&mut enumerated);
                    let elapsed = started.elapsed();
                    pending.push(Pending {
                        request_idx,
                        started,
                        enumerate_ms: elapsed.as_secs_f64() * 1e3,
                        enumerate_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                        analyze_us: gated.analyze_us,
                        enum_cache: counters.snapshot(),
                        is_catalog: matches!(request.kernel, KernelSpec::Catalog(_)),
                        range: start..candidates.len(),
                        diagnostics: gated.diagnostics,
                        race_pruned: gated.race_pruned,
                    });
                }
                Err(error) => results[request_idx] = Some(Err(error)),
            }
        }

        // One backend call over the whole batch. Cache activity during
        // prediction is shared accounting: the backend resolves graphs for
        // every request through one context — and so is predict timing:
        // every traced member gets a predict span over the same interval.
        let predict_spans: Vec<pg_obs::Span<'_>> = pending
            .iter()
            .map(|entry| {
                let trace = trace_of(entry.request_idx);
                o.span(trace, Stage::Predict, trace.root())
            })
            .collect();
        let predict_started = Instant::now();
        let batch_counters = RequestCounters::default();
        let ctx = PredictionContext::new(&self.cache, self.platform, &batch_counters);
        let predictions = self.backend.predict_batch(&ctx, &candidates);
        let predict_elapsed = predict_started.elapsed();
        let predict_ms = predict_elapsed.as_secs_f64() * 1e3;
        let predict_us = predict_elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        for span in predict_spans {
            span.finish();
        }
        let predict_cache = batch_counters.snapshot();

        for entry in pending {
            let request = &requests[entry.request_idx];
            let mut rankings = Vec::new();
            let mut failures = Vec::new();
            let mut first_error: Option<EngineError> = None;
            for (instance, prediction) in candidates[entry.range.clone()]
                .iter()
                .zip(&predictions[entry.range.clone()])
            {
                let variant = entry.is_catalog.then_some(instance.variant);
                match prediction {
                    Ok(predicted_ms) => rankings.push(VariantPrediction {
                        variant,
                        launch: instance.launch,
                        predicted_ms: *predicted_ms,
                    }),
                    Err(error) => {
                        if first_error.is_none() {
                            first_error = Some(error.clone());
                        }
                        failures.push(PredictionFailure {
                            variant,
                            launch: instance.launch,
                            error: error.to_string(),
                        });
                    }
                }
            }
            results[entry.request_idx] = Some(if rankings.is_empty() {
                Err(EngineError::AllPredictionsFailed {
                    kernel: request.kernel.name().to_string(),
                    first: Box::new(first_error.unwrap_or(EngineError::EmptyBudget)),
                })
            } else {
                rankings.sort_by(|a, b| {
                    a.predicted_ms
                        .partial_cmp(&b.predicted_ms)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                Ok(AdviseReport {
                    kernel: request.kernel.name().to_string(),
                    platform: self.platform,
                    backend: self.backend.name().to_string(),
                    rankings,
                    failures,
                    timing: Timing {
                        enumerate_ms: entry.enumerate_ms,
                        predict_ms,
                        total_ms: entry.started.elapsed().as_secs_f64() * 1e3,
                    },
                    cache: CacheActivity {
                        hits: entry.enum_cache.hits + predict_cache.hits,
                        misses: entry.enum_cache.misses + predict_cache.misses,
                    },
                    diagnostics: entry.diagnostics,
                    race_pruned: entry.race_pruned,
                    stages: trace_of(entry.request_idx)
                        .active()
                        .then_some(StageBreakdown {
                            enumerate_us: entry.enumerate_us,
                            analyze_us: entry.analyze_us,
                            predict_us,
                        }),
                })
            });
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every request produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kernel_is_an_error() {
        let engine = Engine::builder().build();
        let err = engine
            .advise(&AdviseRequest::catalog("Nope/nothing"))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownKernel(_)));
    }

    #[test]
    fn catalog_advise_ranks_all_variant_launch_pairs() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let launch = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        let report = engine
            .advise(&AdviseRequest::catalog("MM/matmul").with_launch(launch))
            .unwrap();
        // Four GPU variants for a collapsible kernel, one launch each.
        assert_eq!(report.rankings.len(), 4);
        assert!(report.failures.is_empty());
        assert!(report
            .rankings
            .windows(2)
            .all(|w| w[0].predicted_ms <= w[1].predicted_ms));
        assert!(report.rankings.iter().all(|r| r.launch == launch));
        assert_eq!(report.backend, "simulator");
        assert_eq!(report.platform, Platform::SummitV100);
    }

    #[test]
    fn platform_default_budget_sweeps_launches() {
        let engine = Engine::builder().platform(Platform::CoronaEpyc7401).build();
        let report = engine.advise(&AdviseRequest::catalog("MV/matvec")).unwrap();
        // matvec has one CPU variant; the EPYC default budget sweeps threads.
        assert!(report.rankings.len() > 1);
        assert!(report.rankings.iter().all(|r| r.launch.teams == 1));
    }

    #[test]
    fn raw_source_requests_rank_launches() {
        let engine = Engine::builder().platform(Platform::SummitPower9).build();
        let request = AdviseRequest::source(
            "mine/saxpy",
            "void saxpy(float *x, float *y) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 65536; i++) { y[i] = y[i] + 2.0 * x[i]; }\n}",
        );
        let report = engine.advise(&request).unwrap();
        assert!(!report.rankings.is_empty());
        assert!(report.rankings.iter().all(|r| r.variant.is_none()));
        assert_eq!(report.kernel, "mine/saxpy");
    }

    #[test]
    fn invalid_raw_source_fails_fast() {
        let engine = Engine::builder().build();
        let err = engine
            .advise(&AdviseRequest::source("bad", "definitely not C"))
            .unwrap_err();
        assert!(matches!(err, EngineError::Frontend(_)));
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let request = AdviseRequest::catalog("MM/matmul").with_launch(LaunchConfig {
            teams: 80,
            threads: 128,
        });
        let cold = engine.advise(&request).unwrap();
        assert!(cold.cache.misses > 0);
        let warm = engine.advise(&request).unwrap();
        assert_eq!(warm.cache.misses, 0);
        assert!(warm.cache.hits >= cold.cache.misses);
        assert_eq!(cold.rankings, warm.rankings);
    }

    #[test]
    fn advise_many_matches_per_request_advise() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let requests = vec![
            AdviseRequest::catalog("MM/matmul"),
            AdviseRequest::catalog("MV/matvec"),
            AdviseRequest::catalog("MM/matmul").with_launch(LaunchConfig {
                teams: 80,
                threads: 128,
            }),
        ];
        let coalesced = engine.advise_many(&requests);
        assert_eq!(coalesced.len(), requests.len());
        for (request, batched) in requests.iter().zip(&coalesced) {
            let direct = engine.advise(request).unwrap();
            let batched = batched.as_ref().unwrap();
            assert_eq!(direct.rankings, batched.rankings);
            assert_eq!(direct.failures, batched.failures);
            assert_eq!(direct.kernel, batched.kernel);
            assert_eq!(direct.backend, batched.backend);
        }
    }

    #[test]
    fn advise_many_isolates_per_request_failures() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let requests = vec![
            AdviseRequest::catalog("Nope/nothing"),
            AdviseRequest::catalog("MM/matmul"),
        ];
        let results = engine.advise_many(&requests);
        assert!(matches!(results[0], Err(EngineError::UnknownKernel(_))));
        assert!(results[1].is_ok());
    }

    #[test]
    fn racy_raw_source_is_diagnosed_but_still_ranked() {
        let engine = Engine::builder().platform(Platform::SummitPower9).build();
        let request = AdviseRequest::source(
            "mine/scan",
            "void scan(float *a) {\n\
             #pragma omp parallel for\n\
             for (int i = 1; i < 65536; i++) { a[i] = a[i - 1]; }\n}",
        );
        let report = engine.advise(&request).unwrap();
        // Raw sources are never pruned — the caller gets predictions plus
        // the race diagnostics and decides.
        assert!(!report.rankings.is_empty());
        assert!(report.race_pruned.is_empty());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "loop-carried-dependence"));
    }

    #[test]
    fn clean_catalogue_rankings_are_identical_with_gate_on_and_off() {
        let request = AdviseRequest::catalog("MM/matmul").with_launch(LaunchConfig {
            teams: 80,
            threads: 128,
        });
        let gated = Engine::builder()
            .platform(Platform::SummitV100)
            .build()
            .advise(&request)
            .unwrap();
        let ungated = Engine::builder()
            .platform(Platform::SummitV100)
            .analysis_gate(false)
            .build()
            .advise(&request)
            .unwrap();
        // Nothing in the shipped catalogue is pruned, so the gate must not
        // perturb rankings at all.
        assert_eq!(gated.rankings, ungated.rankings);
        assert!(gated.race_pruned.is_empty());
        assert!(ungated.diagnostics.is_empty());
    }

    #[test]
    fn cpu_platform_filters_to_cpu_variants() {
        let engine = Engine::builder().platform(Platform::SummitPower9).build();
        let report = engine
            .advise(
                &AdviseRequest::catalog("MM/matmul").with_launch(LaunchConfig {
                    teams: 1,
                    threads: 16,
                }),
            )
            .unwrap();
        assert!(report.rankings.iter().all(|r| !r.variant.unwrap().is_gpu()));
    }
}
