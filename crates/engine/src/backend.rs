//! The pluggable prediction backends behind one trait.
//!
//! [`RuntimePredictor`] is the seam between the engine's request path and
//! the runtime-prediction strategies the repository implements. The engine
//! crate itself ships only [`SimulatorBackend`] (the analytical accelerator
//! model, bit-identical to [`pg_perfsim::measure`]); the learned backends
//! register from above, so the facade sits below every model crate:
//!
//! * `pg_gnn::GnnBackend` — a trained RGAT `TrainedModel` bundle, the
//!   paper's model;
//! * `pg_compoff::CompoffBackend` — the COMPOFF MLP baseline.
//!
//! Backends receive a [`PredictionContext`] giving them the engine's
//! platform and its memoized frontend, so every backend benefits from the
//! AST/graph caches. `predict_batch` fans candidates out across threads;
//! backends can override it when they can amortize work across a batch.

use crate::cache::{FrontendCache, RequestCounters};
use crate::error::EngineError;
use pg_advisor::KernelInstance;
use pg_perfsim::{analyze_ast, NoiseModel, Platform};
use rayon::prelude::*;

/// Read-only request-path services the engine lends to a backend for the
/// duration of one prediction call.
pub struct PredictionContext<'a> {
    cache: &'a FrontendCache,
    platform: Platform,
    counters: &'a RequestCounters,
}

impl<'a> PredictionContext<'a> {
    pub(crate) fn new(
        cache: &'a FrontendCache,
        platform: Platform,
        counters: &'a RequestCounters,
    ) -> Self {
        Self {
            cache,
            platform,
            counters,
        }
    }

    /// The platform the engine serves.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Memoized access to the parsed AST of a source.
    pub fn ast(&self, source: &str) -> Result<std::sync::Arc<pg_frontend::Ast>, EngineError> {
        self.cache.ast_recorded(source, Some(self.counters))
    }

    /// Memoized access to the relational graph of a source under a
    /// representation and launch configuration.
    pub fn relational_graph(
        &self,
        source: &str,
        representation: paragraph_core::Representation,
        teams: u64,
        threads: u64,
    ) -> Result<std::sync::Arc<paragraph_core::RelationalGraph>, EngineError> {
        self.cache.relational_graph_recorded(
            source,
            representation,
            teams,
            threads,
            Some(self.counters),
        )
    }
}

/// A runtime-prediction strategy the engine can drive.
pub trait RuntimePredictor: Send + Sync {
    /// Short name for provenance in reports (e.g. `"simulator"`).
    fn name(&self) -> &str;

    /// Predict the runtime (ms) of one kernel instance.
    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError>;

    /// Predict a batch of instances, preserving order. The default fans the
    /// batch out across threads; override to amortize per-batch work.
    /// `pg_gnn::GnnBackend` does exactly that: it joins the whole candidate
    /// set into disjoint-union mini-batches and serves them with one tape
    /// forward pass per chunk, which is why `advise` hands backends the full
    /// candidate list instead of looping over `predict`. Overrides must
    /// return one result per instance, in instance order, and report
    /// per-instance failures in place rather than failing the whole batch.
    fn predict_batch(
        &self,
        ctx: &PredictionContext<'_>,
        instances: &[KernelInstance],
    ) -> Vec<Result<f64, EngineError>> {
        instances
            .par_iter()
            .map(|instance| self.predict(ctx, instance))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// The analytical accelerator simulator as a backend.
///
/// Produces exactly the numbers [`pg_perfsim::measure`] produces (same cost
/// analysis, same execution model, same deterministic noise stream), while
/// routing the parse through the engine's AST cache.
#[derive(Debug, Clone)]
pub struct SimulatorBackend {
    noise: NoiseModel,
}

impl SimulatorBackend {
    /// Simulator with deterministic measurement noise.
    pub fn new(noise: NoiseModel) -> Self {
        Self { noise }
    }

    /// Simulator without measurement noise (the ranking-friendly default).
    pub fn noise_free() -> Self {
        Self::new(NoiseModel::disabled())
    }
}

impl Default for SimulatorBackend {
    fn default() -> Self {
        Self::noise_free()
    }
}

impl RuntimePredictor for SimulatorBackend {
    fn name(&self) -> &str {
        "simulator"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError> {
        // Mirrors pg_perfsim::measure step for step, with the parse memoized.
        let ast = ctx.ast(&instance.source)?;
        let cost = analyze_ast(
            &ast,
            instance.bytes_to_device as f64,
            instance.bytes_from_device as f64,
        );
        let breakdown = pg_perfsim::predict(&cost, instance.launch, ctx.platform());
        let ideal_ms = breakdown.total_ms();
        if self.noise.sigma <= 0.0 {
            // The key string only seeds the noise stream; skip building it
            // on the (default) noise-free hot path.
            return Ok(ideal_ms);
        }
        let key = format!("{}@{}", instance.describe(), ctx.platform().name());
        Ok(self.noise.apply(ideal_ms, &key))
    }
}
