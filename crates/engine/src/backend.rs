//! The pluggable prediction backends behind one trait.
//!
//! [`RuntimePredictor`] is the seam between the engine's request path and
//! the three runtime-prediction strategies the repository implements:
//!
//! * [`SimulatorBackend`] — the analytical accelerator model
//!   (`pg_perfsim`), bit-identical to [`pg_perfsim::measure`];
//! * [`GnnBackend`] — a trained RGAT [`TrainedModel`] bundle (`pg_gnn`),
//!   the paper's model;
//! * [`CompoffBackend`] — the COMPOFF MLP baseline (`pg_compoff`).
//!
//! Backends receive a [`PredictionContext`] giving them the engine's
//! platform and its memoized frontend, so every backend benefits from the
//! AST/graph caches. `predict_batch` fans candidates out across threads;
//! backends can override it when they can amortize work across a batch.

use crate::cache::{FrontendCache, RequestCounters};
use crate::error::EngineError;
use pg_advisor::KernelInstance;
use pg_compoff::CompoffModel;
use pg_gnn::TrainedModel;
use pg_perfsim::{analyze_ast, NoiseModel, Platform};
use rayon::prelude::*;

/// Read-only request-path services the engine lends to a backend for the
/// duration of one prediction call.
pub struct PredictionContext<'a> {
    cache: &'a FrontendCache,
    platform: Platform,
    counters: &'a RequestCounters,
}

impl<'a> PredictionContext<'a> {
    pub(crate) fn new(
        cache: &'a FrontendCache,
        platform: Platform,
        counters: &'a RequestCounters,
    ) -> Self {
        Self {
            cache,
            platform,
            counters,
        }
    }

    /// The platform the engine serves.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Memoized access to the parsed AST of a source.
    pub fn ast(&self, source: &str) -> Result<std::sync::Arc<pg_frontend::Ast>, EngineError> {
        self.cache.ast_recorded(source, Some(self.counters))
    }

    /// Memoized access to the relational graph of a source under a
    /// representation and launch configuration.
    pub fn relational_graph(
        &self,
        source: &str,
        representation: paragraph_core::Representation,
        teams: u64,
        threads: u64,
    ) -> Result<std::sync::Arc<paragraph_core::RelationalGraph>, EngineError> {
        self.cache.relational_graph_recorded(
            source,
            representation,
            teams,
            threads,
            Some(self.counters),
        )
    }
}

/// A runtime-prediction strategy the engine can drive.
pub trait RuntimePredictor: Send + Sync {
    /// Short name for provenance in reports (e.g. `"simulator"`).
    fn name(&self) -> &str;

    /// Predict the runtime (ms) of one kernel instance.
    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError>;

    /// Predict a batch of instances, preserving order. The default fans the
    /// batch out across threads; override to amortize per-batch work.
    fn predict_batch(
        &self,
        ctx: &PredictionContext<'_>,
        instances: &[KernelInstance],
    ) -> Vec<Result<f64, EngineError>> {
        instances
            .par_iter()
            .map(|instance| self.predict(ctx, instance))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// The analytical accelerator simulator as a backend.
///
/// Produces exactly the numbers [`pg_perfsim::measure`] produces (same cost
/// analysis, same execution model, same deterministic noise stream), while
/// routing the parse through the engine's AST cache.
#[derive(Debug, Clone)]
pub struct SimulatorBackend {
    noise: NoiseModel,
}

impl SimulatorBackend {
    /// Simulator with deterministic measurement noise.
    pub fn new(noise: NoiseModel) -> Self {
        Self { noise }
    }

    /// Simulator without measurement noise (the ranking-friendly default).
    pub fn noise_free() -> Self {
        Self::new(NoiseModel::disabled())
    }
}

impl Default for SimulatorBackend {
    fn default() -> Self {
        Self::noise_free()
    }
}

impl RuntimePredictor for SimulatorBackend {
    fn name(&self) -> &str {
        "simulator"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError> {
        // Mirrors pg_perfsim::measure step for step, with the parse memoized.
        let ast = ctx.ast(&instance.source)?;
        let cost = analyze_ast(
            &ast,
            instance.bytes_to_device as f64,
            instance.bytes_from_device as f64,
        );
        let breakdown = pg_perfsim::predict(&cost, instance.launch, ctx.platform());
        let ideal_ms = breakdown.total_ms();
        if self.noise.sigma <= 0.0 {
            // The key string only seeds the noise stream; skip building it
            // on the (default) noise-free hot path.
            return Ok(ideal_ms);
        }
        let key = format!("{}@{}", instance.describe(), ctx.platform().name());
        Ok(self.noise.apply(ideal_ms, &key))
    }
}

// ---------------------------------------------------------------------------
// GNN
// ---------------------------------------------------------------------------

/// A trained ParaGraph RGAT model as a backend.
pub struct GnnBackend {
    bundle: TrainedModel,
    trained_on: Platform,
}

impl GnnBackend {
    /// Serve predictions from a trained bundle. `trained_on` is the
    /// platform whose dataset fitted the model; predictions are refused
    /// (with [`EngineError::BackendUnavailable`]) when the engine serves a
    /// different platform, since a per-platform regressor extrapolates
    /// silently wrong numbers elsewhere.
    pub fn new(bundle: TrainedModel, trained_on: Platform) -> Self {
        Self { bundle, trained_on }
    }

    /// The bundle this backend serves.
    pub fn bundle(&self) -> &TrainedModel {
        &self.bundle
    }

    /// Platform whose dataset trained the bundle.
    pub fn trained_on(&self) -> Platform {
        self.trained_on
    }
}

impl RuntimePredictor for GnnBackend {
    fn name(&self) -> &str {
        "gnn"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError> {
        if ctx.platform() != self.trained_on {
            return Err(EngineError::BackendUnavailable(format!(
                "GNN model was trained on {} but the engine serves {}",
                self.trained_on.name(),
                ctx.platform().name()
            )));
        }
        let graph = ctx.relational_graph(
            &instance.source,
            self.bundle.representation,
            instance.launch.teams,
            instance.launch.threads,
        )?;
        Ok(f64::from(self.bundle.predict_relational(
            &graph,
            instance.launch.teams,
            instance.launch.threads,
        )))
    }
}

// ---------------------------------------------------------------------------
// COMPOFF
// ---------------------------------------------------------------------------

/// The COMPOFF MLP baseline as a backend. GPU-only, as in the paper.
pub struct CompoffBackend {
    model: CompoffModel,
}

impl CompoffBackend {
    /// Serve predictions from a trained COMPOFF model.
    pub fn new(model: CompoffModel) -> Self {
        Self { model }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CompoffModel {
        &self.model
    }
}

impl RuntimePredictor for CompoffBackend {
    fn name(&self) -> &str {
        "compoff"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError> {
        if !ctx.platform().is_gpu() {
            return Err(EngineError::BackendUnavailable(format!(
                "COMPOFF models GPU offloading only (paper Section V-D); engine serves {}",
                ctx.platform().name()
            )));
        }
        let ast = ctx.ast(&instance.source)?;
        Ok(f64::from(self.model.predict_ast(
            &ast,
            instance.launch.teams,
            instance.launch.threads,
        )))
    }
}
