//! Frontend memoization: the LRU caches that let repeated `advise` calls on
//! the same kernel skip parsing and graph construction entirely.
//!
//! Two layers are cached independently, because backends consume different
//! artifacts: parsed ASTs (keyed by source) feed the simulator and
//! COMPOFF backends, and relational graphs (keyed by source plus the
//! [`BuilderConfig`]-relevant fields: representation and launch) feed the
//! GNN backend. Keys own the full source text, so distinct kernels can
//! never alias a cache entry. Entries are shared via `Arc`, so cache hits are pointer
//! copies. Hit/miss counters are atomic; engine-lifetime totals live on the
//! cache, and per-request deltas ([`RequestCounters`]) surface in every
//! [`AdviseReport`](crate::AdviseReport).

use paragraph_core::{build, to_relational, RelationalGraph, Representation};
use pg_frontend::{Ast, ParseOptions};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::EngineError;

/// A small least-recently-used map. Recency is tracked with a monotonic
/// stamp per entry; eviction scans for the minimum, which is O(capacity) but
/// only runs when the cache is full — fine for the few-hundred-entry caches
/// the engine uses.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, (V, u64)>,
    stamp: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            stamp: 0,
            capacity: capacity.max(1),
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    ///
    /// Delegates to [`LruCache::get_by`], so the two lookup paths can never
    /// diverge in recency behaviour: a hit through either refreshes the
    /// entry's stamp. (The borrowed-form path is the one every
    /// [`FrontendCache`] probe takes — `&str` against `String`/`Arc<str>`
    /// keys — so a `get_by` that forgot to refresh would evict the hottest
    /// AST entries mid-sweep. `lru_get_by_refreshes_recency_like_get` below
    /// pins both paths.)
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.get_by(key)
    }

    /// Borrowed-form lookup (e.g. `&str` against `String` keys),
    /// refreshing recency on a hit.
    pub fn get_by<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(value, used)| {
            *used = stamp;
            value.clone()
        })
    }

    /// Insert a key, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.stamp += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.stamp));
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Cache key of a built relational graph: source identity plus every
/// [`BuilderConfig`](paragraph_core::BuilderConfig) field that changes the
/// graph.
///
/// The key owns the full source rather than a 64-bit hash of it: a hash
/// collision here would silently serve one kernel's graph for another, and
/// the engine cache is the seam a long-lived serving system leans on. The
/// source is an interned `Arc<str>` (see [`FrontendCache::intern`]) so
/// probing the map on the hot path clones a pointer, not kilobytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GraphKey {
    source: Arc<str>,
    representation: Representation,
    teams: u64,
    threads: u64,
}

/// Cumulative hit/miss counters of a [`FrontendCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the frontend.
    pub misses: u64,
}

impl CacheCounters {
    /// Counter delta since an earlier snapshot.
    pub fn since(self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Hit/miss accounting scoped to one request. The engine threads one of
/// these through each `advise` call so concurrent requests on a shared
/// engine do not attribute each other's cache activity (the engine-lifetime
/// totals remain on [`FrontendCache`] itself).
#[derive(Debug, Default)]
pub struct RequestCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RequestCounters {
    /// Read the counters accumulated so far.
    pub fn snapshot(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The engine's shared frontend memo: parsed ASTs and built relational
/// graphs. Thread-safe; `Arc`-shared values make hits cheap.
#[derive(Debug)]
pub struct FrontendCache {
    /// Intern table: source text -> shared `Arc<str>` used in graph keys.
    sources: Mutex<LruCache<String, Arc<str>>>,
    asts: Mutex<LruCache<Arc<str>, Arc<Ast>>>,
    graphs: Mutex<LruCache<GraphKey, Arc<RelationalGraph>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Parse budget applied to every miss. The cache sits on the raw-source
    /// ingestion path (uncatalogued `/advise` bodies land here), so limits
    /// are enforced at the same place parsing happens.
    parse_options: ParseOptions,
}

impl FrontendCache {
    /// Create a cache with `capacity` entries per layer and the default
    /// parse budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_parse_options(capacity, ParseOptions::default())
    }

    /// Create a cache with an explicit per-request parse budget.
    pub fn with_parse_options(capacity: usize, parse_options: ParseOptions) -> Self {
        Self {
            sources: Mutex::new(LruCache::new(capacity)),
            asts: Mutex::new(LruCache::new(capacity)),
            graphs: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            parse_options,
        }
    }

    /// The parse budget applied to cache misses.
    pub fn parse_options(&self) -> ParseOptions {
        self.parse_options
    }

    /// Shared `Arc<str>` for a source. Interning is contents-based, so an
    /// evicted-and-re-interned source still compares equal in graph keys.
    fn intern(&self, source: &str) -> Arc<str> {
        let mut table = self.sources.lock().expect("intern table poisoned");
        if let Some(interned) = table.get_by(source) {
            return interned;
        }
        let interned: Arc<str> = Arc::from(source);
        table.insert(source.to_string(), Arc::clone(&interned));
        interned
    }

    fn record(&self, request: Option<&RequestCounters>, hit: bool) {
        let (global, per_request) = if hit {
            (&self.hits, request.map(|r| &r.hits))
        } else {
            (&self.misses, request.map(|r| &r.misses))
        };
        global.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = per_request {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Parse `source`, memoized. Parsing happens outside the lock so
    /// concurrent misses do not serialize the frontend.
    pub fn ast(&self, source: &str) -> Result<Arc<Ast>, EngineError> {
        self.ast_recorded(source, None)
    }

    pub(crate) fn ast_recorded(
        &self,
        source: &str,
        request: Option<&RequestCounters>,
    ) -> Result<Arc<Ast>, EngineError> {
        let probe = pg_obs::obs().timer(pg_obs::Stage::CacheLookup);
        let cached = self.asts.lock().expect("ast cache poisoned").get_by(source);
        probe.finish();
        if let Some(ast) = cached {
            self.record(request, true);
            return Ok(ast);
        }
        self.record(request, false);
        let ast = Arc::new(pg_frontend::parse_with_options(source, self.parse_options)?);
        let key = self.intern(source);
        self.asts
            .lock()
            .expect("ast cache poisoned")
            .insert(key, Arc::clone(&ast));
        Ok(ast)
    }

    /// Build the relational graph of `source` under a representation and
    /// launch configuration, memoized. Graph misses reuse the AST layer.
    pub fn relational_graph(
        &self,
        source: &str,
        representation: Representation,
        teams: u64,
        threads: u64,
    ) -> Result<Arc<RelationalGraph>, EngineError> {
        self.relational_graph_recorded(source, representation, teams, threads, None)
    }

    pub(crate) fn relational_graph_recorded(
        &self,
        source: &str,
        representation: Representation,
        teams: u64,
        threads: u64,
        request: Option<&RequestCounters>,
    ) -> Result<Arc<RelationalGraph>, EngineError> {
        let key = GraphKey {
            source: self.intern(source),
            representation,
            teams,
            threads,
        };
        let probe = pg_obs::obs().timer(pg_obs::Stage::CacheLookup);
        let cached = self.graphs.lock().expect("graph cache poisoned").get(&key);
        probe.finish();
        if let Some(graph) = cached {
            self.record(request, true);
            return Ok(graph);
        }
        self.record(request, false);
        let ast = self.ast_recorded(source, request)?;
        let config = paragraph_core::BuilderConfig::for_representation(representation)
            .with_launch(teams, threads);
        let graph = Arc::new(to_relational(&build(&ast, &config)));
        self.graphs
            .lock()
            .expect("graph cache poisoned")
            .insert(key, Arc::clone(&graph));
        Ok(graph)
    }

    /// Snapshot of the cumulative hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "void f(float *a) { for (int i = 0; i < 32; i++) { a[i] = 1.0; } }";

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: LruCache<u32, u32> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(10)); // refresh 1; 2 is now oldest
        lru.insert(3, 30);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_get_by_refreshes_recency_like_get() {
        // Same scenario twice — once through the typed path, once through
        // the borrowed-form path `FrontendCache` uses — asserting identical
        // eviction order. A `get_by` that failed to refresh recency would
        // evict the hot entry (1) instead of the cold one (2) here.
        let run = |use_get_by: bool| -> (Option<u32>, Option<u32>, Option<u32>) {
            let mut lru: LruCache<String, u32> = LruCache::new(2);
            lru.insert("one".to_string(), 10);
            lru.insert("two".to_string(), 20);
            let hit = if use_get_by {
                lru.get_by("one")
            } else {
                lru.get(&"one".to_string())
            };
            assert_eq!(hit, Some(10)); // refresh "one"; "two" is now oldest
            lru.insert("three".to_string(), 30);
            (lru.get_by("one"), lru.get_by("two"), lru.get_by("three"))
        };
        assert_eq!(run(false), (Some(10), None, Some(30)));
        assert_eq!(run(true), (Some(10), None, Some(30)));
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let mut lru: LruCache<u32, u32> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(2, 21);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&2), Some(21));
    }

    #[test]
    fn ast_layer_hits_on_repeat() {
        let cache = FrontendCache::new(8);
        let a = cache.ast(SRC).unwrap();
        let b = cache.ast(SRC).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let counters = cache.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
    }

    #[test]
    fn graph_layer_distinguishes_launch_configs() {
        let cache = FrontendCache::new(8);
        let g1 = cache
            .relational_graph(SRC, Representation::ParaGraph, 1, 8)
            .unwrap();
        let g2 = cache
            .relational_graph(SRC, Representation::ParaGraph, 1, 16)
            .unwrap();
        let g1_again = cache
            .relational_graph(SRC, Representation::ParaGraph, 1, 8)
            .unwrap();
        assert!(Arc::ptr_eq(&g1, &g1_again));
        assert!(!Arc::ptr_eq(&g1, &g2));
    }

    #[test]
    fn parse_errors_surface() {
        let cache = FrontendCache::new(8);
        assert!(cache.ast("garbage !!").is_err());
    }
}
