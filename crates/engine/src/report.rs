//! What the engine answers: ranked variant predictions with provenance,
//! wall-time accounting and cache activity.

use pg_advisor::{LaunchConfig, PrunedVariant, Variant};
use pg_analyze::Diagnostic;
use pg_perfsim::Platform;
use serde::{Deserialize, Serialize};

/// One ranked candidate: a (variant, launch) pair and its predicted runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantPrediction {
    /// The transformation variant; `None` for raw-source requests, which
    /// have no catalogue template to enumerate variants from.
    pub variant: Option<Variant>,
    /// Launch configuration of this candidate.
    pub launch: LaunchConfig,
    /// Predicted runtime in milliseconds.
    pub predicted_ms: f64,
}

impl VariantPrediction {
    /// Human-readable candidate label, e.g. `gpu_collapse @ 80x128`.
    pub fn label(&self) -> String {
        let variant = self.variant.map_or("source", |v| v.name());
        format!(
            "{} @ {}x{}",
            variant, self.launch.teams, self.launch.threads
        )
    }
}

/// A candidate whose prediction failed (kept for diagnosis; the report is
/// still produced as long as at least one candidate succeeded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionFailure {
    /// The failed candidate's variant.
    pub variant: Option<Variant>,
    /// The failed candidate's launch configuration.
    pub launch: LaunchConfig,
    /// Rendered error.
    pub error: String,
}

/// Cache activity attributable to one request (delta of the engine's
/// cumulative counters across the request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheActivity {
    /// Frontend lookups served from the cache during this request.
    pub hits: u64,
    /// Frontend lookups that ran parse / graph construction.
    pub misses: u64,
}

/// Wall-time accounting of one request, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Timing {
    /// Candidate enumeration (catalogue lookup, source instantiation).
    pub enumerate_ms: f64,
    /// Batched backend prediction.
    pub predict_ms: f64,
    /// Whole request, end to end.
    pub total_ms: f64,
}

/// Per-stage latency attribution of one request, in microseconds. Only
/// present when the request was traced (see `pg_obs`): callers that want
/// the breakdown opt in by serving through a traced path, and untraced
/// requests pay nothing for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StageBreakdown {
    /// Candidate enumeration, including the legality gate.
    pub enumerate_us: u64,
    /// Static legality analysis alone (a subset of `enumerate_us`; zero on
    /// memoized warm probes and when the gate is disabled).
    pub analyze_us: u64,
    /// Batched backend prediction. Batch-scoped like
    /// [`Timing::predict_ms`]: every member of a coalesced batch reports
    /// the same value.
    pub predict_us: u64,
}

/// The engine's answer to one [`AdviseRequest`](crate::AdviseRequest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdviseReport {
    /// Kernel the request named.
    pub kernel: String,
    /// Platform the engine serves.
    pub platform: Platform,
    /// Name of the backend that produced the predictions (provenance).
    pub backend: String,
    /// Candidates ranked fastest-first.
    pub rankings: Vec<VariantPrediction>,
    /// Candidates whose prediction failed.
    pub failures: Vec<PredictionFailure>,
    /// Wall-time accounting.
    pub timing: Timing,
    /// Cache activity during this request.
    pub cache: CacheActivity,
    /// Unique static-analysis diagnostics across the request's candidates
    /// (empty when the analysis gate is disabled).
    pub diagnostics: Vec<Diagnostic>,
    /// Variants the legality gate pruned as provable data races before
    /// prediction (always empty for raw-source requests, which are
    /// diagnosed but never pruned).
    pub race_pruned: Vec<PrunedVariant>,
    /// Per-stage latency attribution; `None` unless the request ran
    /// through a traced path (`Engine::advise_many_traced`).
    pub stages: Option<StageBreakdown>,
}

impl AdviseReport {
    /// The predicted-fastest candidate.
    pub fn best(&self) -> Option<&VariantPrediction> {
        self.rankings.first()
    }

    /// Number of candidates the engine evaluated (succeeded + failed).
    pub fn candidates(&self) -> usize {
        self.rankings.len() + self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_best() {
        let report = AdviseReport {
            kernel: "MM/matmul".into(),
            platform: Platform::SummitV100,
            backend: "simulator".into(),
            rankings: vec![
                VariantPrediction {
                    variant: Some(Variant::GpuCollapse),
                    launch: LaunchConfig {
                        teams: 80,
                        threads: 128,
                    },
                    predicted_ms: 1.5,
                },
                VariantPrediction {
                    variant: None,
                    launch: LaunchConfig {
                        teams: 1,
                        threads: 16,
                    },
                    predicted_ms: 3.0,
                },
            ],
            failures: vec![],
            timing: Timing::default(),
            cache: CacheActivity::default(),
            diagnostics: vec![],
            race_pruned: vec![],
            stages: None,
        };
        assert_eq!(report.best().unwrap().predicted_ms, 1.5);
        assert_eq!(report.best().unwrap().label(), "gpu_collapse @ 80x128");
        assert_eq!(report.rankings[1].label(), "source @ 1x16");
        assert_eq!(report.candidates(), 2);
    }
}
