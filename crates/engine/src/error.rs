//! The single error surface of the engine.
//!
//! Callers of [`Engine::advise`](crate::Engine::advise) handle exactly one
//! error type: every lower-layer failure (frontend parse errors — which are
//! also what `pg-perfsim`'s measurement path returns — unknown catalogue
//! kernels, empty candidate sets) converts into [`EngineError`].

use pg_frontend::FrontendError;
use pg_perfsim::Platform;
use std::fmt;

/// Any failure the engine's request path can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The kernel source failed to lex/parse/analyze. This also covers the
    /// perfsim measurement path, whose error type is [`FrontendError`].
    Frontend(FrontendError),
    /// The requested catalogue kernel does not exist.
    UnknownKernel(String),
    /// No variant of the kernel applies to the engine's platform.
    NoApplicableVariants {
        /// Fully qualified kernel name.
        kernel: String,
        /// Platform the engine serves.
        platform: Platform,
    },
    /// The request's launch budget produced no launch configurations.
    EmptyBudget,
    /// Every candidate prediction failed; the first underlying failure is
    /// carried for diagnosis.
    AllPredictionsFailed {
        /// Fully qualified kernel name.
        kernel: String,
        /// First underlying failure.
        first: Box<EngineError>,
    },
    /// The backend cannot serve this request (e.g. a GPU-trained model asked
    /// to predict on a CPU platform).
    BackendUnavailable(String),
    /// The static legality gate rejected every applicable variant as a data
    /// race, leaving nothing to rank.
    AllVariantsRace {
        /// Fully qualified kernel name.
        kernel: String,
        /// The race reason of the first pruned variant.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Frontend(e) => write!(f, "frontend: {e}"),
            EngineError::UnknownKernel(name) => {
                write!(f, "unknown catalogue kernel `{name}`")
            }
            EngineError::NoApplicableVariants { kernel, platform } => write!(
                f,
                "no variant of `{kernel}` applies to platform {}",
                platform.name()
            ),
            EngineError::EmptyBudget => write!(f, "launch budget is empty"),
            EngineError::AllPredictionsFailed { kernel, first } => {
                write!(
                    f,
                    "every prediction for `{kernel}` failed; first error: {first}"
                )
            }
            EngineError::BackendUnavailable(why) => write!(f, "backend unavailable: {why}"),
            EngineError::AllVariantsRace { kernel, reason } => write!(
                f,
                "every variant of `{kernel}` was rejected by the legality gate: {reason}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Frontend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrontendError> for EngineError {
    fn from(e: FrontendError) -> Self {
        EngineError::Frontend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_frontend::parse;

    #[test]
    fn frontend_errors_convert_and_display() {
        let err = parse("this is not C").unwrap_err();
        let engine_err: EngineError = err.into();
        assert!(matches!(engine_err, EngineError::Frontend(_)));
        assert!(engine_err.to_string().starts_with("frontend:"));
        assert!(std::error::Error::source(&engine_err).is_some());
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<EngineError> = vec![
            EngineError::UnknownKernel("X/y".into()),
            EngineError::NoApplicableVariants {
                kernel: "X/y".into(),
                platform: Platform::SummitV100,
            },
            EngineError::EmptyBudget,
            EngineError::AllPredictionsFailed {
                kernel: "X/y".into(),
                first: Box::new(EngineError::EmptyBudget),
            },
            EngineError::BackendUnavailable("gpu-only model".into()),
            EngineError::AllVariantsRace {
                kernel: "X/y".into(),
                reason: "loop-carried-dependence".into(),
            },
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }
}
