//! The engine as a consumer of raw, never-catalogued kernel source.
//!
//! The frontend's per-request parse budget ([`ParseOptions`]) must surface
//! through the engine as typed [`EngineError::Frontend`] values — never a
//! panic — and repeated requests for the same raw source must be memoized
//! by the frontend cache so hostile traffic cannot force re-parsing.

use pg_engine::{AdviseRequest, Engine, EngineError, FrontendCache};
use pg_frontend::testing::nesting_bomb;
use pg_frontend::ParseOptions;

const RAW_KERNEL: &str = r#"
void saxpy(float *a, float *b, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        a[i] = a[i] + 2.0 * b[i];
    }
}
"#;

#[test]
fn raw_source_advise_succeeds_end_to_end() {
    let engine = Engine::builder().build();
    let report = engine
        .advise(&AdviseRequest::source("demo/saxpy", RAW_KERNEL))
        .expect("raw uncatalogued source advises");
    assert!(!report.rankings.is_empty(), "expected ranked candidates");
    assert!(
        report.race_pruned.is_empty(),
        "raw sources are diagnosed, never pruned"
    );
}

#[test]
fn raw_source_asts_are_memoized() {
    let cache = FrontendCache::new(8);
    let first = cache.ast(RAW_KERNEL).expect("source parses");
    let after_first = cache.counters();
    assert_eq!(after_first.misses, 1);

    let second = cache.ast(RAW_KERNEL).expect("cached source parses");
    let delta = cache.counters().since(after_first);
    assert_eq!(delta.misses, 0, "second lookup must not re-parse");
    assert_eq!(delta.hits, 1);
    assert!(
        std::sync::Arc::ptr_eq(&first, &second),
        "hits share the Arc'd AST"
    );
}

#[test]
fn repeated_raw_source_requests_hit_the_engine_cache() {
    let engine = Engine::builder().build();
    let request = AdviseRequest::source("demo/saxpy", RAW_KERNEL);
    engine.advise(&request).expect("first request advises");
    let warm = engine.cache_counters();
    engine.advise(&request).expect("second request advises");
    let delta = engine.cache_counters().since(warm);
    assert_eq!(delta.misses, 0, "warm raw-source request must not re-parse");
    assert!(delta.hits > 0);
}

#[test]
fn parse_budget_violations_surface_as_typed_limit_errors() {
    let engine = Engine::builder().build();
    let bomb = nesting_bomb(100_000);
    let err = engine
        .advise(&AdviseRequest::source("demo/bomb", &bomb))
        .expect_err("a nesting bomb must be rejected");
    match err {
        EngineError::Frontend(e) => assert!(e.is_limit(), "expected a limit rejection, got: {e}"),
        other => panic!("expected EngineError::Frontend, got: {other}"),
    }
}

#[test]
fn builder_parse_options_reach_the_cache() {
    let tight = ParseOptions::default().with_max_source_bytes(64);
    let engine = Engine::builder().parse_options(tight).build();
    let err = engine
        .advise(&AdviseRequest::source("demo/saxpy", RAW_KERNEL))
        .expect_err("64-byte budget rejects the kernel");
    match err {
        EngineError::Frontend(e) => assert!(e.is_limit()),
        other => panic!("expected EngineError::Frontend, got: {other}"),
    }

    let cache = FrontendCache::with_parse_options(4, tight);
    assert_eq!(cache.parse_options().max_source_bytes, 64);
    assert!(cache.ast(RAW_KERNEL).is_err());
}
