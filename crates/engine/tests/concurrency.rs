//! Concurrency regression tests for the shared-engine serving path.
//!
//! The serving tier (`pg-serve`) hands one `Arc<Engine>` to many threads,
//! so `Engine` must be `Send + Sync` and the interior mutability inside
//! [`FrontendCache`] (per-layer mutexes + atomic counters) must not lose
//! updates or tear under contention. The hammer test pins that: against a
//! fully warmed cache, every lookup is deterministic, so the counter
//! deltas of N concurrent sweeps must equal exactly N times the delta of
//! one serial sweep — a lost counter update, a racy eviction, or any
//! accidental per-thread state would break the equality.

use pg_engine::{AdviseRequest, CacheCounters, Engine, FrontendCache};
use pg_perfsim::Platform;
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_and_cache_are_send_sync() {
    assert_send_sync::<Engine>();
    assert_send_sync::<Arc<Engine>>();
    assert_send_sync::<FrontendCache>();
}

fn request_mix() -> Vec<AdviseRequest> {
    use pg_advisor::LaunchConfig;
    let mut requests = Vec::new();
    for kernel in ["MM/matmul", "MV/matvec", "Transpose/transpose"] {
        for &(teams, threads) in &[(80u64, 128u64), (40, 256)] {
            requests
                .push(AdviseRequest::catalog(kernel).with_launch(LaunchConfig { teams, threads }));
        }
    }
    requests
}

#[test]
fn hammering_a_shared_engine_matches_serial_cache_accounting() {
    const THREADS: usize = 8;
    const SWEEPS_PER_THREAD: usize = 4;

    let engine = Arc::new(Engine::builder().platform(Platform::SummitV100).build());
    let requests = request_mix();

    // Warm every key so lookups become deterministic hits (no first-miss
    // races left to blur the accounting).
    let warm_reports: Vec<_> = requests.iter().map(|r| engine.advise(r).unwrap()).collect();

    // One serial sweep over the warm cache is the per-sweep reference.
    let before_serial = engine.cache_counters();
    for request in &requests {
        let report = engine.advise(request).unwrap();
        assert_eq!(report.cache.misses, 0, "cache must be fully warm");
    }
    let per_sweep = engine.cache_counters().since(before_serial);
    assert!(per_sweep.hits > 0);
    assert_eq!(per_sweep.misses, 0);

    // Hammer: N threads, each sweeping the same requests over the shared
    // engine.
    let before_hammer = engine.cache_counters();
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut reports = Vec::new();
                for _ in 0..SWEEPS_PER_THREAD {
                    for request in &requests {
                        reports.push(engine.advise(request).unwrap());
                    }
                }
                reports
            })
        })
        .collect();
    let mut all_reports = Vec::new();
    for worker in workers {
        all_reports.extend(worker.join().unwrap());
    }

    // Counter totals must be exactly serial × thread count: relaxed-atomic
    // increments may not lose updates, and no warm lookup may miss.
    let hammer_delta = engine.cache_counters().since(before_hammer);
    let expected = CacheCounters {
        hits: per_sweep.hits * (THREADS * SWEEPS_PER_THREAD) as u64,
        misses: 0,
    };
    assert_eq!(
        hammer_delta, expected,
        "concurrent cache accounting diverged from the serial reference"
    );

    // And every concurrent report is bit-identical to the serial one.
    for (i, report) in all_reports.iter().enumerate() {
        let reference = &warm_reports[i % requests.len()];
        assert_eq!(report.rankings, reference.rankings);
        assert_eq!(report.failures, reference.failures);
        assert_eq!(report.cache.misses, 0);
    }
}
