//! The search space: the `(variant × launch)` grid a tuning run explores.
//!
//! A [`SearchSpace`] is built from the same ingredients [`pg_engine::Engine`]
//! uses to enumerate an advise sweep — [`Variant::applicable_variants`]
//! filtered to the platform, and the launch grid of a
//! [`ParallelismBudget`] — so that exhaustively evaluating the space is
//! *bit-identical* to `Engine::advise` over the same request. Strategies
//! move over the launch grid (the "levels of parallelism" axes of the
//! paper); every visited grid point scores **all** applicable variants at
//! that launch in one engine request, so the variant and clause dimensions
//! (collapse, map, schedule — carried by the variant's pragma) are ranked
//! for free with each move.

use crate::error::TuneError;
use pg_advisor::{LaunchConfig, ParallelismBudget, Variant};
use pg_analyze::LegalityVerdict;
use pg_engine::LaunchBudget;
use pg_kernels::KernelTemplate;
use pg_perfsim::Platform;
use std::collections::HashMap;

/// One point of the launch grid, addressed by its index on each axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridPoint {
    /// Index into [`SearchSpace::teams_axis`].
    pub teams_idx: usize,
    /// Index into [`SearchSpace::threads_axis`].
    pub threads_idx: usize,
}

/// The space a tuning run searches: a catalogue kernel, the variants
/// applicable on the platform, and the launch grid spanned by a parallelism
/// budget.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The kernel template being tuned.
    pub kernel: KernelTemplate,
    /// Platform the engine serves (fixes the GPU/CPU variant filter and the
    /// default launch grid).
    pub platform: Platform,
    /// Explicit problem sizes, if the request carried any (`None` lets the
    /// engine use the kernel's defaults, exactly like `advise`).
    pub sizes: Option<HashMap<String, i64>>,
    /// Applicable variants in enumeration order — identical to the order
    /// `Engine::advise` enumerates, which is what makes tie-breaking
    /// bit-compatible.
    pub variants: Vec<Variant>,
    /// Team-count axis of the launch grid (always `[1]` on CPU platforms).
    pub teams_axis: Vec<u64>,
    /// Thread-count axis of the launch grid.
    pub threads_axis: Vec<u64>,
    /// Variants the static legality gate removed before the search started
    /// (provable data races never enter the space, so no budget is spent on
    /// them). Always 0 for the shipped catalogue.
    pub race_pruned: u64,
}

impl SearchSpace {
    /// Build the space for a catalogue kernel under a launch budget,
    /// mirroring `Engine::advise` enumeration exactly: the same variant
    /// filter, the same launch grid, the same ordering.
    pub fn build(
        platform: Platform,
        kernel_name: &str,
        sizes: Option<HashMap<String, i64>>,
        budget: &LaunchBudget,
    ) -> Result<SearchSpace, TuneError> {
        let kernel = pg_kernels::find_kernel(kernel_name)
            .ok_or_else(|| TuneError::UnknownKernel(kernel_name.to_string()))?;
        Self::build_for_template(kernel, platform, sizes, budget)
    }

    /// [`SearchSpace::build`] for a caller-supplied template (a modified
    /// catalogue kernel, a hand-written one). The same legality gate
    /// applies: variants whose instantiated source the analysis proves racy
    /// are removed from the space before any budget is spent, and counted
    /// in [`SearchSpace::race_pruned`].
    pub fn build_for_template(
        kernel: KernelTemplate,
        platform: Platform,
        sizes: Option<HashMap<String, i64>>,
        budget: &LaunchBudget,
    ) -> Result<SearchSpace, TuneError> {
        let kernel_name = kernel.full_name();
        let variants: Vec<Variant> = Variant::applicable_variants(&kernel)
            .into_iter()
            .filter(|v| v.is_gpu() == platform.is_gpu())
            .collect();
        if variants.is_empty() {
            return Err(TuneError::NoApplicableVariants {
                kernel: kernel_name,
                platform,
            });
        }
        let (teams_axis, threads_axis) = match budget {
            LaunchBudget::Fixed(launch) => (vec![launch.teams], vec![launch.threads]),
            LaunchBudget::Sweep(budget) => axes_of(budget, platform.is_gpu()),
            LaunchBudget::PlatformDefault => axes_of(&platform.default_budget(), platform.is_gpu()),
        };
        if teams_axis.is_empty() || threads_axis.is_empty() {
            return Err(TuneError::EmptyBudget);
        }
        // Legality gate: assess each variant once at the grid origin —
        // launch clauses (num_teams / thread_limit / schedule) never change
        // legality, so one launch point stands in for the whole grid.
        let probe_launch = LaunchConfig {
            teams: teams_axis[0],
            threads: threads_axis[0],
        };
        let effective_sizes = sizes.clone().unwrap_or_else(|| kernel.default_sizes());
        let mut admitted = Vec::with_capacity(variants.len());
        let mut race_pruned = 0u64;
        let mut first_reason: Option<String> = None;
        for variant in variants {
            let instance =
                pg_advisor::instantiate(&kernel, variant, &effective_sizes, probe_launch);
            let report = pg_advisor::assess_instance(&instance);
            if let LegalityVerdict::Race(reason) = report.verdict {
                race_pruned += 1;
                first_reason.get_or_insert(reason);
            } else {
                admitted.push(variant);
            }
        }
        if admitted.is_empty() {
            return Err(TuneError::AllVariantsRace {
                kernel: kernel_name,
                reason: first_reason.unwrap_or_default(),
            });
        }
        Ok(SearchSpace {
            kernel,
            platform,
            sizes,
            variants: admitted,
            teams_axis,
            threads_axis,
            race_pruned,
        })
    }

    /// Number of grid points (launch configurations).
    pub fn launch_points(&self) -> usize {
        self.teams_axis.len() * self.threads_axis.len()
    }

    /// Number of candidates (`variants × launch points`) — what exhaustive
    /// search evaluates, and what an advise sweep ranks.
    pub fn candidates(&self) -> u64 {
        self.variants.len() as u64 * self.launch_points() as u64
    }

    /// The launch configuration at a grid point.
    pub fn launch(&self, point: GridPoint) -> LaunchConfig {
        LaunchConfig {
            teams: self.teams_axis[point.teams_idx],
            threads: self.threads_axis[point.threads_idx],
        }
    }

    /// Flat index of a grid point in advise enumeration order (teams-major,
    /// matching [`ParallelismBudget::gpu_launches`] /
    /// [`ParallelismBudget::cpu_launches`]).
    pub fn flat_index(&self, point: GridPoint) -> usize {
        point.teams_idx * self.threads_axis.len() + point.threads_idx
    }

    /// Grid point of a flat index (inverse of [`SearchSpace::flat_index`]).
    pub fn point_from_flat(&self, flat: usize) -> GridPoint {
        GridPoint {
            teams_idx: flat / self.threads_axis.len(),
            threads_idx: flat % self.threads_axis.len(),
        }
    }

    /// Every grid point, in advise enumeration (teams-major) order.
    pub fn all_points(&self) -> Vec<GridPoint> {
        (0..self.launch_points())
            .map(|flat| self.point_from_flat(flat))
            .collect()
    }

    /// The 4-neighbourhood of a point: one step along each axis, in a fixed
    /// deterministic order (teams−1, teams+1, threads−1, threads+1).
    pub fn neighbors(&self, point: GridPoint) -> Vec<GridPoint> {
        let mut out = Vec::with_capacity(4);
        if point.teams_idx > 0 {
            out.push(GridPoint {
                teams_idx: point.teams_idx - 1,
                ..point
            });
        }
        if point.teams_idx + 1 < self.teams_axis.len() {
            out.push(GridPoint {
                teams_idx: point.teams_idx + 1,
                ..point
            });
        }
        if point.threads_idx > 0 {
            out.push(GridPoint {
                threads_idx: point.threads_idx - 1,
                ..point
            });
        }
        if point.threads_idx + 1 < self.threads_axis.len() {
            out.push(GridPoint {
                threads_idx: point.threads_idx + 1,
                ..point
            });
        }
        out
    }

    /// Deterministic seed frontier for local strategies: the centre of the
    /// grid plus its four corners (deduplicated, order-stable). Extremes
    /// catch monotone landscapes ("more parallelism is always better"), the
    /// centre catches interior optima.
    pub fn seed_points(&self) -> Vec<GridPoint> {
        let (tmax, hmax) = (self.teams_axis.len() - 1, self.threads_axis.len() - 1);
        let candidates = [
            GridPoint {
                teams_idx: tmax / 2,
                threads_idx: hmax / 2,
            },
            GridPoint {
                teams_idx: 0,
                threads_idx: 0,
            },
            GridPoint {
                teams_idx: 0,
                threads_idx: hmax,
            },
            GridPoint {
                teams_idx: tmax,
                threads_idx: 0,
            },
            GridPoint {
                teams_idx: tmax,
                threads_idx: hmax,
            },
        ];
        let mut out: Vec<GridPoint> = Vec::with_capacity(candidates.len());
        for p in candidates {
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }
}

/// The two launch-grid axes of a budget: GPU variants sweep
/// `teams × threads`; CPU variants sweep threads at one team.
fn axes_of(budget: &ParallelismBudget, gpu: bool) -> (Vec<u64>, Vec<u64>) {
    if gpu {
        (budget.gpu_teams.clone(), budget.gpu_threads.clone())
    } else {
        (vec![1], budget.cpu_threads.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::build(
            Platform::SummitV100,
            "MM/matmul",
            None,
            &LaunchBudget::PlatformDefault,
        )
        .unwrap()
    }

    #[test]
    fn grid_matches_the_platform_default_budget() {
        let s = space();
        // V100: 80 SMs -> teams {40, 80, 160}, threads {64, 128, 256}.
        assert_eq!(s.teams_axis, vec![40, 80, 160]);
        assert_eq!(s.threads_axis, vec![64, 128, 256]);
        assert_eq!(s.launch_points(), 9);
        assert_eq!(s.candidates(), 4 * 9); // four GPU variants on matmul
        assert!(s.variants.iter().all(|v| v.is_gpu()));
    }

    #[test]
    fn flat_order_matches_gpu_launch_enumeration() {
        let s = space();
        let budget = ParallelismBudget::for_gpu(Platform::SummitV100.parallel_units());
        let launches = budget.gpu_launches();
        for (flat, expected) in launches.iter().enumerate() {
            let point = s.point_from_flat(flat);
            assert_eq!(s.launch(point), *expected);
            assert_eq!(s.flat_index(point), flat);
        }
    }

    #[test]
    fn cpu_spaces_have_one_team() {
        let s = SearchSpace::build(
            Platform::SummitPower9,
            "MM/matmul",
            None,
            &LaunchBudget::PlatformDefault,
        )
        .unwrap();
        assert_eq!(s.teams_axis, vec![1]);
        assert!(s.variants.iter().all(|v| !v.is_gpu()));
        // 1D grid: neighbours only along the threads axis.
        let p = GridPoint {
            teams_idx: 0,
            threads_idx: 1,
        };
        assert!(s
            .neighbors(p)
            .iter()
            .all(|n| n.teams_idx == 0 && n.threads_idx != 1));
    }

    #[test]
    fn neighbors_stay_in_bounds_and_seeds_dedup() {
        let s = space();
        for p in s.all_points() {
            for n in s.neighbors(p) {
                assert!(n.teams_idx < s.teams_axis.len());
                assert!(n.threads_idx < s.threads_axis.len());
                let manhattan =
                    n.teams_idx.abs_diff(p.teams_idx) + n.threads_idx.abs_diff(p.threads_idx);
                assert_eq!(manhattan, 1);
            }
        }
        let seeds = s.seed_points();
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
        // A 1×1 grid still has exactly one seed.
        let tiny = SearchSpace::build(
            Platform::SummitV100,
            "MM/matmul",
            None,
            &LaunchBudget::Fixed(LaunchConfig {
                teams: 80,
                threads: 128,
            }),
        )
        .unwrap();
        assert_eq!(tiny.seed_points().len(), 1);
        assert!(tiny.neighbors(tiny.seed_points()[0]).is_empty());
    }

    #[test]
    fn catalogue_spaces_are_never_race_pruned() {
        assert_eq!(space().race_pruned, 0);
    }

    #[test]
    fn racy_template_variants_are_pruned_from_the_space() {
        // A mutant of the catalogue matmul whose store reads the next
        // parallel row: every variant of it is a provable race, so the
        // space cannot be built at all.
        let mut mutant = pg_kernels::find_kernel("MM/matmul").unwrap();
        mutant.source = Box::leak(
            mutant
                .source
                .replace("= sum;", "= sum + c[(i + 1) * {{N}} + j];")
                .into_boxed_str(),
        );
        let err = SearchSpace::build_for_template(
            mutant,
            Platform::SummitV100,
            None,
            &LaunchBudget::PlatformDefault,
        )
        .unwrap_err();
        match err {
            TuneError::AllVariantsRace { kernel, reason } => {
                assert_eq!(kernel, "MM/matmul");
                assert!(reason.contains("loop-carried-dependence"), "{reason}");
            }
            other => panic!("expected AllVariantsRace, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kernels_and_empty_budgets_error() {
        assert!(matches!(
            SearchSpace::build(
                Platform::SummitV100,
                "Nope/none",
                None,
                &LaunchBudget::PlatformDefault
            ),
            Err(TuneError::UnknownKernel(_))
        ));
        let empty = ParallelismBudget {
            cpu_threads: vec![],
            gpu_teams: vec![],
            gpu_threads: vec![],
        };
        assert!(matches!(
            SearchSpace::build(
                Platform::SummitV100,
                "MM/matmul",
                None,
                &LaunchBudget::Sweep(empty)
            ),
            Err(TuneError::EmptyBudget)
        ));
    }
}
