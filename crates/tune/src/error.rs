//! Why a tuning run could not start or finish.

use pg_engine::EngineError;
use pg_perfsim::Platform;

/// Error of one tuning run.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The requested kernel is not in the Table I catalogue. Tuning searches
    /// the variant space, which only catalogue templates can enumerate.
    UnknownKernel(String),
    /// No transformation variant of the kernel applies on the platform.
    NoApplicableVariants {
        /// The requested kernel.
        kernel: String,
        /// The engine's platform.
        platform: Platform,
    },
    /// The launch budget spans no launch configuration.
    EmptyBudget,
    /// The static legality gate rejected every applicable variant as a data
    /// race, leaving nothing to search.
    AllVariantsRace {
        /// The requested kernel.
        kernel: String,
        /// The race reason of the first rejected variant.
        reason: String,
    },
    /// The budget could not afford a single launch point, so the search
    /// evaluated nothing: either `max_generations` is zero, or
    /// `max_evaluations` is below the cost of one point (one prediction per
    /// applicable variant).
    NothingEvaluated {
        /// Cost of one launch point, in evaluations.
        point_cost: u64,
        /// The configured `max_evaluations`.
        max_evaluations: u64,
        /// The configured `max_generations`.
        max_generations: u64,
    },
    /// The engine failed while scoring a frontier.
    Engine(EngineError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::UnknownKernel(name) => {
                write!(f, "unknown catalogue kernel `{name}` (tuning needs a catalogue template to enumerate variants)")
            }
            TuneError::NoApplicableVariants { kernel, platform } => write!(
                f,
                "no applicable variants of `{kernel}` on {}",
                platform.name()
            ),
            TuneError::EmptyBudget => write!(f, "the launch budget spans no launch configuration"),
            TuneError::AllVariantsRace { kernel, reason } => write!(
                f,
                "every variant of `{kernel}` was rejected by the legality gate: {reason}"
            ),
            TuneError::NothingEvaluated {
                point_cost,
                max_evaluations,
                max_generations,
            } => {
                if *max_generations == 0 {
                    write!(f, "a generation budget of 0 cannot evaluate anything")
                } else {
                    write!(
                        f,
                        "budget of {max_evaluations} evaluations is below the {point_cost}-evaluation cost of a single launch point"
                    )
                }
            }
            TuneError::Engine(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Engine(error) => Some(error),
            _ => None,
        }
    }
}

impl From<EngineError> for TuneError {
    fn from(error: EngineError) -> Self {
        TuneError::Engine(error)
    }
}
