//! The pluggable search strategies.
//!
//! A [`SearchStrategy`] never touches the engine: it proposes frontiers of
//! grid points and the [`Evaluator`] scores them, enforces the budget, and
//! keeps the records. The contract a strategy must honour:
//!
//! * **Evaluate only through the evaluator.** That is what guarantees the
//!   budget bounds, the monotone trajectory, and that the reported best was
//!   actually evaluated, no matter how the strategy is written.
//! * **Be deterministic.** Same space, same engine, same knobs (and, for
//!   randomized strategies, same seed) must produce the same report. Use
//!   no ambient randomness — take an explicit `u64` seed like
//!   [`Hillclimb`] does.
//! * **Stop when the evaluator says so.** An empty return from
//!   [`Evaluator::evaluate`] for a non-empty fresh frontier means a budget
//!   bound hit; return [`Evaluator::limit_reason`] and exit.

use crate::error::TuneError;
use crate::evaluator::{Evaluator, PointScore};
use crate::report::{StopReason, StrategySpec};
use crate::space::{GridPoint, SearchSpace};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One search policy over a [`SearchSpace`].
pub trait SearchStrategy {
    /// Short stable name, recorded in the report (`"beam"`, ...).
    fn name(&self) -> &'static str;

    /// Explore the space through `eval` until converged or out of budget.
    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<StopReason, TuneError>;
}

impl StrategySpec {
    /// Instantiate the strategy this spec describes.
    pub fn build(&self) -> Box<dyn SearchStrategy> {
        match *self {
            StrategySpec::Exhaustive => Box::new(Exhaustive),
            StrategySpec::Beam { width, patience } => Box::new(Beam {
                width: (width.max(1)) as usize,
                patience,
            }),
            StrategySpec::Hillclimb { seed, restarts } => Box::new(Hillclimb { seed, restarts }),
        }
    }
}

/// Score every candidate in one generation — one `advise_many` over the
/// whole grid, hence one backend `predict_batch`, exactly like
/// `Engine::advise` over the same request. The golden baseline the other
/// strategies are measured against.
pub struct Exhaustive;

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<StopReason, TuneError> {
        // Materialize only what the budget can afford: a wire-supplied
        // sweep can span a grid with billions of points, and the evaluator
        // would truncate the batch anyway — building the full point list
        // first would be an allocation amplification a client controls.
        let affordable = (eval.remaining_evaluations() / eval.point_cost().max(1)) as usize;
        let points: Vec<GridPoint> = (0..space.launch_points().min(affordable))
            .map(|flat| space.point_from_flat(flat))
            .collect();
        eval.evaluate(&points)?;
        Ok(if eval.fully_covered() {
            StopReason::SpaceExhausted
        } else {
            eval.limit_reason()
        })
    }
}

/// Width-`k` beam over the launch grid.
///
/// Generation 1 scores the deterministic seed frontier (grid centre +
/// corners); every further generation expands the unevaluated
/// 4-neighbourhood of the `width` best evaluated points and scores it as
/// one batch. With `width ≥` the number of grid points the beam degenerates
/// into breadth-first coverage of the whole (connected) grid, which is why
/// a wide beam is bit-identical to exhaustive search.
pub struct Beam {
    /// How many of the best evaluated points expand each generation.
    pub width: usize,
    /// Generations without improvement before stopping; 0 = never stop on
    /// staleness.
    pub patience: u64,
}

impl SearchStrategy for Beam {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<StopReason, TuneError> {
        let seeded = eval.evaluate(&space.seed_points())?;
        if seeded.is_empty() {
            return Ok(eval.limit_reason());
        }
        let mut stale = 0u64;
        loop {
            if eval.fully_covered() {
                return Ok(StopReason::SpaceExhausted);
            }
            if !eval.can_evaluate() {
                return Ok(eval.limit_reason());
            }
            let frontier = eval.ranked_points(self.width);
            let mut expansion: Vec<GridPoint> = Vec::new();
            for scored in &frontier {
                for neighbor in space.neighbors(scored.point) {
                    if !eval.is_evaluated(neighbor) && !expansion.contains(&neighbor) {
                        expansion.push(neighbor);
                    }
                }
            }
            if expansion.is_empty() {
                // The beam's whole neighbourhood is known: converged (with
                // width ≥ grid size this can only happen on full coverage,
                // which the check above already returned).
                return Ok(StopReason::Converged);
            }
            let best_before = eval.best().map(|b| b.predicted_ms);
            let scored = eval.evaluate(&expansion)?;
            if scored.is_empty() {
                return Ok(eval.limit_reason());
            }
            let improved = match (best_before, eval.best()) {
                (Some(before), Some(after)) => after.predicted_ms < before,
                (None, Some(_)) => true,
                _ => false,
            };
            if improved {
                stale = 0;
            } else {
                stale += 1;
                if self.patience > 0 && stale >= self.patience {
                    return Ok(StopReason::Converged);
                }
            }
        }
    }
}

/// Greedy neighbourhood descent from seeded random start points.
///
/// Each descent evaluates the current point's unevaluated neighbours as one
/// batch and moves to the best neighbour while it strictly improves; a
/// local optimum triggers the next restart from a fresh random point. All
/// randomness flows from the explicit `seed` through the deterministic
/// `StdRng`, so a tuning run is reproducible bit-for-bit.
pub struct Hillclimb {
    /// Seed of the start-point RNG.
    pub seed: u64,
    /// Random restarts after the first descent.
    pub restarts: u64,
}

impl SearchStrategy for Hillclimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<StopReason, TuneError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total = space.launch_points();
        for _restart in 0..=self.restarts {
            if eval.fully_covered() {
                return Ok(StopReason::SpaceExhausted);
            }
            if !eval.can_evaluate() {
                return Ok(eval.limit_reason());
            }
            // Random unevaluated start, found by linear probing from a
            // uniform draw (deterministic given the seed and history).
            let mut flat = (rng.gen_range(0..total as u64)) as usize;
            while eval.is_evaluated(space.point_from_flat(flat)) {
                flat = (flat + 1) % total;
            }
            let start = space.point_from_flat(flat);
            let seeded = eval.evaluate(&[start])?;
            let Some(mut current) = seeded.into_iter().next() else {
                return Ok(eval.limit_reason());
            };
            loop {
                let fresh: Vec<GridPoint> = space
                    .neighbors(current.point)
                    .into_iter()
                    .filter(|&n| !eval.is_evaluated(n))
                    .collect();
                if !fresh.is_empty() {
                    if !eval.can_evaluate() {
                        return Ok(eval.limit_reason());
                    }
                    if eval.evaluate(&fresh)?.is_empty() {
                        return Ok(eval.limit_reason());
                    }
                }
                // Best neighbour over the *whole* (now fully scored)
                // neighbourhood, memoized values included.
                let best_neighbor: Option<PointScore> = space
                    .neighbors(current.point)
                    .into_iter()
                    .filter_map(|n| eval.score_of(n).copied())
                    .reduce(|a, b| if b.best.beats(&a.best) { b } else { a });
                match best_neighbor {
                    Some(neighbor) if neighbor.best.beats(&current.best) => current = neighbor,
                    _ => break, // local optimum -> restart
                }
            }
        }
        Ok(StopReason::Converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Budget;
    use pg_engine::{Engine, LaunchBudget};
    use pg_perfsim::Platform;

    fn fixture() -> (Engine, SearchSpace) {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let space = SearchSpace::build(
            Platform::SummitV100,
            "MM/matmul",
            None,
            &LaunchBudget::PlatformDefault,
        )
        .unwrap();
        (engine, space)
    }

    #[test]
    fn exhaustive_covers_the_space() {
        let (engine, space) = fixture();
        let mut eval = Evaluator::new(&engine, &space, Budget::default());
        let stop = Exhaustive.search(&space, &mut eval).unwrap();
        assert_eq!(stop, StopReason::SpaceExhausted);
        assert!(eval.fully_covered());
        assert_eq!(eval.generations(), 1);
        assert_eq!(eval.evaluations(), space.candidates());
    }

    #[test]
    fn wide_beam_degenerates_into_full_coverage() {
        let (engine, space) = fixture();
        let mut eval = Evaluator::new(&engine, &space, Budget::default());
        let beam = Beam {
            width: space.launch_points(),
            patience: 0,
        };
        let stop = beam.search(&space, &mut eval).unwrap();
        assert_eq!(stop, StopReason::SpaceExhausted);
        assert!(eval.fully_covered());
    }

    #[test]
    fn hillclimb_is_deterministic_per_seed() {
        let (engine, space) = fixture();
        let climb = |seed: u64| {
            let mut eval = Evaluator::new(&engine, &space, Budget::evaluations(48));
            Hillclimb { seed, restarts: 1 }
                .search(&space, &mut eval)
                .unwrap();
            (eval.trace().to_vec(), *eval.best().unwrap())
        };
        let (trace_a, best_a) = climb(7);
        let (trace_b, best_b) = climb(7);
        assert_eq!(trace_a, trace_b);
        assert_eq!(best_a, best_b);
        // A different seed explores a (usually) different trace but stays
        // within budget either way.
        let (trace_c, _) = climb(8);
        assert!(trace_c.len() as u64 <= 48);
    }

    #[test]
    fn strategy_specs_build_their_strategies() {
        assert_eq!(StrategySpec::Exhaustive.build().name(), "exhaustive");
        assert_eq!(StrategySpec::beam().build().name(), "beam");
        assert_eq!(StrategySpec::hillclimb(1).build().name(), "hillclimb");
    }
}
