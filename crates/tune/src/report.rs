//! The tuning wire types: what callers ask ([`TuneRequest`]) and what the
//! tuner answers ([`TuneReport`]). Both serialize with the same serde shim
//! the advise path uses, so `POST /tune` on `pg-serve` speaks these types
//! directly.

use pg_engine::{LaunchBudget, VariantPrediction};
use pg_perfsim::Platform;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Evaluation budget of one tuning run.
///
/// `max_evaluations` counts **candidate predictions** (one per
/// `variant × launch` pair the engine scores); `max_generations` counts
/// frontier batches (each generation is one `Engine::advise_many` call and
/// therefore one backend `predict_batch`). A strategy stops — mid-search if
/// necessary — the moment either bound would be exceeded; the evaluator
/// truncates frontiers so neither bound can ever be overshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Most candidate predictions the run may spend.
    pub max_evaluations: u64,
    /// Most frontier batches (backend calls) the run may spend.
    pub max_generations: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            max_evaluations: 4096,
            max_generations: 256,
        }
    }
}

impl Budget {
    /// A budget bounded only by evaluations.
    pub fn evaluations(max_evaluations: u64) -> Self {
        Self {
            max_evaluations,
            ..Self::default()
        }
    }
}

/// Which search strategy to run, with its knobs. Every strategy is
/// deterministic: `Exhaustive` and `Beam` by construction, `Hillclimb` via
/// the explicit seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// Score every candidate in one batch — bit-identical to
    /// `Engine::advise` over the same request, kept as the golden baseline.
    Exhaustive,
    /// Width-`width` beam over the launch grid with batched frontier
    /// evaluation (each generation is one `advise_many` call).
    Beam {
        /// Beam width: how many of the best evaluated points expand each
        /// generation (0 is treated as 1).
        width: u64,
        /// Stop after this many generations without improving the best
        /// candidate; 0 disables the early stop (the beam runs until the
        /// frontier has no unevaluated neighbours or a budget bound hits).
        patience: u64,
    },
    /// Greedy neighbourhood descent over the launch grid from random
    /// starting points, deterministic for a given `seed`.
    Hillclimb {
        /// RNG seed for start-point selection.
        seed: u64,
        /// Additional random restarts after the first descent.
        restarts: u64,
    },
}

impl StrategySpec {
    /// The strategy's short name (matches `TuneReport::strategy`).
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::Exhaustive => "exhaustive",
            StrategySpec::Beam { .. } => "beam",
            StrategySpec::Hillclimb { .. } => "hillclimb",
        }
    }

    /// A beam with the default width (4) and patience (2).
    pub fn beam() -> Self {
        StrategySpec::Beam {
            width: 4,
            patience: 2,
        }
    }

    /// A hillclimb with two restarts.
    pub fn hillclimb(seed: u64) -> Self {
        StrategySpec::Hillclimb { seed, restarts: 2 }
    }
}

/// One tuning request: a catalogue kernel, optional problem sizes, a launch
/// budget spanning the grid, a strategy, and the evaluation budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRequest {
    /// Fully qualified catalogue kernel name (`"MM/matmul"`).
    pub kernel: String,
    /// Problem sizes; `None` uses the kernel's defaults (like advise).
    pub sizes: Option<HashMap<String, i64>>,
    /// Launch configurations spanning the search grid.
    pub budget: LaunchBudget,
    /// Which strategy explores the space.
    pub strategy: StrategySpec,
    /// Evaluation/generation bounds.
    pub limits: Budget,
}

impl TuneRequest {
    /// Tune a catalogue kernel with the platform-default launch grid, the
    /// default beam strategy and the default budget.
    pub fn catalog(kernel: impl Into<String>) -> Self {
        Self {
            kernel: kernel.into(),
            sizes: None,
            budget: LaunchBudget::PlatformDefault,
            strategy: StrategySpec::beam(),
            limits: Budget::default(),
        }
    }

    /// Set explicit problem sizes.
    pub fn with_sizes(mut self, sizes: HashMap<String, i64>) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Span the grid from an explicit parallelism budget.
    pub fn with_budget(mut self, budget: pg_advisor::ParallelismBudget) -> Self {
        self.budget = LaunchBudget::Sweep(budget);
        self
    }

    /// Pick the strategy.
    pub fn with_strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Bound the run.
    pub fn with_limits(mut self, limits: Budget) -> Self {
        self.limits = limits;
        self
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The strategy decided the frontier had converged (no improving or
    /// unevaluated moves left under its policy).
    Converged,
    /// Every candidate of the space was evaluated.
    SpaceExhausted,
    /// `Budget::max_evaluations` would have been exceeded.
    BudgetExhausted,
    /// `Budget::max_generations` would have been exceeded.
    GenerationLimit,
}

/// Best-so-far after one generation (one frontier batch).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// 1-based generation index.
    pub generation: u64,
    /// Cumulative candidate predictions spent after this generation.
    pub evaluations: u64,
    /// Best predicted runtime seen so far, milliseconds.
    pub best_ms: f64,
    /// Wall time this generation's frontier batch took, milliseconds
    /// (per-generation latency attribution; also recorded into the
    /// `tune_generation` stage histogram).
    pub gen_ms: f64,
}

/// Search identity ignores `gen_ms`: two runs of the same deterministic
/// search are "the same trajectory" even though their wall clocks differ
/// (the serve round-trip suite compares served vs direct trajectories).
impl PartialEq for TrajectoryPoint {
    fn eq(&self, other: &Self) -> bool {
        self.generation == other.generation
            && self.evaluations == other.evaluations
            && self.best_ms == other.best_ms
    }
}

/// How much of the space the run covered and how much it pruned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SpaceAccounting {
    /// Applicable variants on the platform.
    pub variants: u64,
    /// Launch-grid points.
    pub launch_points: u64,
    /// Total candidates (`variants × launch_points`).
    pub candidates: u64,
    /// Successful candidate predictions (what the evaluation budget
    /// counts).
    pub evaluated: u64,
    /// Candidate predictions the backend failed per-candidate (they spend
    /// generations, not evaluation budget).
    pub failed: u64,
    /// Candidates never attempted (`candidates − evaluated − failed`).
    pub pruned: u64,
    /// Variants the static legality gate removed before the search started
    /// (these never enter `candidates` at all — no budget is spent on a
    /// provable race). Always 0 for the shipped catalogue.
    pub race_pruned: u64,
}

/// The tuner's answer: the winning candidate plus full search accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    /// Kernel the request named.
    pub kernel: String,
    /// Platform of the engine that served as cost model.
    pub platform: Platform,
    /// Backend that produced the predictions (provenance).
    pub backend: String,
    /// Strategy that ran (`"exhaustive"`, `"beam"`, `"hillclimb"`).
    pub strategy: String,
    /// The best candidate found (variant, launch, predicted runtime).
    pub best: VariantPrediction,
    /// Why the search stopped.
    pub stop: StopReason,
    /// Frontier batches executed (= backend `predict_batch` calls).
    pub generations: u64,
    /// Coverage and pruning accounting.
    pub space: SpaceAccounting,
    /// Best-so-far after every generation (monotonically non-worsening).
    pub trajectory: Vec<TrajectoryPoint>,
    /// Whole run, end to end, milliseconds.
    pub wall_ms: f64,
}

impl TuneReport {
    /// Fraction of the candidate space actually evaluated, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.space.candidates == 0 {
            0.0
        } else {
            self.space.evaluated as f64 / self.space.candidates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_requests_serialize() {
        let request = TuneRequest::catalog("MM/matmul")
            .with_strategy(StrategySpec::Hillclimb {
                seed: 7,
                restarts: 1,
            })
            .with_limits(Budget::evaluations(64));
        assert_eq!(request.kernel, "MM/matmul");
        assert_eq!(request.strategy.name(), "hillclimb");
        assert_eq!(request.limits.max_evaluations, 64);
        let json = serde_json::to_string(&request).unwrap();
        let back: TuneRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(request, back);
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let report = TuneReport {
            kernel: "MM/matmul".into(),
            platform: Platform::SummitV100,
            backend: "simulator".into(),
            strategy: "beam".into(),
            best: VariantPrediction {
                variant: Some(pg_advisor::Variant::GpuCollapse),
                launch: pg_advisor::LaunchConfig {
                    teams: 80,
                    threads: 128,
                },
                predicted_ms: 1.25,
            },
            stop: StopReason::Converged,
            generations: 3,
            space: SpaceAccounting {
                variants: 4,
                launch_points: 9,
                candidates: 36,
                evaluated: 20,
                failed: 0,
                pruned: 16,
                race_pruned: 0,
            },
            trajectory: vec![TrajectoryPoint {
                generation: 1,
                evaluations: 20,
                best_ms: 1.25,
                gen_ms: 0.75,
            }],
            wall_ms: 2.5,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: TuneReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!((back.coverage() - 20.0 / 36.0).abs() < 1e-12);
    }
}
