//! # pg-tune
//!
//! Budgeted variant-space search over the ParaGraph engine — the first
//! subsystem where the engine is a *subroutine* rather than the endpoint.
//!
//! `Engine::advise` ranks a fixed candidate list by exhaustively scoring
//! `applicable_variants × launch grid`. That stops scaling the moment the
//! space is densified (Full-scale sweeps already reach tens of thousands of
//! instances), and it answers the wrong question for steering: a developer
//! wants the best `(variant, launch, clause)` configuration, not a total
//! order over everything. `pg-tune` reframes advise as **constrained search
//! over a cost model** (GRAPHOPT's framing): the engine — simulator, GNN or
//! COMPOFF backend alike — prices candidates, and a pluggable
//! [`SearchStrategy`] decides which frontier to price next.
//!
//! ```text
//! TuneRequest ──► SearchSpace (variants × teams-axis × threads-axis)
//!      │                    │ frontiers (grid points)
//!      │                    ▼
//!      │          Evaluator (budget gate + memo + trajectory)
//!      │                    │ one Engine::advise_many per generation
//!      │                    ▼
//!      │          backend predict_batch (simulator | gnn | compoff)
//!      ▼
//! TuneReport ◄── best candidate + trajectory + pruned-space accounting
//! ```
//!
//! Three strategies ship: [`strategy::Exhaustive`] (bit-identical to
//! `Engine::advise`, the golden baseline), [`strategy::Beam`] (width-k with
//! batched frontier evaluation — each generation is one backend
//! `predict_batch`), and [`strategy::Hillclimb`] (seeded neighbourhood
//! descent, deterministic via an explicit `u64` seed). All of them run
//! under a hard [`Budget`] enforced by the [`Evaluator`], never the
//! strategy's own discipline.
//!
//! ```
//! use pg_engine::Engine;
//! use pg_perfsim::Platform;
//! use pg_tune::{TuneEngine, TuneRequest};
//!
//! let engine = Engine::builder().platform(Platform::SummitV100).build();
//! let report = engine.tune(&TuneRequest::catalog("MM/matmul")).unwrap();
//! assert!(report.best.predicted_ms > 0.0);
//! assert!(report.space.evaluated <= report.space.candidates);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod evaluator;
pub mod report;
pub mod space;
pub mod strategy;

pub use error::TuneError;
pub use evaluator::{Evaluation, Evaluator, PointScore};
pub use report::{
    Budget, SpaceAccounting, StopReason, StrategySpec, TrajectoryPoint, TuneReport, TuneRequest,
};
pub use space::{GridPoint, SearchSpace};
pub use strategy::{Beam, Exhaustive, Hillclimb, SearchStrategy};

use pg_engine::{Engine, VariantPrediction};
use std::time::Instant;

/// The tuning facade over [`Engine`]: import this trait and every engine
/// gains `engine.tune(&request)`.
///
/// (An inherent `Engine::tune` would force `pg-engine` to depend on this
/// crate and close a cycle; the extension trait keeps the dependency graph
/// pointing downward, exactly like the backend traits do.)
pub trait TuneEngine {
    /// Run a budgeted search and return the report.
    fn tune(&self, request: &TuneRequest) -> Result<TuneReport, TuneError> {
        self.tune_traced(request).map(|(report, _)| report)
    }

    /// [`TuneEngine::tune`] plus the full evaluation trace (every candidate
    /// the run priced, in evaluation order). The trace is what the
    /// budget-safety test suite audits: the reported best must appear in
    /// it, and its length must respect the budget.
    fn tune_traced(
        &self,
        request: &TuneRequest,
    ) -> Result<(TuneReport, Vec<Evaluation>), TuneError>;
}

impl TuneEngine for Engine {
    fn tune_traced(
        &self,
        request: &TuneRequest,
    ) -> Result<(TuneReport, Vec<Evaluation>), TuneError> {
        let started = Instant::now();
        let space = SearchSpace::build(
            self.platform(),
            &request.kernel,
            request.sizes.clone(),
            &request.budget,
        )?;
        let mut eval = Evaluator::new(self, &space, request.limits);
        let strategy = request.strategy.build();
        let stop = strategy.search(&space, &mut eval)?;
        let best = *eval.best().ok_or(TuneError::NothingEvaluated {
            point_cost: eval.point_cost(),
            max_evaluations: request.limits.max_evaluations,
            max_generations: request.limits.max_generations,
        })?;
        let evaluated = eval.evaluations();
        let report = TuneReport {
            kernel: request.kernel.clone(),
            platform: self.platform(),
            backend: self.backend_name().to_string(),
            strategy: strategy.name().to_string(),
            best: VariantPrediction {
                variant: Some(best.variant),
                launch: best.launch,
                predicted_ms: best.predicted_ms,
            },
            stop,
            generations: eval.generations(),
            space: SpaceAccounting {
                variants: space.variants.len() as u64,
                launch_points: space.launch_points() as u64,
                candidates: space.candidates(),
                evaluated,
                failed: eval.failed(),
                pruned: space
                    .candidates()
                    .saturating_sub(evaluated)
                    .saturating_sub(eval.failed()),
                race_pruned: space.race_pruned,
            },
            trajectory: eval.trajectory().to_vec(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        };
        let trace = eval.trace().to_vec();
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_perfsim::Platform;

    #[test]
    fn tune_reports_the_advise_winner_for_exhaustive_search() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let request = TuneRequest::catalog("MM/matmul").with_strategy(StrategySpec::Exhaustive);
        let report = engine.tune(&request).unwrap();
        let advise = engine
            .advise(&pg_engine::AdviseRequest::catalog("MM/matmul"))
            .unwrap();
        assert_eq!(&report.best, advise.best().unwrap());
        assert_eq!(report.stop, StopReason::SpaceExhausted);
        assert_eq!(report.space.evaluated, report.space.candidates);
        assert_eq!(report.space.pruned, 0);
        assert_eq!(report.backend, "simulator");
        assert_eq!(report.strategy, "exhaustive");
    }

    #[test]
    fn tune_errors_on_unknown_kernels_and_starved_budgets() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        assert!(matches!(
            engine.tune(&TuneRequest::catalog("Nope/none")),
            Err(TuneError::UnknownKernel(_))
        ));
        let starved = TuneRequest::catalog("MM/matmul").with_limits(Budget {
            max_evaluations: 1, // below the 4-variant cost of a single point
            max_generations: 8,
        });
        assert!(matches!(
            engine.tune(&starved),
            Err(TuneError::NothingEvaluated { point_cost: 4, .. })
        ));
    }

    #[test]
    fn generation_starved_budgets_blame_the_right_bound() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let starved = TuneRequest::catalog("MM/matmul").with_limits(Budget {
            max_evaluations: 4096,
            max_generations: 0,
        });
        let error = engine.tune(&starved).unwrap_err();
        assert!(matches!(
            error,
            TuneError::NothingEvaluated {
                max_generations: 0,
                ..
            }
        ));
        let message = error.to_string();
        assert!(message.contains("generation budget"), "{message}");
        assert!(!message.contains("4096 evaluations"), "{message}");
    }

    #[test]
    fn trajectory_is_monotone_and_best_is_traced() {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let request = TuneRequest::catalog("Transpose/transpose")
            .with_strategy(StrategySpec::hillclimb(11))
            .with_limits(Budget::evaluations(64));
        let (report, trace) = engine.tune_traced(&request).unwrap();
        assert!(report
            .trajectory
            .windows(2)
            .all(|w| w[1].best_ms <= w[0].best_ms));
        assert!(trace.iter().any(|e| {
            Some(e.variant) == report.best.variant
                && e.launch == report.best.launch
                && e.predicted_ms == report.best.predicted_ms
        }));
        assert!(report.space.evaluated <= 64);
    }
}
