//! The budgeted evaluator: the one gateway between a search strategy and
//! the engine.
//!
//! Strategies never call the engine directly — they hand frontiers of grid
//! points to [`Evaluator::evaluate`], which:
//!
//! * deduplicates against everything already evaluated (memoized points
//!   never re-spend budget),
//! * truncates the frontier so neither [`Budget`](crate::Budget) bound can
//!   be exceeded,
//! * scores the whole frontier with **one** [`Engine::advise_many`] call
//!   (one coalesced backend `predict_batch` per generation),
//! * records per-candidate evaluations, the best-so-far trajectory, and the
//!   global best under exactly the tie-break `Engine::advise`'s stable sort
//!   uses (predicted time, then variant enumeration order, then launch
//!   enumeration order).
//!
//! That centralisation is what makes the budget-safety properties
//! (`evaluations ≤ max_evaluations`, monotone trajectory, no phantom
//! optimum) hold for *every* strategy, including externally supplied ones.

use crate::error::TuneError;
use crate::report::{Budget, StopReason, TrajectoryPoint};
use crate::space::{GridPoint, SearchSpace};
use pg_advisor::{LaunchConfig, Variant};
use pg_engine::{AdviseRequest, Engine};
use std::collections::HashMap;

/// One scored candidate: a `(variant, launch)` pair and its prediction,
/// plus the enumeration indices that make tie-breaking deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The transformation variant.
    pub variant: Variant,
    /// Position of the variant in [`SearchSpace::variants`].
    pub variant_idx: usize,
    /// The launch configuration.
    pub launch: LaunchConfig,
    /// Flat launch-grid index ([`SearchSpace::flat_index`]).
    pub flat_launch: usize,
    /// Predicted runtime, milliseconds.
    pub predicted_ms: f64,
}

impl Evaluation {
    /// Strict "is a better optimum than" under the advise tie-break:
    /// smaller predicted time wins; ties fall back to variant enumeration
    /// order, then launch enumeration order — exactly what
    /// `Engine::advise`'s stable fastest-first sort yields.
    pub fn beats(&self, other: &Evaluation) -> bool {
        match self.predicted_ms.partial_cmp(&other.predicted_ms) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => (self.variant_idx, self.flat_launch) < (other.variant_idx, other.flat_launch),
        }
    }
}

/// The best candidate at one evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointScore {
    /// The grid point.
    pub point: GridPoint,
    /// Best candidate over all variants at this launch.
    pub best: Evaluation,
}

/// Budget-enforcing, memoizing frontier evaluator over one engine.
pub struct Evaluator<'a> {
    engine: &'a Engine,
    space: &'a SearchSpace,
    budget: Budget,
    scores: HashMap<GridPoint, PointScore>,
    trace: Vec<Evaluation>,
    trajectory: Vec<TrajectoryPoint>,
    best: Option<Evaluation>,
    evaluations: u64,
    failed: u64,
    generations: u64,
    hit_evaluation_limit: bool,
    hit_generation_limit: bool,
}

impl<'a> Evaluator<'a> {
    /// A fresh evaluator over `engine` for `space` under `budget`.
    pub fn new(engine: &'a Engine, space: &'a SearchSpace, budget: Budget) -> Self {
        Self {
            engine,
            space,
            budget,
            scores: HashMap::new(),
            trace: Vec::new(),
            trajectory: Vec::new(),
            best: None,
            evaluations: 0,
            failed: 0,
            generations: 0,
            hit_evaluation_limit: false,
            hit_generation_limit: false,
        }
    }

    /// The space under search.
    pub fn space(&self) -> &SearchSpace {
        self.space
    }

    /// Evaluations one launch point costs: one prediction per applicable
    /// variant (an advise request at a fixed launch ranks them all).
    pub fn point_cost(&self) -> u64 {
        self.space.variants.len() as u64
    }

    /// Successful candidate predictions so far — one per trace entry (the
    /// evaluation budget counts these; see [`Evaluator::failed`] for the
    /// per-candidate failures a partially-failing backend can report).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Candidate predictions the backend failed per-candidate (the engine
    /// keeps the report and records them as failures). They produce no
    /// trace entry and spend no evaluation budget, but their generations
    /// still count, so `max_generations` bounds a failing backend's work.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Frontier batches executed so far.
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Evaluations still affordable.
    pub fn remaining_evaluations(&self) -> u64 {
        self.budget.max_evaluations.saturating_sub(self.evaluations)
    }

    /// Whether at least one more launch point can be evaluated within both
    /// budget bounds.
    pub fn can_evaluate(&self) -> bool {
        self.generations < self.budget.max_generations
            && self.remaining_evaluations() >= self.point_cost()
    }

    /// Whether every launch point of the space has been evaluated.
    pub fn fully_covered(&self) -> bool {
        self.scores.len() == self.space.launch_points()
    }

    /// Whether a point has already been evaluated.
    pub fn is_evaluated(&self, point: GridPoint) -> bool {
        self.scores.contains_key(&point)
    }

    /// The memoized score of a point, if it has been evaluated.
    pub fn score_of(&self, point: GridPoint) -> Option<&PointScore> {
        self.scores.get(&point)
    }

    /// Global best so far (guaranteed to have been evaluated).
    pub fn best(&self) -> Option<&Evaluation> {
        self.best.as_ref()
    }

    /// Best-so-far trajectory, one entry per generation.
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// Every candidate evaluation, in evaluation order.
    pub fn trace(&self) -> &[Evaluation] {
        &self.trace
    }

    /// Which budget bound stopped (or would next stop) the run.
    pub fn limit_reason(&self) -> StopReason {
        if self.hit_evaluation_limit || self.remaining_evaluations() < self.point_cost() {
            StopReason::BudgetExhausted
        } else if self.hit_generation_limit || self.generations >= self.budget.max_generations {
            StopReason::GenerationLimit
        } else {
            StopReason::Converged
        }
    }

    /// The `count` best evaluated points, ranked by their best candidate
    /// under the advise tie-break (deterministic).
    pub fn ranked_points(&self, count: usize) -> Vec<PointScore> {
        let mut ranked: Vec<PointScore> = self.scores.values().copied().collect();
        ranked.sort_by(|a, b| {
            if a.best.beats(&b.best) {
                std::cmp::Ordering::Less
            } else if b.best.beats(&a.best) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        ranked.truncate(count);
        ranked
    }

    /// Evaluate a frontier of grid points: dedup against the memo, truncate
    /// to what the budget affords, and score the remainder with one
    /// `Engine::advise_many` call (one backend `predict_batch`).
    ///
    /// Returns the scores of the **newly evaluated** points, in input
    /// order; already-evaluated points are silently skipped (read them with
    /// [`Evaluator::score_of`]). An empty return with a non-empty fresh
    /// frontier means a budget bound hit — [`Evaluator::limit_reason`]
    /// says which.
    pub fn evaluate(&mut self, points: &[GridPoint]) -> Result<Vec<PointScore>, TuneError> {
        let mut fresh: Vec<GridPoint> = Vec::with_capacity(points.len());
        for &p in points {
            if !self.scores.contains_key(&p) && !fresh.contains(&p) {
                fresh.push(p);
            }
        }
        if fresh.is_empty() {
            return Ok(Vec::new());
        }
        if self.generations >= self.budget.max_generations {
            self.hit_generation_limit = true;
            return Ok(Vec::new());
        }
        let affordable = (self.remaining_evaluations() / self.point_cost().max(1)) as usize;
        if affordable == 0 {
            self.hit_evaluation_limit = true;
            return Ok(Vec::new());
        }
        if fresh.len() > affordable {
            fresh.truncate(affordable);
            self.hit_evaluation_limit = true;
        }

        let gen_started = std::time::Instant::now();
        let requests: Vec<AdviseRequest> = fresh
            .iter()
            .map(|&p| {
                let mut request = AdviseRequest::catalog(self.space.kernel.full_name())
                    .with_launch(self.space.launch(p));
                request.sizes = self.space.sizes.clone();
                request
            })
            .collect();
        let results = self.engine.advise_many(&requests);
        self.generations += 1;

        let mut out = Vec::with_capacity(fresh.len());
        for (&point, result) in fresh.iter().zip(results) {
            let report = result.map_err(TuneError::Engine)?;
            self.evaluations += report.rankings.len() as u64;
            self.failed += report.failures.len() as u64;
            let flat_launch = self.space.flat_index(point);
            let mut point_best: Option<Evaluation> = None;
            for prediction in &report.rankings {
                let variant = prediction
                    .variant
                    .expect("catalogue advise always reports a variant");
                let variant_idx = self
                    .space
                    .variants
                    .iter()
                    .position(|&v| v == variant)
                    .expect("advise enumerates exactly the space's variants");
                let evaluation = Evaluation {
                    variant,
                    variant_idx,
                    launch: prediction.launch,
                    flat_launch,
                    predicted_ms: prediction.predicted_ms,
                };
                if self.best.is_none_or(|best| evaluation.beats(&best)) {
                    self.best = Some(evaluation);
                }
                if point_best.is_none_or(|best| evaluation.beats(&best)) {
                    point_best = Some(evaluation);
                }
                self.trace.push(evaluation);
            }
            // advise_many turns an all-failures request into
            // Err(AllPredictionsFailed) — propagated above — so an Ok
            // report always carries at least one ranking.
            let best = point_best.expect("an Ok advise report carries at least one ranking");
            let score = PointScore { point, best };
            self.scores.insert(point, score);
            out.push(score);
        }
        let best = self
            .best
            .as_ref()
            .expect("a scored generation produces a best");
        let gen_elapsed = gen_started.elapsed();
        pg_obs::obs().record_stage(pg_obs::Stage::TuneGeneration, gen_elapsed);
        self.trajectory.push(TrajectoryPoint {
            generation: self.generations,
            evaluations: self.evaluations,
            best_ms: best.predicted_ms,
            gen_ms: gen_elapsed.as_secs_f64() * 1e3,
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_engine::LaunchBudget;
    use pg_perfsim::Platform;

    fn fixture() -> (Engine, SearchSpace) {
        let engine = Engine::builder().platform(Platform::SummitV100).build();
        let space = SearchSpace::build(
            Platform::SummitV100,
            "MM/matmul",
            None,
            &LaunchBudget::PlatformDefault,
        )
        .unwrap();
        (engine, space)
    }

    #[test]
    fn evaluation_is_memoized_and_budget_counted() {
        let (engine, space) = fixture();
        let mut eval = Evaluator::new(&engine, &space, Budget::default());
        let seeds = space.seed_points();
        let scored = eval.evaluate(&seeds).unwrap();
        assert_eq!(scored.len(), seeds.len());
        assert_eq!(eval.generations(), 1);
        assert_eq!(eval.evaluations(), seeds.len() as u64 * eval.point_cost());
        // Re-submitting the same frontier spends nothing.
        let again = eval.evaluate(&seeds).unwrap();
        assert!(again.is_empty());
        assert_eq!(eval.generations(), 1);
        assert_eq!(eval.evaluations(), seeds.len() as u64 * eval.point_cost());
        assert!(eval.best().is_some());
        assert_eq!(eval.trajectory().len(), 1);
    }

    #[test]
    fn frontiers_are_truncated_to_the_evaluation_budget() {
        let (engine, space) = fixture();
        let budget = Budget {
            // Room for exactly two points (4 variants each).
            max_evaluations: 2 * space.variants.len() as u64 + 1,
            max_generations: 10,
        };
        let mut eval = Evaluator::new(&engine, &space, budget);
        let scored = eval.evaluate(&space.all_points()).unwrap();
        assert_eq!(scored.len(), 2);
        assert!(eval.evaluations() <= budget.max_evaluations);
        assert_eq!(eval.limit_reason(), StopReason::BudgetExhausted);
        // Nothing further is affordable.
        assert!(!eval.can_evaluate());
        assert!(eval.evaluate(&space.all_points()).unwrap().is_empty());
    }

    #[test]
    fn generation_limit_stops_further_batches() {
        let (engine, space) = fixture();
        let budget = Budget {
            max_evaluations: 10_000,
            max_generations: 1,
        };
        let mut eval = Evaluator::new(&engine, &space, budget);
        let first = space.all_points()[0];
        let second = space.all_points()[1];
        assert_eq!(eval.evaluate(&[first]).unwrap().len(), 1);
        assert!(eval.evaluate(&[second]).unwrap().is_empty());
        assert_eq!(eval.limit_reason(), StopReason::GenerationLimit);
    }

    #[test]
    fn best_matches_direct_advise_on_full_coverage() {
        let (engine, space) = fixture();
        let mut eval = Evaluator::new(&engine, &space, Budget::default());
        eval.evaluate(&space.all_points()).unwrap();
        assert!(eval.fully_covered());
        let best = *eval.best().unwrap();
        let direct = engine.advise(&AdviseRequest::catalog("MM/matmul")).unwrap();
        let advise_best = direct.best().unwrap();
        assert_eq!(Some(best.variant), advise_best.variant);
        assert_eq!(best.launch, advise_best.launch);
        assert_eq!(best.predicted_ms, advise_best.predicted_ms);
    }
}
