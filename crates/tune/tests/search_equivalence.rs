//! Golden-search equivalence: the search subsystem must never *silently*
//! disagree with the engine it searches over.
//!
//! * `Exhaustive` and a beam wide enough to cover the grid return the same
//!   best candidate **bit-for-bit** as `Engine::advise`, on every catalogue
//!   kernel × both platform families.
//! * `Hillclimb` with the same seed reproduces its whole evaluation trace
//!   run to run.
//! * `Beam` with the default densified grid reaches the exhaustive optimum
//!   on every catalogue kernel × platform with at most half the exhaustive
//!   evaluation count (the PR's acceptance criterion, also reported by the
//!   `tune_search` bench into `BENCH_tune.json`).

use pg_advisor::ParallelismBudget;
use pg_engine::{AdviseRequest, Engine};
use pg_perfsim::Platform;
use pg_tune::{Budget, StopReason, StrategySpec, TuneEngine, TuneReport, TuneRequest};

/// One GPU and one CPU platform — the two launch-grid shapes (2D and 1D).
const PLATFORMS: [Platform; 2] = [Platform::SummitV100, Platform::SummitPower9];

fn engine(platform: Platform) -> Engine {
    Engine::builder().platform(platform).build()
}

/// The densified launch grid the efficiency criterion is asserted on: the
/// platform's default budget with every axis gap subdivided (what
/// `DatasetScale::Full` does to sweeps). Exhaustive search pays the full
/// grid; beam search must not.
fn dense_budget(platform: Platform) -> ParallelismBudget {
    platform.default_budget().densified(4)
}

#[test]
fn exhaustive_matches_advise_bit_for_bit_on_every_kernel_and_platform() {
    for platform in PLATFORMS {
        let engine = engine(platform);
        for kernel in pg_kernels::all_kernels() {
            let name = kernel.full_name();
            let advise = engine.advise(&AdviseRequest::catalog(&name)).unwrap();
            let advise_best = advise.best().unwrap();
            let report = engine
                .tune(&TuneRequest::catalog(&name).with_strategy(StrategySpec::Exhaustive))
                .unwrap();
            assert_eq!(
                &report.best,
                advise_best,
                "{name} on {}: exhaustive best diverged from advise",
                platform.name()
            );
            assert_eq!(report.stop, StopReason::SpaceExhausted);
            assert_eq!(
                report.space.evaluated as usize,
                advise.candidates(),
                "{name}: exhaustive search must spend exactly the advise sweep"
            );
            assert_eq!(report.space.pruned, 0);
            // One grid-wide generation = one backend batch, like advise.
            assert_eq!(report.generations, 1);
        }
    }
}

#[test]
fn wide_beam_matches_advise_bit_for_bit_on_every_kernel_and_platform() {
    for platform in PLATFORMS {
        let engine = engine(platform);
        for kernel in pg_kernels::all_kernels() {
            let name = kernel.full_name();
            let advise_best = engine
                .advise(&AdviseRequest::catalog(&name))
                .unwrap()
                .best()
                .cloned()
                .unwrap();
            let grid_points = engine
                .tune(&TuneRequest::catalog(&name).with_strategy(StrategySpec::Exhaustive))
                .unwrap()
                .space
                .launch_points;
            // Width >= the whole grid, no staleness stop: the beam
            // degenerates into breadth-first full coverage.
            let report = engine
                .tune(
                    &TuneRequest::catalog(&name).with_strategy(StrategySpec::Beam {
                        width: grid_points,
                        patience: 0,
                    }),
                )
                .unwrap();
            assert_eq!(
                &report.best,
                &advise_best,
                "{name} on {}: wide beam diverged from advise",
                platform.name()
            );
            assert_eq!(report.stop, StopReason::SpaceExhausted);
            assert_eq!(report.space.evaluated, report.space.candidates);
        }
    }
}

#[test]
fn hillclimb_is_run_to_run_deterministic_per_seed() {
    for platform in PLATFORMS {
        let engine = engine(platform);
        for name in ["MM/matmul", "Correlation/correlation", "MV/matvec"] {
            let request = TuneRequest::catalog(name)
                .with_budget(dense_budget(platform))
                .with_strategy(StrategySpec::Hillclimb {
                    seed: 0xfeed,
                    restarts: 2,
                })
                .with_limits(Budget::evaluations(96));
            let (report_a, trace_a) = engine.tune_traced(&request).unwrap();
            let (report_b, trace_b) = engine.tune_traced(&request).unwrap();
            assert_eq!(trace_a, trace_b, "{name}: hillclimb trace must be stable");
            // Wall time differs between runs; everything else must not.
            assert_eq!(report_a.best, report_b.best);
            assert_eq!(report_a.trajectory, report_b.trajectory);
            assert_eq!(report_a.space, report_b.space);
            assert_eq!(report_a.stop, report_b.stop);
        }
    }
}

/// The acceptance criterion: on the densified grid, the default beam finds
/// the exhaustive optimum everywhere for at most half the evaluations.
#[test]
fn beam_reaches_the_exhaustive_optimum_with_at_most_half_the_evaluations() {
    for platform in PLATFORMS {
        let engine = engine(platform);
        for kernel in pg_kernels::all_kernels() {
            let name = kernel.full_name();
            let budget = dense_budget(platform);
            let exhaustive: TuneReport = engine
                .tune(
                    &TuneRequest::catalog(&name)
                        .with_budget(budget.clone())
                        .with_strategy(StrategySpec::Exhaustive),
                )
                .unwrap();
            // The tight beam: greedy expansion of the single best point,
            // stopping after one stale generation. The simulator's
            // landscapes are unimodal along each launch axis (the probe
            // behind this choice: runtimes fall monotonically to the
            // core/occupancy knee, then rise gently with per-thread
            // overhead), which is exactly the regime a narrow beam prunes
            // hardest in.
            let beam: TuneReport = engine
                .tune(
                    &TuneRequest::catalog(&name)
                        .with_budget(budget)
                        .with_strategy(StrategySpec::Beam {
                            width: 1,
                            patience: 1,
                        }),
                )
                .unwrap();
            // "Reaches the optimum" = attains the exhaustively optimal
            // predicted runtime, bit-for-bit. The launch itself may be a
            // different member of a tie plateau (the GPU model saturates),
            // which full-coverage runs — the golden tests above — resolve
            // identically, but a pruned search legitimately may not.
            assert_eq!(
                beam.best.predicted_ms.to_bits(),
                exhaustive.best.predicted_ms.to_bits(),
                "{name} on {}: beam missed the optimum (beam {:?} vs exhaustive {:?})",
                platform.name(),
                beam.best,
                exhaustive.best
            );
            assert!(
                2 * beam.space.evaluated <= exhaustive.space.evaluated,
                "{name} on {}: beam spent {} of {} exhaustive evaluations (> 50%)",
                platform.name(),
                beam.space.evaluated,
                exhaustive.space.evaluated
            );
        }
    }
}
