//! Budget-safety properties over random spaces, budgets and seeds: no
//! strategy — whatever its policy — may overshoot the evaluation or
//! generation budget, worsen its own best-so-far trajectory, or report an
//! optimum it never actually evaluated (a "phantom optimum"). These hold by
//! construction because every strategy evaluates through the shared
//! [`pg_tune::Evaluator`]; this suite is the regression net that keeps that
//! centralisation honest.

use pg_advisor::{ParallelismBudget, Variant};
use pg_engine::Engine;
use pg_perfsim::Platform;
use pg_tune::{Budget, StrategySpec, TuneEngine, TuneError, TuneRequest};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random sorted, deduplicated launch axis of `len` draws.
fn random_axis(rng: &mut StdRng, len: usize, lo: u64, hi: u64) -> Vec<u64> {
    let mut axis: Vec<u64> = (0..len).map(|_| rng.gen_range(lo..=hi)).collect();
    axis.sort_unstable();
    axis.dedup();
    axis
}

/// Random space: a catalogue kernel on one of the two platform families
/// with randomly drawn sweep axes.
fn random_request(
    kernel_idx: usize,
    gpu: bool,
    axis_seed: u64,
    teams_len: usize,
    threads_len: usize,
) -> (Platform, TuneRequest) {
    let kernels = pg_kernels::all_kernels();
    let kernel = &kernels[kernel_idx % kernels.len()];
    let platform = if gpu {
        Platform::SummitV100
    } else {
        Platform::SummitPower9
    };
    let mut rng = StdRng::seed_from_u64(axis_seed);
    let budget = ParallelismBudget {
        cpu_threads: random_axis(&mut rng, threads_len, 1, 48),
        gpu_teams: random_axis(&mut rng, teams_len, 1, 320),
        gpu_threads: random_axis(&mut rng, threads_len, 32, 1024),
    };
    (
        platform,
        TuneRequest::catalog(kernel.full_name()).with_budget(budget),
    )
}

/// Evaluations one launch point costs in this space (one prediction per
/// applicable platform variant).
fn point_cost(request: &TuneRequest, platform: Platform) -> u64 {
    let kernel = pg_kernels::find_kernel(&request.kernel).unwrap();
    Variant::applicable_variants(&kernel)
        .into_iter()
        .filter(|v| v.is_gpu() == platform.is_gpu())
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_strategy_overshoots_its_budget_or_fakes_an_optimum(
        kernel_idx in 0usize..17,
        gpu in 0u8..2,
        axis_seed in 0u64..1_000_000,
        teams_len in 1usize..5,
        threads_len in 1usize..6,
        max_evaluations in 1u64..160,
        max_generations in 1u64..12,
        strategy_pick in 0u8..3,
        seed in 0u64..10_000,
        width in 1u64..6,
        patience in 0u64..3,
        restarts in 0u64..3,
    ) {
        let (platform, request) = random_request(
            kernel_idx, gpu == 1, axis_seed, teams_len, threads_len,
        );
        let strategy = match strategy_pick {
            0 => StrategySpec::Exhaustive,
            1 => StrategySpec::Beam { width, patience },
            _ => StrategySpec::Hillclimb { seed, restarts },
        };
        let request = request
            .with_strategy(strategy)
            .with_limits(Budget { max_evaluations, max_generations });
        let engine = Engine::builder().platform(platform).build();
        let cost = point_cost(&request, platform);

        match engine.tune_traced(&request) {
            Err(TuneError::NothingEvaluated {
                point_cost,
                max_evaluations: reported,
                max_generations: reported_generations,
            }) => {
                // Legal only when the budget cannot afford a single point
                // (the generation draw below is always >= 1, so the
                // evaluation bound is the only possible culprit here).
                prop_assert_eq!(point_cost, cost);
                prop_assert_eq!(reported, max_evaluations);
                prop_assert_eq!(reported_generations, max_generations);
                prop_assert!(max_evaluations < cost,
                    "NothingEvaluated despite budget {} >= point cost {}",
                    max_evaluations, cost);
            }
            Err(error) => prop_assert!(false, "unexpected tune error: {error}"),
            Ok((report, trace)) => {
                // 1. The budget is a hard ceiling.
                prop_assert!(report.space.evaluated <= max_evaluations,
                    "{} evaluations exceed the budget of {}",
                    report.space.evaluated, max_evaluations);
                prop_assert!(report.generations <= max_generations);
                prop_assert_eq!(trace.len() as u64, report.space.evaluated);
                prop_assert_eq!(report.space.failed, 0); // the simulator never fails
                prop_assert_eq!(
                    report.space.evaluated + report.space.failed + report.space.pruned,
                    report.space.candidates
                );

                // 2. The trajectory is monotonically non-worsening and its
                //    accounting matches the report.
                prop_assert!(!report.trajectory.is_empty());
                for window in report.trajectory.windows(2) {
                    prop_assert!(window[1].best_ms <= window[0].best_ms,
                        "trajectory worsened: {} -> {}",
                        window[0].best_ms, window[1].best_ms);
                    prop_assert!(window[1].generation > window[0].generation);
                    prop_assert!(window[1].evaluations >= window[0].evaluations);
                }
                let last = report.trajectory.last().unwrap();
                prop_assert_eq!(last.evaluations, report.space.evaluated);
                prop_assert_eq!(last.best_ms.to_bits(),
                    report.best.predicted_ms.to_bits());

                // 3. No phantom optimum: the reported best appears in the
                //    evaluation trace, bit for bit.
                prop_assert!(trace.iter().any(|e|
                    Some(e.variant) == report.best.variant
                        && e.launch == report.best.launch
                        && e.predicted_ms.to_bits() == report.best.predicted_ms.to_bits()),
                    "best {:?} was never evaluated", report.best);

                // 4. And it really is the minimum of what was evaluated.
                prop_assert!(trace.iter().all(|e|
                    e.predicted_ms >= report.best.predicted_ms),
                    "an evaluated candidate beats the reported best");
            }
        }
    }
}
