//! Static cost analysis of a kernel instance: the bridge between the
//! frontend's work estimate and the execution model.

use pg_advisor::KernelInstance;
use pg_frontend::analysis::{self, ConstEnv, WorkEstimate};
use pg_frontend::{parse, Ast, AstKind, FrontendError};
use serde::{Deserialize, Serialize};

/// Everything the execution model needs to know about one kernel instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Loop-aware dynamic work estimate for one full kernel execution.
    pub work: WorkEstimate,
    /// Iterations of the distributed (parallelised) loop space: the outer
    /// loop's trip count, multiplied by the second loop's trip count when the
    /// directive collapses the nest.
    pub parallel_iterations: f64,
    /// Total loop iterations executed by the kernel.
    pub total_iterations: f64,
    /// Bytes read+written by the kernel (before cache discounts).
    pub bytes_accessed: f64,
    /// Bytes moved host→device before the kernel (only `_mem` variants).
    pub bytes_to_device: f64,
    /// Bytes moved device→host after the kernel (only `_mem` variants).
    pub bytes_from_device: f64,
    /// Arithmetic intensity (flops per byte accessed).
    pub arithmetic_intensity: f64,
    /// Depth of the deepest loop nest.
    pub loop_depth: usize,
}

/// Analyse an instance's source and produce its cost description.
///
/// The problem sizes are already substituted as literals in the instance
/// source, so trip counts are statically computable.
pub fn analyze_instance(instance: &KernelInstance) -> Result<KernelCost, FrontendError> {
    let ast = parse(&instance.source)?;
    Ok(analyze_ast(
        &ast,
        instance.bytes_to_device as f64,
        instance.bytes_from_device as f64,
    ))
}

/// Analyse an already-parsed kernel AST.
pub fn analyze_ast(ast: &Ast, bytes_to_device: f64, bytes_from_device: f64) -> KernelCost {
    let env = ConstEnv::new();
    let work = analysis::estimate_work(ast, ast.root(), &env);

    // The distributed iteration space: trip count of the loop the OpenMP
    // directive is attached to, times the next level when collapsed.
    let parallel_iterations = distributed_iterations(ast, &env);

    // Each load/store touches one 4-byte float (the kernels use float data).
    let bytes_accessed = (work.loads + work.stores) * 4.0;
    let arithmetic_intensity = if bytes_accessed > 0.0 {
        work.flops / bytes_accessed
    } else {
        work.flops.max(1.0)
    };

    KernelCost {
        work,
        parallel_iterations,
        total_iterations: work.iterations,
        bytes_accessed,
        bytes_to_device,
        bytes_from_device,
        arithmetic_intensity,
        loop_depth: work.max_loop_depth,
    }
}

/// Trip count of the parallelised loop space.
fn distributed_iterations(ast: &Ast, env: &ConstEnv) -> f64 {
    // Find the OpenMP directive (if any) and its associated loop.
    let directive = ast
        .preorder()
        .into_iter()
        .find(|&id| ast.kind(id).is_omp_directive());
    let (loop_node, collapse) = match directive {
        Some(d) => {
            let collapse = ast
                .node(d)
                .data
                .omp
                .as_ref()
                .map(|o| o.collapse_depth())
                .unwrap_or(1);
            let associated = ast
                .preorder_from(d)
                .into_iter()
                .find(|&id| ast.kind(id) == AstKind::ForStmt);
            (associated, collapse)
        }
        None => (ast.find_first(AstKind::ForStmt), 1),
    };
    let Some(outer) = loop_node else {
        return 1.0;
    };
    let nest = analysis::loop_nest(ast, outer, env);
    let mut iterations = 1.0;
    for level in nest.iter().take(collapse as usize) {
        let trip = level
            .info
            .as_ref()
            .and_then(|i| i.trip_count)
            .unwrap_or(analysis::DEFAULT_UNKNOWN_TRIP_COUNT);
        iterations *= trip as f64;
    }
    iterations.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_advisor::{instantiate, LaunchConfig, Variant};
    use pg_kernels::find_kernel;
    use std::collections::HashMap;

    fn mm_instance(variant: Variant, n: i64) -> KernelInstance {
        let mm = find_kernel("MM/matmul").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), n);
        instantiate(
            &mm,
            variant,
            &sizes,
            LaunchConfig {
                teams: 80,
                threads: 128,
            },
        )
    }

    #[test]
    fn matmul_cost_is_cubic_in_n() {
        let small = analyze_instance(&mm_instance(Variant::Gpu, 128)).unwrap();
        let large = analyze_instance(&mm_instance(Variant::Gpu, 256)).unwrap();
        let ratio = large.work.flops / small.work.flops;
        assert!(
            (6.0..10.0).contains(&ratio),
            "doubling N must increase flops ~8x, got {ratio}"
        );
        assert_eq!(small.loop_depth, 3);
    }

    #[test]
    fn collapse_multiplies_the_distributed_space() {
        let flat = analyze_instance(&mm_instance(Variant::Gpu, 256)).unwrap();
        let collapsed = analyze_instance(&mm_instance(Variant::GpuCollapse, 256)).unwrap();
        assert_eq!(flat.parallel_iterations, 256.0);
        assert_eq!(collapsed.parallel_iterations, 256.0 * 256.0);
        // Total work is unchanged by collapsing.
        let rel = (flat.work.flops - collapsed.work.flops).abs() / flat.work.flops;
        assert!(rel < 0.05);
    }

    #[test]
    fn mem_variants_carry_transfer_bytes() {
        let gpu = analyze_instance(&mm_instance(Variant::Gpu, 128)).unwrap();
        let mem = analyze_instance(&mm_instance(Variant::GpuMem, 128)).unwrap();
        assert_eq!(gpu.bytes_to_device, 0.0);
        assert_eq!(mem.bytes_to_device, 2.0 * 128.0 * 128.0 * 4.0);
        assert_eq!(mem.bytes_from_device, 128.0 * 128.0 * 4.0);
    }

    #[test]
    fn arithmetic_intensity_distinguishes_kernels() {
        // Matmul has much higher arithmetic intensity than a plain copy.
        let mm = analyze_instance(&mm_instance(Variant::Gpu, 256)).unwrap();
        let copy_kernel = find_kernel("Laplace/copy").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("T".to_string(), 65536i64);
        let copy = instantiate(
            &copy_kernel,
            Variant::Gpu,
            &sizes,
            LaunchConfig {
                teams: 80,
                threads: 128,
            },
        );
        let copy_cost = analyze_instance(&copy).unwrap();
        assert!(mm.arithmetic_intensity > 3.0 * copy_cost.arithmetic_intensity);
    }

    #[test]
    fn serial_source_still_analyzes() {
        let ast =
            parse("void f(float *a) { for (int i = 0; i < 100; i++) { a[i] = 1.0; } }").unwrap();
        let cost = analyze_ast(&ast, 0.0, 0.0);
        assert_eq!(cost.parallel_iterations, 100.0);
        assert!(cost.bytes_accessed > 0.0);
    }

    #[test]
    fn kernel_without_loops_degenerates_gracefully() {
        let ast = parse("void f(float *a) { a[0] = 1.0; }").unwrap();
        let cost = analyze_ast(&ast, 0.0, 0.0);
        assert_eq!(cost.parallel_iterations, 1.0);
        assert_eq!(cost.loop_depth, 0);
    }
}
