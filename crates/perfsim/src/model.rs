//! Roofline-style analytical execution model.
//!
//! Given a [`KernelCost`](crate::cost::KernelCost), a launch configuration and
//! an accelerator specification, the model predicts the kernel's runtime as
//! the maximum of its compute time and its memory time, plus parallel
//! runtime overheads (fork/join or kernel launch) and — for the `_mem`
//! variants — host↔device transfer time. This is the "Runtime Measurement
//! Module" of Figure 3, replaced by a simulator because the Summit and Corona
//! clusters are not available.

use crate::accelerator::{AcceleratorSpec, CpuSpec, GpuSpec, Platform};
use crate::cost::KernelCost;
use pg_advisor::LaunchConfig;
use serde::{Deserialize, Serialize};

/// Breakdown of a simulated runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RuntimeBreakdown {
    /// Time limited by arithmetic throughput (ms).
    pub compute_ms: f64,
    /// Time limited by memory bandwidth (ms).
    pub memory_ms: f64,
    /// Host↔device transfer time (ms).
    pub transfer_ms: f64,
    /// Parallel-runtime overhead: fork/join or kernel launch (ms).
    pub overhead_ms: f64,
    /// Serial remainder not covered by the parallel loop (ms).
    pub serial_ms: f64,
}

impl RuntimeBreakdown {
    /// Total runtime in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.compute_ms.max(self.memory_ms) + self.transfer_ms + self.overhead_ms + self.serial_ms
    }
}

/// Fraction of memory traffic that actually reaches DRAM on a CPU once the
/// working set fits (partially) in cache.
fn cpu_cache_discount(bytes_accessed: f64, cache_mb: f64) -> f64 {
    let cache_bytes = cache_mb * 1024.0 * 1024.0;
    if bytes_accessed <= cache_bytes {
        // Mostly cache-resident: only a small fraction goes to DRAM.
        0.15
    } else {
        // Streaming working sets still benefit from some reuse.
        0.55
    }
}

/// Predict the runtime of a kernel on a CPU socket.
pub fn predict_cpu(cost: &KernelCost, launch: LaunchConfig, spec: &CpuSpec) -> RuntimeBreakdown {
    let threads = launch.threads.max(1) as f64;
    let cores = spec.cores as f64;
    let hw_contexts = cores * spec.smt_threads as f64;

    // Effective parallel speedup: limited by requested threads, available
    // hardware contexts (SMT threads give only a modest boost beyond the
    // physical cores) and the amount of parallel work.
    let physical = threads.min(cores);
    let smt_extra = ((threads.min(hw_contexts) - physical).max(0.0)) * 0.25;
    let speedup = (physical + smt_extra)
        .min(cost.parallel_iterations.max(1.0))
        .max(1.0);

    // Load imbalance: a loop whose iteration count is not a multiple of the
    // thread count leaves some threads idle in the last chunk.
    let chunks = (cost.parallel_iterations / threads).ceil().max(1.0);
    let imbalance = (chunks * threads) / cost.parallel_iterations.max(1.0);
    let effective_speedup = (speedup / imbalance.max(1.0)).max(1.0);

    let compute_s =
        cost.work.flops.max(cost.work.int_ops * 0.5) / (spec.flops_per_core * effective_speedup);

    // Memory bandwidth saturates well before all cores are in use.
    let bw_fraction = 0.35 + 0.65 * (physical / cores).min(1.0);
    let dram_bytes = cost.bytes_accessed * cpu_cache_discount(cost.bytes_accessed, spec.cache_mb);
    let memory_s = dram_bytes / (spec.mem_bandwidth * bw_fraction);

    // Fork/join plus per-thread management overhead.
    let overhead_s = (spec.fork_join_overhead_us + spec.per_thread_overhead_us * threads) * 1e-6;

    // Loop bookkeeping that does not parallelise (compares + increments of
    // the sequential fraction).
    let serial_s = cost.work.compares / (spec.flops_per_core * effective_speedup) * 0.5;

    RuntimeBreakdown {
        compute_ms: compute_s * 1e3,
        memory_ms: memory_s * 1e3,
        transfer_ms: 0.0,
        overhead_ms: overhead_s * 1e3,
        serial_ms: serial_s * 1e3,
    }
}

/// Predict the runtime of a kernel offloaded to a GPU.
pub fn predict_gpu(cost: &KernelCost, launch: LaunchConfig, spec: &GpuSpec) -> RuntimeBreakdown {
    let requested_threads = (launch.teams.max(1) * launch.threads.max(1)) as f64;
    let hw_threads = (spec.sms * spec.max_threads_per_sm) as f64;

    // The kernel can use at most one thread per distributed iteration.
    let usable_threads = requested_threads
        .min(cost.parallel_iterations.max(1.0))
        .min(hw_threads)
        .max(1.0);

    // Throughput utilisation: the GPU needs tens of thousands of threads to
    // reach peak; occupancy is the fraction of hardware contexts filled.
    let occupancy = (usable_threads / hw_threads).min(1.0);
    // Even a single resident thread per SM extracts a base fraction of peak.
    let compute_utilisation = (0.02 + 0.98 * occupancy.powf(0.75)).min(1.0);
    let memory_utilisation = (0.05 + 0.95 * occupancy.powf(0.5)).min(1.0);

    let compute_s =
        cost.work.flops.max(cost.work.int_ops * 0.25) / (spec.peak_flops * compute_utilisation);

    // GPU caches are small relative to the working sets: streaming kernels
    // send most accesses to DRAM, while deep loop nests (matmul-like kernels)
    // get significant reuse out of the L2 and shared memory.
    let reuse_fraction = if cost.loop_depth >= 3 { 0.3 } else { 0.7 };
    let dram_bytes = cost.bytes_accessed * reuse_fraction;
    let memory_s = dram_bytes / (spec.mem_bandwidth * memory_utilisation);

    let overhead_s = spec.launch_latency_us * 1e-6;

    // Host↔device transfers (only non-zero for the `_mem` variants): one
    // latency charge per direction plus bandwidth-limited payload time.
    let mut transfer_s = 0.0;
    if cost.bytes_to_device > 0.0 {
        transfer_s += spec.interconnect_latency_us * 1e-6
            + cost.bytes_to_device / spec.interconnect_bandwidth;
    }
    if cost.bytes_from_device > 0.0 {
        transfer_s += spec.interconnect_latency_us * 1e-6
            + cost.bytes_from_device / spec.interconnect_bandwidth;
    }

    RuntimeBreakdown {
        compute_ms: compute_s * 1e3,
        memory_ms: memory_s * 1e3,
        transfer_ms: transfer_s * 1e3,
        overhead_ms: overhead_s * 1e3,
        serial_ms: 0.0,
    }
}

/// Predict the runtime of a kernel on any platform. CPU variants run on the
/// CPU spec, GPU variants on the GPU spec; mismatched combinations (a CPU
/// variant "measured" on a GPU platform) are rejected by the caller in
/// `pg-dataset`, but if they reach this function the kernel simply runs on
/// the hardware it was asked to run on.
pub fn predict(cost: &KernelCost, launch: LaunchConfig, platform: Platform) -> RuntimeBreakdown {
    match platform.spec() {
        AcceleratorSpec::Cpu(spec) => predict_cpu(cost, launch, &spec),
        AcceleratorSpec::Gpu(spec) => predict_gpu(cost, launch, &spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::analyze_instance;
    use pg_advisor::{instantiate, Variant};
    use pg_kernels::find_kernel;
    use std::collections::HashMap;

    fn mm_cost(variant: Variant, n: i64, launch: LaunchConfig) -> (KernelCost, LaunchConfig) {
        let mm = find_kernel("MM/matmul").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), n);
        let inst = instantiate(&mm, variant, &sizes, launch);
        (analyze_instance(&inst).unwrap(), launch)
    }

    #[test]
    fn more_cpu_threads_reduce_runtime() {
        let launch1 = LaunchConfig {
            teams: 1,
            threads: 1,
        };
        let launch16 = LaunchConfig {
            teams: 1,
            threads: 16,
        };
        let (cost, _) = mm_cost(Variant::Cpu, 512, launch1);
        let spec = match Platform::SummitPower9.spec() {
            AcceleratorSpec::Cpu(c) => c,
            _ => unreachable!(),
        };
        let t1 = predict_cpu(&cost, launch1, &spec).total_ms();
        let t16 = predict_cpu(&cost, launch16, &spec).total_ms();
        assert!(
            t16 < t1 / 4.0,
            "16 threads ({t16} ms) must be much faster than 1 ({t1} ms)"
        );
    }

    #[test]
    fn gpu_beats_cpu_on_large_matmul() {
        let gpu_launch = LaunchConfig {
            teams: 160,
            threads: 256,
        };
        let cpu_launch = LaunchConfig {
            teams: 1,
            threads: 22,
        };
        let (cost_gpu, _) = mm_cost(Variant::GpuCollapse, 1024, gpu_launch);
        let (cost_cpu, _) = mm_cost(Variant::Cpu, 1024, cpu_launch);
        let t_gpu = predict(&cost_gpu, gpu_launch, Platform::SummitV100).total_ms();
        let t_cpu = predict(&cost_cpu, cpu_launch, Platform::SummitPower9).total_ms();
        assert!(
            t_gpu < t_cpu / 3.0,
            "V100 ({t_gpu} ms) must clearly beat POWER9 ({t_cpu} ms) on a 1024^3 matmul"
        );
    }

    #[test]
    fn transfer_overhead_hurts_small_kernels_more() {
        let launch = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        let (small_no_mem, _) = mm_cost(Variant::Gpu, 128, launch);
        let (small_mem, _) = mm_cost(Variant::GpuMem, 128, launch);
        let (large_no_mem, _) = mm_cost(Variant::Gpu, 1024, launch);
        let (large_mem, _) = mm_cost(Variant::GpuMem, 1024, launch);
        let t_small_no = predict(&small_no_mem, launch, Platform::CoronaMi50).total_ms();
        let t_small_mem = predict(&small_mem, launch, Platform::CoronaMi50).total_ms();
        let t_large_no = predict(&large_no_mem, launch, Platform::CoronaMi50).total_ms();
        let t_large_mem = predict(&large_mem, launch, Platform::CoronaMi50).total_ms();
        let small_penalty = t_small_mem / t_small_no;
        let large_penalty = t_large_mem / t_large_no;
        assert!(
            small_penalty > large_penalty,
            "relative transfer penalty must shrink with kernel size"
        );
        assert!(t_small_mem > t_small_no, "transfers must add time");
    }

    #[test]
    fn collapse_helps_when_the_outer_loop_is_small() {
        // Correlation with M=32: only 32 outer iterations — far too few for a
        // GPU — but 32*32=1024 collapsed iterations.
        let corr = find_kernel("Correlation/correlation").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), 4096i64);
        sizes.insert("M".to_string(), 32i64);
        let launch = LaunchConfig {
            teams: 80,
            threads: 128,
        };
        let flat = instantiate(&corr, Variant::Gpu, &sizes, launch);
        let collapsed = instantiate(&corr, Variant::GpuCollapse, &sizes, launch);
        let t_flat = predict(
            &analyze_instance(&flat).unwrap(),
            launch,
            Platform::SummitV100,
        )
        .total_ms();
        let t_collapsed = predict(
            &analyze_instance(&collapsed).unwrap(),
            launch,
            Platform::SummitV100,
        )
        .total_ms();
        assert!(
            t_collapsed < t_flat,
            "collapse ({t_collapsed} ms) must beat the flat variant ({t_flat} ms) for a narrow outer loop"
        );
    }

    #[test]
    fn kernel_launch_latency_floors_gpu_runtimes() {
        // A tiny kernel cannot run faster than the launch latency.
        let pf = find_kernel("ParticleFilter/init_weights").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("P".to_string(), 16384i64);
        let launch = LaunchConfig {
            teams: 40,
            threads: 64,
        };
        let inst = instantiate(&pf, Variant::Gpu, &sizes, launch);
        let t = predict(
            &analyze_instance(&inst).unwrap(),
            launch,
            Platform::SummitV100,
        );
        assert!(
            t.total_ms() >= 0.018,
            "runtime {t:?} must include launch latency"
        );
    }

    #[test]
    fn runtime_grows_with_problem_size_on_every_platform() {
        for platform in Platform::ALL {
            let launch = if platform.is_gpu() {
                LaunchConfig {
                    teams: 80,
                    threads: 128,
                }
            } else {
                LaunchConfig {
                    teams: 1,
                    threads: 16,
                }
            };
            let variant = if platform.is_gpu() {
                Variant::Gpu
            } else {
                Variant::Cpu
            };
            let (small, _) = mm_cost(variant, 128, launch);
            let (large, _) = mm_cost(variant, 768, launch);
            let t_small = predict(&small, launch, platform).total_ms();
            let t_large = predict(&large, launch, platform).total_ms();
            assert!(
                t_large > 2.0 * t_small,
                "{}: runtime must grow with N (got {t_small} -> {t_large})",
                platform.name()
            );
        }
    }

    #[test]
    fn breakdown_total_is_consistent() {
        let b = RuntimeBreakdown {
            compute_ms: 2.0,
            memory_ms: 5.0,
            transfer_ms: 1.0,
            overhead_ms: 0.5,
            serial_ms: 0.25,
        };
        assert!((b.total_ms() - (5.0 + 1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }
}
