//! # pg-perfsim
//!
//! Analytical accelerator performance simulator standing in for the runtime
//! measurement step of the ParaGraph pipeline (Figure 3 of the paper). The
//! paper runs every kernel variant on ORNL Summit (IBM POWER9 + NVIDIA V100)
//! and LLNL Corona (AMD EPYC 7401 + AMD MI50); those machines are not
//! available here, so a roofline-style model predicts each variant's runtime
//! from its static cost analysis, its launch configuration and the platform's
//! hardware parameters, with deterministic measurement noise on top.
//!
//! ```
//! use pg_perfsim::{measure, Platform};
//! use pg_advisor::{instantiate, LaunchConfig, Variant};
//! use pg_kernels::find_kernel;
//!
//! let mm = find_kernel("MM/matmul").unwrap();
//! let inst = instantiate(&mm, Variant::Gpu, &mm.default_sizes(),
//!                        LaunchConfig { teams: 80, threads: 128 });
//! let m = measure(&inst, Platform::SummitV100, &Default::default()).unwrap();
//! assert!(m.runtime_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accelerator;
pub mod cost;
pub mod model;
pub mod noise;

pub use accelerator::{AcceleratorSpec, CpuSpec, GpuSpec, Platform};
pub use cost::{analyze_ast, analyze_instance, KernelCost};
pub use model::{predict, predict_cpu, predict_gpu, RuntimeBreakdown};
pub use noise::NoiseModel;

use pg_advisor::KernelInstance;
use pg_frontend::FrontendError;
use serde::{Deserialize, Serialize};

/// One simulated runtime measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeMeasurement {
    /// Platform the kernel "ran" on.
    pub platform: Platform,
    /// Measured (simulated) wall-clock time in milliseconds, including noise.
    pub runtime_ms: f64,
    /// Noise-free model prediction in milliseconds.
    pub ideal_ms: f64,
    /// Component breakdown of the noise-free prediction.
    pub breakdown: RuntimeBreakdown,
}

/// Simulate running a kernel instance on a platform (the "gettimeofday"
/// measurement of the paper's data-collection step).
pub fn measure(
    instance: &KernelInstance,
    platform: Platform,
    noise: &NoiseModel,
) -> Result<RuntimeMeasurement, FrontendError> {
    let cost = cost::analyze_instance(instance)?;
    let breakdown = model::predict(&cost, instance.launch, platform);
    let ideal_ms = breakdown.total_ms();
    let key = format!("{}@{}", instance.describe(), platform.name());
    let runtime_ms = noise.apply(ideal_ms, &key);
    Ok(RuntimeMeasurement {
        platform,
        runtime_ms,
        ideal_ms,
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_advisor::{instantiate, LaunchConfig, Variant};
    use pg_kernels::find_kernel;

    #[test]
    fn measurement_is_reproducible() {
        let mm = find_kernel("MM/matmul").unwrap();
        let inst = instantiate(
            &mm,
            Variant::GpuMem,
            &mm.default_sizes(),
            LaunchConfig {
                teams: 80,
                threads: 128,
            },
        );
        let noise = NoiseModel::default();
        let a = measure(&inst, Platform::SummitV100, &noise).unwrap();
        let b = measure(&inst, Platform::SummitV100, &noise).unwrap();
        assert_eq!(a, b);
        assert!(a.runtime_ms > 0.0);
        assert!((a.runtime_ms / a.ideal_ms - 1.0).abs() < 0.3);
    }

    #[test]
    fn platforms_differ_in_measured_runtime() {
        let mm = find_kernel("MM/matmul").unwrap();
        let inst = instantiate(
            &mm,
            Variant::Gpu,
            &mm.default_sizes(),
            LaunchConfig {
                teams: 80,
                threads: 128,
            },
        );
        let noise = NoiseModel::disabled();
        let v100 = measure(&inst, Platform::SummitV100, &noise).unwrap();
        let mi50 = measure(&inst, Platform::CoronaMi50, &noise).unwrap();
        assert_ne!(v100.runtime_ms, mi50.runtime_ms);
    }

    #[test]
    fn invalid_source_reports_an_error() {
        let mm = find_kernel("MM/matmul").unwrap();
        let mut inst = instantiate(
            &mm,
            Variant::Cpu,
            &mm.default_sizes(),
            LaunchConfig {
                teams: 1,
                threads: 4,
            },
        );
        inst.source = "this is not C".to_string();
        assert!(measure(&inst, Platform::SummitPower9, &NoiseModel::default()).is_err());
    }
}
