//! Accelerator specifications for the four platforms of the paper's
//! evaluation: Summit's IBM POWER9 CPUs and NVIDIA V100 GPUs, and Corona's
//! AMD EPYC 7401 CPUs and AMD MI50 GPUs.
//!
//! The numbers are public architectural figures (core counts, bandwidths,
//! peak throughput) de-rated to the sustained levels OpenMP codes typically
//! reach; they parameterise the analytical execution model in
//! [`crate::model`]. Absolute runtimes therefore differ from the paper's
//! measurements, but the relative behaviour (CPU vs GPU, transfer overheads,
//! collapse benefits, dispersion per platform) is preserved.

use serde::{Deserialize, Serialize};

/// The four accelerators of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Summit: IBM POWER9, 22 cores per socket (CPU).
    SummitPower9,
    /// Summit: NVIDIA V100 (GPU).
    SummitV100,
    /// Corona: AMD EPYC 7401, 24 cores (CPU).
    CoronaEpyc7401,
    /// Corona: AMD MI50 (GPU).
    CoronaMi50,
}

impl Platform {
    /// All four platforms, in the order used by the paper's tables.
    pub const ALL: [Platform; 4] = [
        Platform::SummitPower9,
        Platform::SummitV100,
        Platform::CoronaEpyc7401,
        Platform::CoronaMi50,
    ];

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Platform::SummitPower9 => "IBM POWER9 (CPU)",
            Platform::SummitV100 => "NVIDIA V100 (GPU)",
            Platform::CoronaEpyc7401 => "AMD EPYC7401 (CPU)",
            Platform::CoronaMi50 => "AMD MI50 (GPU)",
        }
    }

    /// Short filesystem/CLI-safe identifier (`summit-v100`), the inverse of
    /// [`Platform::from_slug`]. Model-bundle artifacts and the serving
    /// tier's `--platform` flag use these instead of the display names,
    /// which contain spaces and parentheses.
    pub fn slug(self) -> &'static str {
        match self {
            Platform::SummitPower9 => "summit-power9",
            Platform::SummitV100 => "summit-v100",
            Platform::CoronaEpyc7401 => "corona-epyc7401",
            Platform::CoronaMi50 => "corona-mi50",
        }
    }

    /// Parse a [`Platform::slug`] back to the platform.
    pub fn from_slug(slug: &str) -> Option<Platform> {
        Platform::ALL.into_iter().find(|p| p.slug() == slug)
    }

    /// Cluster the accelerator belongs to.
    pub fn cluster(self) -> &'static str {
        match self {
            Platform::SummitPower9 | Platform::SummitV100 => "Summit",
            Platform::CoronaEpyc7401 | Platform::CoronaMi50 => "Corona",
        }
    }

    /// True for the two GPUs.
    pub fn is_gpu(self) -> bool {
        matches!(self, Platform::SummitV100 | Platform::CoronaMi50)
    }

    /// The hardware specification of this platform.
    pub fn spec(self) -> AcceleratorSpec {
        match self {
            Platform::SummitPower9 => AcceleratorSpec::Cpu(CpuSpec {
                cores: 22,
                smt_threads: 4,
                flops_per_core: 6.0e9,
                mem_bandwidth: 135.0e9,
                cache_mb: 110.0,
                fork_join_overhead_us: 12.0,
                per_thread_overhead_us: 0.8,
            }),
            Platform::CoronaEpyc7401 => AcceleratorSpec::Cpu(CpuSpec {
                cores: 24,
                smt_threads: 2,
                flops_per_core: 9.0e9,
                mem_bandwidth: 150.0e9,
                cache_mb: 64.0,
                fork_join_overhead_us: 8.0,
                per_thread_overhead_us: 0.5,
            }),
            Platform::SummitV100 => AcceleratorSpec::Gpu(GpuSpec {
                sms: 80,
                max_threads_per_sm: 2048,
                peak_flops: 3.2e12,
                mem_bandwidth: 830.0e9,
                interconnect_bandwidth: 45.0e9, // NVLink2 host link
                interconnect_latency_us: 12.0,
                launch_latency_us: 18.0,
            }),
            Platform::CoronaMi50 => AcceleratorSpec::Gpu(GpuSpec {
                sms: 60,
                max_threads_per_sm: 2560,
                peak_flops: 2.8e12,
                mem_bandwidth: 900.0e9,
                interconnect_bandwidth: 14.0e9, // PCIe gen3 x16
                interconnect_latency_us: 20.0,
                launch_latency_us: 25.0,
            }),
        }
    }

    /// Number of hardware cores (CPUs) or compute units (GPUs).
    pub fn parallel_units(self) -> u64 {
        match self.spec() {
            AcceleratorSpec::Cpu(c) => c.cores,
            AcceleratorSpec::Gpu(g) => g.sms,
        }
    }

    /// The launch-sweep budget this platform's hardware implies: a
    /// teams × threads grid from the SM count for GPUs, a thread sweep from
    /// the core count for CPUs.
    ///
    /// This is the single source of the "platform default" grid: the
    /// engine's `LaunchBudget::PlatformDefault` and the tuner's
    /// `SearchSpace` both resolve through it, which is what keeps an
    /// exhaustive tuning run bit-identical to an advise sweep.
    pub fn default_budget(self) -> pg_advisor::ParallelismBudget {
        let units = self.parallel_units();
        if self.is_gpu() {
            pg_advisor::ParallelismBudget::for_gpu(units)
        } else {
            pg_advisor::ParallelismBudget::for_cpu_cores(units)
        }
    }
}

/// Specification of a CPU socket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical cores.
    pub cores: u64,
    /// Hardware threads per core (SMT).
    pub smt_threads: u64,
    /// Sustained floating-point throughput per core (flop/s).
    pub flops_per_core: f64,
    /// Sustained memory bandwidth of the socket (bytes/s).
    pub mem_bandwidth: f64,
    /// Last-level cache size in MiB (controls the cache-resident discount).
    pub cache_mb: f64,
    /// Cost of an OpenMP fork/join region (microseconds).
    pub fork_join_overhead_us: f64,
    /// Additional per-thread management overhead (microseconds).
    pub per_thread_overhead_us: f64,
}

/// Specification of a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Streaming multiprocessors / compute units.
    pub sms: u64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u64,
    /// Sustained floating-point throughput (flop/s) for offloaded OpenMP.
    pub peak_flops: f64,
    /// Device memory bandwidth (bytes/s).
    pub mem_bandwidth: f64,
    /// Host↔device interconnect bandwidth (bytes/s).
    pub interconnect_bandwidth: f64,
    /// Interconnect latency per transfer (microseconds).
    pub interconnect_latency_us: f64,
    /// Kernel launch latency (microseconds).
    pub launch_latency_us: f64,
}

/// A platform's hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AcceleratorSpec {
    /// A multicore CPU socket.
    Cpu(CpuSpec),
    /// A discrete GPU.
    Gpu(GpuSpec),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_platforms_with_paper_names() {
        assert_eq!(Platform::ALL.len(), 4);
        assert_eq!(Platform::SummitPower9.name(), "IBM POWER9 (CPU)");
        assert_eq!(Platform::SummitV100.name(), "NVIDIA V100 (GPU)");
        assert_eq!(Platform::CoronaEpyc7401.name(), "AMD EPYC7401 (CPU)");
        assert_eq!(Platform::CoronaMi50.name(), "AMD MI50 (GPU)");
    }

    #[test]
    fn cluster_membership() {
        assert_eq!(Platform::SummitPower9.cluster(), "Summit");
        assert_eq!(Platform::SummitV100.cluster(), "Summit");
        assert_eq!(Platform::CoronaEpyc7401.cluster(), "Corona");
        assert_eq!(Platform::CoronaMi50.cluster(), "Corona");
    }

    #[test]
    fn core_counts_match_the_paper() {
        // "IBM POWER9 with 22 cores and AMD EPYC 7401 with 24 cores"
        match Platform::SummitPower9.spec() {
            AcceleratorSpec::Cpu(c) => assert_eq!(c.cores, 22),
            _ => panic!("POWER9 must be a CPU"),
        }
        match Platform::CoronaEpyc7401.spec() {
            AcceleratorSpec::Cpu(c) => assert_eq!(c.cores, 24),
            _ => panic!("EPYC must be a CPU"),
        }
    }

    #[test]
    fn gpus_are_classified_as_gpus() {
        assert!(Platform::SummitV100.is_gpu());
        assert!(Platform::CoronaMi50.is_gpu());
        assert!(!Platform::SummitPower9.is_gpu());
        assert!(!Platform::CoronaEpyc7401.is_gpu());
        assert!(matches!(
            Platform::SummitV100.spec(),
            AcceleratorSpec::Gpu(_)
        ));
    }

    #[test]
    fn gpus_have_far_higher_peak_throughput_than_cpus() {
        let v100 = match Platform::SummitV100.spec() {
            AcceleratorSpec::Gpu(g) => g,
            _ => unreachable!(),
        };
        let p9 = match Platform::SummitPower9.spec() {
            AcceleratorSpec::Cpu(c) => c,
            _ => unreachable!(),
        };
        assert!(v100.peak_flops > 10.0 * p9.flops_per_core * p9.cores as f64);
        assert!(v100.mem_bandwidth > p9.mem_bandwidth);
    }

    #[test]
    fn parallel_units() {
        assert_eq!(Platform::SummitPower9.parallel_units(), 22);
        assert_eq!(Platform::SummitV100.parallel_units(), 80);
        assert_eq!(Platform::CoronaMi50.parallel_units(), 60);
    }
}
