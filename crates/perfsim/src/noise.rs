//! Measurement-noise model.
//!
//! Real runtime measurements on Summit and Corona fluctuate run to run
//! (scheduler jitter, DVFS, network interference). The simulator reproduces
//! this with multiplicative log-normal noise that is *deterministic* for a
//! given `(seed, instance key)` pair so the whole dataset is reproducible.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Multiplicative noise generator.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Standard deviation of the underlying normal distribution of
    /// `ln(multiplier)`. 0 disables noise.
    pub sigma: f64,
    /// Base seed mixed into every per-instance stream.
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            sigma: 0.04,
            seed: 0x5eed_cafe,
        }
    }
}

impl NoiseModel {
    /// A noise-free model (useful in tests).
    pub fn disabled() -> Self {
        Self {
            sigma: 0.0,
            seed: 0,
        }
    }

    /// Derive a deterministic child noise model from this one, labelled by
    /// `label` (e.g. a shard id). Child streams share the parent's `sigma`
    /// but sample from an independent stream, and the same `(parent seed,
    /// label)` pair always derives the same child.
    ///
    /// Note what this is *not* for: dataset measurement noise. Measurement
    /// factors are keyed per instance ([`NoiseModel::factor`] hashes the
    /// global seed with the instance key), so a sharded generation run that
    /// hands every shard worker a copy of the global model produces labels
    /// that are bit-identical to an unsharded sweep no matter how the work
    /// is partitioned — `shard_partitioning_cannot_perturb_labels` below
    /// pins this. Substreams exist for shard-*local* stochastic decisions
    /// (retry jitter, shard-scoped subsampling) that must not consume from,
    /// or perturb, the label stream.
    pub fn substream(&self, label: &str) -> NoiseModel {
        let mut hasher = DefaultHasher::new();
        // Domain-separate derivation from measurement so a substream label
        // can never collide with an instance key.
        0x7061_7261_7368_6472u64.hash(&mut hasher);
        self.seed.hash(&mut hasher);
        label.hash(&mut hasher);
        NoiseModel {
            sigma: self.sigma,
            seed: hasher.finish(),
        }
    }

    /// Sample the multiplicative noise factor for a measurement identified by
    /// `key`. Identical `(seed, key)` pairs always produce the same factor.
    pub fn factor(&self, key: &str) -> f64 {
        if self.sigma <= 0.0 {
            return 1.0;
        }
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        key.hash(&mut hasher);
        let mut rng = StdRng::seed_from_u64(hasher.finish());
        // Box-Muller via rand's normal approximation (avoid extra deps):
        // sum of 12 uniforms minus 6 approximates a standard normal closely
        // enough for measurement jitter.
        let uniform = rand::distributions::Uniform::new(0.0f64, 1.0f64);
        let z: f64 = (0..12).map(|_| uniform.sample(&mut rng)).sum::<f64>() - 6.0;
        (self.sigma * z).exp()
    }

    /// Apply noise to a runtime (milliseconds).
    pub fn apply(&self, runtime_ms: f64, key: &str) -> f64 {
        runtime_ms * self.factor(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_per_key() {
        let noise = NoiseModel::default();
        assert_eq!(
            noise.factor("MM/matmul cpu N=512"),
            noise.factor("MM/matmul cpu N=512")
        );
        assert_ne!(noise.factor("key-a"), noise.factor("key-b"));
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = NoiseModel {
            sigma: 0.05,
            seed: 1,
        };
        let b = NoiseModel {
            sigma: 0.05,
            seed: 2,
        };
        assert_ne!(a.factor("same-key"), b.factor("same-key"));
    }

    #[test]
    fn disabled_noise_is_identity() {
        let noise = NoiseModel::disabled();
        assert_eq!(noise.factor("anything"), 1.0);
        assert_eq!(noise.apply(123.4, "anything"), 123.4);
    }

    #[test]
    fn substreams_are_deterministic_and_independent() {
        let global = NoiseModel {
            sigma: 0.05,
            seed: 42,
        };
        let a = global.substream("shard-0");
        let a2 = global.substream("shard-0");
        let b = global.substream("shard-1");
        assert_eq!(a.seed, a2.seed, "same label must derive the same child");
        assert_ne!(a.seed, b.seed, "labels must separate streams");
        assert_ne!(a.seed, global.seed, "child must not alias the parent");
        assert_eq!(a.sigma, global.sigma);
        // Child streams draw different factors from the parent for the same
        // measurement key.
        assert_ne!(a.factor("k"), global.factor("k"));
    }

    #[test]
    fn shard_partitioning_cannot_perturb_labels() {
        // Simulate two generation strategies over the same instance keys:
        // one pass over everything vs. three "shard workers" each holding a
        // copy of the global model and measuring its own slice in its own
        // order. Labels must be bit-identical.
        let global = NoiseModel {
            sigma: 0.04,
            seed: 7,
        };
        let keys: Vec<String> = (0..30)
            .map(|i| format!("kernel-{}/inst-{i}", i % 5))
            .collect();
        let unsharded: Vec<f64> = keys.iter().map(|k| global.apply(100.0, k)).collect();
        let mut sharded = vec![0.0; keys.len()];
        for shard in 0..3 {
            let worker = global; // each worker gets a copy of the global model
            for (i, key) in keys
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == shard)
                .rev()
            {
                sharded[i] = worker.apply(100.0, key);
            }
        }
        assert_eq!(unsharded, sharded);
    }

    #[test]
    fn noise_magnitude_is_bounded() {
        let noise = NoiseModel {
            sigma: 0.04,
            seed: 99,
        };
        for i in 0..500 {
            let f = noise.factor(&format!("key-{i}"));
            assert!(
                f > 0.75 && f < 1.3,
                "noise factor {f} outside plausible range"
            );
        }
    }

    #[test]
    fn mean_noise_is_close_to_one() {
        let noise = NoiseModel {
            sigma: 0.04,
            seed: 7,
        };
        let mean: f64 = (0..2000)
            .map(|i| noise.factor(&format!("k{i}")))
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean factor {mean}");
    }
}
