//! Leveled structured logging: `key=value` lines, an atomic level filter,
//! and a stderr sink that tests can swap for an in-memory capture buffer.
//!
//! Emission goes through the [`crate::error!`] / [`crate::warn!`] /
//! [`crate::info!`] / [`crate::debug!`] macros, which check the level filter
//! *before* formatting anything — a filtered-out line costs one atomic load.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severities, most severe first. `Off` disables all output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No logging at all.
    Off = 0,
    /// Unrecoverable or dropped-work conditions.
    Error = 1,
    /// Degraded but continuing (shed load, timeouts, retries).
    Warn = 2,
    /// Lifecycle events (startup, shutdown, model loads).
    Info = 3,
    /// Per-request / per-connection detail.
    Debug = 4,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet initialised from `PARAGRAPH_LOG`".
const UNINIT: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn init_level() -> u8 {
    let level = std::env::var("PARAGRAPH_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info) as u8;
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// Whether a line at `level` would be emitted (one atomic load once
/// initialised).
pub fn enabled(level: Level) -> bool {
    let mut current = MAX_LEVEL.load(Ordering::Relaxed);
    if current == UNINIT {
        current = init_level();
    }
    level as u8 <= current && level != Level::Off
}

/// Override the level filter (tests, CLI flags). Takes effect immediately
/// on all threads.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

enum Sink {
    Stderr,
    Capture(Arc<Mutex<String>>),
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::Stderr))
}

/// While held, log lines append to an in-memory buffer instead of stderr;
/// dropping it restores the stderr sink. Tests use this to assert on
/// emitted lines without scraping process output.
pub struct LogCapture {
    buf: Arc<Mutex<String>>,
}

impl LogCapture {
    /// The captured lines so far.
    pub fn contents(&self) -> String {
        self.buf.lock().expect("log capture lock poisoned").clone()
    }
}

impl Drop for LogCapture {
    fn drop(&mut self) {
        *sink().lock().expect("log sink lock poisoned") = Sink::Stderr;
    }
}

/// Swap the sink for a capture buffer (restored when the guard drops).
pub fn capture() -> LogCapture {
    let buf = Arc::new(Mutex::new(String::new()));
    *sink().lock().expect("log sink lock poisoned") = Sink::Capture(Arc::clone(&buf));
    LogCapture { buf }
}

/// Emit one already-filtered line. Called by the logging macros; prefer
/// those over calling this directly.
pub fn emit(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let line = format!("ts={ts_ms} level={} target={target} {args}\n", level.name());
    match &*sink().lock().expect("log sink lock poisoned") {
        Sink::Stderr => eprint!("{line}"),
        Sink::Capture(buf) => buf
            .lock()
            .expect("log capture lock poisoned")
            .push_str(&line),
    }
}

/// Core logging macro: `logline!(Level::Info, "message", key = value, ...)`.
/// The message is rendered quoted (`msg="..."`), each key/value pair as
/// bare `key=value` via `Display`.
#[macro_export]
macro_rules! logline {
    ($lvl:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                module_path!(),
                format_args!(
                    concat!("msg={:?}" $(, " ", stringify!($key), "={}")*),
                    $msg $(, $val)*
                ),
            );
        }
    };
}

/// Log at error level: `pg_obs::error!("message", key = value, ...)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::logline!($crate::log::Level::Error, $($t)*) };
}

/// Log at warn level: `pg_obs::warn!("message", key = value, ...)`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::logline!($crate::log::Level::Warn, $($t)*) };
}

/// Log at info level: `pg_obs::info!("message", key = value, ...)`.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::logline!($crate::log::Level::Info, $($t)*) };
}

/// Log at debug level: `pg_obs::debug!("message", key = value, ...)`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::logline!($crate::log::Level::Debug, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers capture, formatting and filtering together: the
    /// sink and level filter are process-global, so splitting these into
    /// parallel tests would race.
    #[test]
    fn capture_format_and_filtering() {
        let cap = capture();
        set_level(Level::Info);

        crate::info!("model loaded", fingerprint = "abc123", params = 1024);
        crate::debug!("should be filtered", token = 7);
        crate::warn!("queue deep", depth = 9000);

        let text = cap.contents();
        assert!(text.contains("level=info"));
        assert!(text.contains("msg=\"model loaded\" fingerprint=abc123 params=1024"));
        assert!(text.contains("level=warn"));
        assert!(text.contains("depth=9000"));
        assert!(!text.contains("should be filtered"));
        for line in text.lines() {
            assert!(line.starts_with("ts="), "line missing timestamp: {line}");
            assert!(line.contains(" target="), "line missing target: {line}");
        }

        // Off silences everything, including errors.
        set_level(Level::Off);
        crate::error!("dropped");
        assert!(!cap.contents().contains("dropped"));

        set_level(Level::Info);
    }
}
