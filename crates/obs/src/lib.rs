//! # pg-obs
//!
//! Std-only observability core for the ParaGraph stack: end-to-end request
//! tracing, lock-free per-stage latency histograms, and leveled structured
//! logging. No external dependencies beyond the in-repo serde shim, matching
//! the workspace's no-crates.io discipline.
//!
//! Three coordinated pieces:
//!
//! * **Spans + traces** — [`Obs::begin_trace`] mints a request-scoped
//!   [`TraceId`] (at event-loop accept); the [`TraceHandle`] is cloned
//!   through batcher, engine, analyze and backend tiers, each opening
//!   [`Span`]s that nest via [`SpanId`] parents. Commit is tail-sampled:
//!   1-in-N requests are kept, plus *every* request slower than the
//!   configurable threshold. Kept traces land in a bounded ring buffer
//!   ([`TraceRecorder`]) served as JSON span trees by `GET /debug/traces`.
//! * **Histograms** — every finished span also records into a per-[`Stage`]
//!   log-scale histogram ([`StageHistograms`]) of atomic buckets, exported
//!   by `/metrics` as `paragraph_stage_duration_seconds{stage=...}`.
//! * **Logging** — `key=value` structured lines behind an atomic level
//!   filter (see [`log`] and the [`error!`]/[`warn!`]/[`info!`]/[`debug!`]
//!   macros).
//!
//! The disabled path is deliberately cheap: with `PARAGRAPH_OBS=0`,
//! creating a span is one atomic load and no clock read.
//!
//! ## Environment
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `PARAGRAPH_OBS` | `1` | `0`/`false`/`off` disables tracing + histograms |
//! | `PARAGRAPH_OBS_SAMPLE` | `1` | keep 1-in-N traces (N=1 keeps all) |
//! | `PARAGRAPH_OBS_SLOW_MS` | `100` | always keep traces slower than this |
//! | `PARAGRAPH_OBS_TRACES` | `64` | ring-buffer capacity |
//! | `PARAGRAPH_LOG` | `info` | `off`/`error`/`warn`/`info`/`debug` |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod hist;
pub mod log;
pub mod trace;

pub use hist::{
    bucket_bound_seconds, Histogram, HistogramSnapshot, Stage, StageHistograms, BUCKET_COUNT,
    FINITE_BUCKETS,
};
pub use log::{capture, set_level, Level, LogCapture};
pub use trace::{
    FinishedTrace, RawSpan, SpanId, SpanNode, TraceHandle, TraceId, TraceRecorder, TraceTree,
    MAX_SPANS_PER_TRACE,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use trace::TraceShared;

/// Tunable observability settings (see the crate docs for the matching
/// environment variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch for tracing and stage histograms.
    pub enabled: bool,
    /// Keep 1 trace in every `sample_every` (1 keeps all).
    pub sample_every: u64,
    /// Requests slower than this are kept regardless of the sampling draw.
    pub slow_threshold: Duration,
    /// Ring-buffer capacity of the trace recorder.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_every: 1,
            slow_threshold: Duration::from_millis(100),
            trace_capacity: 64,
        }
    }
}

impl ObsConfig {
    /// Read the configuration from `PARAGRAPH_OBS*` environment variables,
    /// falling back to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("PARAGRAPH_OBS") {
            let v = v.trim().to_ascii_lowercase();
            cfg.enabled = !matches!(v.as_str(), "0" | "false" | "off" | "no");
        }
        if let Some(n) = env_u64("PARAGRAPH_OBS_SAMPLE") {
            cfg.sample_every = n.max(1);
        }
        if let Some(ms) = env_u64("PARAGRAPH_OBS_SLOW_MS") {
            cfg.slow_threshold = Duration::from_millis(ms);
        }
        if let Some(k) = env_u64("PARAGRAPH_OBS_TRACES") {
            cfg.trace_capacity = (k as usize).max(1);
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The observability hub: switchboard, stage histograms, and the trace
/// recorder. Production code uses the process-wide instance from [`obs`];
/// tests build private instances with [`Obs::new`] for deterministic
/// sampling behaviour.
#[derive(Debug)]
pub struct Obs {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    slow_us: AtomicU64,
    trace_counter: AtomicU64,
    stages: StageHistograms,
    recorder: TraceRecorder,
}

impl Obs {
    /// Build a hub from a configuration.
    pub fn new(config: ObsConfig) -> Self {
        Self {
            enabled: AtomicBool::new(config.enabled),
            sample_every: AtomicU64::new(config.sample_every.max(1)),
            slow_us: AtomicU64::new(
                config.slow_threshold.as_micros().min(u128::from(u64::MAX)) as u64
            ),
            trace_counter: AtomicU64::new(0),
            stages: StageHistograms::default(),
            recorder: TraceRecorder::new(config.trace_capacity),
        }
    }

    /// Whether tracing + histogram recording are on (one atomic load).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip the master switch at runtime (benches, tests).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Change the 1-in-N sampling rate at runtime.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// Change the slow-request keep threshold at runtime.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.slow_us.store(
            threshold.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Start a request trace. Returns an inactive handle when tracing is
    /// disabled. The sampling draw happens here (so a sampled-out fast
    /// request still collects spans only until commit discards them —
    /// see [`Obs::commit`]); `label` names the request kind in the
    /// recorder output.
    pub fn begin_trace(&self, label: &'static str) -> TraceHandle {
        if !self.enabled() {
            return TraceHandle::disabled();
        }
        let seq = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        let every = self.sample_every.load(Ordering::Relaxed).max(1);
        TraceHandle(Some(Arc::new(TraceShared {
            id: TraceId(splitmix64(seq.wrapping_add(0x9e37_79b9_7f4a_7c15))),
            label,
            start: Instant::now(),
            sampled: seq.is_multiple_of(every),
            spans: Mutex::new(Vec::with_capacity(8)),
        })))
    }

    /// Open a span on `trace` (and in the stage histogram). With an
    /// inactive handle the span still feeds the histogram; with the hub
    /// disabled it is a complete no-op.
    pub fn span<'a>(
        &'a self,
        trace: &TraceHandle,
        stage: Stage,
        parent: Option<SpanId>,
    ) -> Span<'a> {
        if !self.enabled() {
            return Span::noop(stage);
        }
        Span {
            obs: Some(self),
            trace: trace.push_span(stage, parent),
            stage,
            start: Some(Instant::now()),
            hist: true,
        }
    }

    /// Like [`Obs::span`] but recording only into the trace, not the stage
    /// histogram — for wrapper spans whose interval a deeper component
    /// already attributes to the same stage (e.g. the engine's analyze-gate
    /// span around `pg-analyze`'s own instrumented entry point).
    pub fn trace_span<'a>(
        &'a self,
        trace: &TraceHandle,
        stage: Stage,
        parent: Option<SpanId>,
    ) -> Span<'a> {
        let mut span = self.span(trace, stage, parent);
        span.hist = false;
        span
    }

    /// A histogram-only timer for a stage (no trace attachment).
    pub fn timer(&self, stage: Stage) -> Span<'_> {
        self.span(&TraceHandle::disabled(), stage, None)
    }

    /// Record a duration for a stage directly (when the interval was
    /// measured externally, e.g. an enqueue timestamp).
    pub fn record_stage(&self, stage: Stage, duration: Duration) {
        if self.enabled() {
            self.stages.record(stage, duration);
        }
    }

    /// Finish a trace: keep it in the ring buffer if it won the sampling
    /// draw or overran the slow threshold, otherwise drop everything it
    /// collected. Returns whether the trace was kept.
    pub fn commit(&self, trace: TraceHandle) -> bool {
        let Some(shared) = trace.0 else { return false };
        let duration = shared.start.elapsed();
        let duration_us = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        let keep = shared.sampled || duration_us >= self.slow_us.load(Ordering::Relaxed);
        if !keep {
            return false;
        }
        let spans = shared
            .spans
            .lock()
            .expect("trace span lock poisoned")
            .clone();
        self.recorder.push(FinishedTrace {
            id: shared.id,
            label: shared.label,
            duration_us,
            spans,
        });
        true
    }

    /// Snapshot every stage histogram, in [`Stage::ALL`] order.
    pub fn stage_snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        self.stages.snapshot()
    }

    /// The recorded traces, most recent first.
    pub fn traces(&self) -> Vec<FinishedTrace> {
        self.recorder.recent()
    }

    /// The trace ring buffer.
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// Drop all recorded traces (tests).
    pub fn clear_traces(&self) {
        self.recorder.clear();
    }
}

/// The process-wide observability hub, configured from the environment on
/// first use.
pub fn obs() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(|| Obs::new(ObsConfig::from_env()))
}

/// Microseconds since an arbitrary process-wide monotonic epoch (fixed on
/// first call). Lets independent components exchange monotonic timestamps
/// through atomics (e.g. the batcher's oldest-waiter gauge).
pub fn monotonic_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u128::from(u64::MAX)) as u64
}

fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An in-flight stage measurement. Finishing (explicitly or on drop)
/// records the elapsed time into the owning hub's stage histogram and, when
/// attached to an active trace, closes the trace span. Spans are `Send`, so
/// a measurement can start on one thread (enqueue) and finish on another
/// (batch collection).
#[derive(Debug)]
pub struct Span<'a> {
    obs: Option<&'a Obs>,
    trace: Option<(Arc<TraceShared>, u32)>,
    stage: Stage,
    start: Option<Instant>,
    hist: bool,
}

impl<'a> Span<'a> {
    fn noop(stage: Stage) -> Self {
        Span {
            obs: None,
            trace: None,
            stage,
            start: None,
            hist: false,
        }
    }

    /// This span's id within its trace (for parenting children), if it is
    /// attached to an active trace.
    pub fn id(&self) -> Option<SpanId> {
        self.trace.as_ref().map(|(_, idx)| SpanId(*idx))
    }

    /// The stage this span measures.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// End the measurement now instead of at drop.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        let (Some(obs), Some(start)) = (self.obs.take(), self.start.take()) else {
            return;
        };
        if self.hist {
            obs.stages.record(self.stage, start.elapsed());
        }
        if let Some((shared, idx)) = self.trace.take() {
            trace::finish_span(&shared, idx);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_obs(sample_every: u64) -> Obs {
        Obs::new(ObsConfig {
            enabled: true,
            sample_every,
            slow_threshold: Duration::from_secs(3600), // slow-keep impossible
            trace_capacity: 8,
        })
    }

    /// Satellite: span-tree nesting through the real begin/span/commit
    /// path, plus the sampled-out guarantee.
    #[test]
    fn span_tree_nesting_and_sampling() {
        let o = test_obs(2); // keep traces 0, 2, 4, ...; drop 1, 3, ...

        // Trace 0 wins the draw: build request -> {parse, predict -> analyze}.
        let t = o.begin_trace("advise");
        assert!(t.active());
        let root = o.span(&t, Stage::Request, None);
        let root_id = root.id();
        assert_eq!(root_id, Some(SpanId(0)));
        assert_eq!(t.root(), root_id);
        o.span(&t, Stage::Parse, root_id).finish();
        let predict = o.span(&t, Stage::Predict, root_id);
        o.span(&t, Stage::Analyze, predict.id()).finish();
        predict.finish();
        root.finish();
        assert!(o.commit(t));

        let traces = o.traces();
        assert_eq!(traces.len(), 1);
        let tree = traces[0].tree();
        assert_eq!(tree.label, "advise");
        assert_eq!(tree.spans.len(), 1, "single root span");
        let root = &tree.spans[0];
        assert_eq!(root.stage, "request");
        let child_stages: Vec<&str> = root.children.iter().map(|c| c.stage.as_str()).collect();
        assert_eq!(child_stages, ["parse", "predict"]);
        assert_eq!(root.children[1].children[0].stage, "analyze");

        // Trace 1 loses the draw: spans are collected but commit records
        // nothing — the recorder still holds exactly the first trace.
        let t2 = o.begin_trace("advise");
        let r2 = o.span(&t2, Stage::Request, None);
        o.span(&t2, Stage::Parse, r2.id()).finish();
        r2.finish();
        assert!(!o.commit(t2));
        assert_eq!(o.traces().len(), 1);
        assert_eq!(o.traces()[0].tree().trace_id, tree.trace_id);

        // Trace 2 wins again.
        let t3 = o.begin_trace("tune");
        o.span(&t3, Stage::Request, None).finish();
        assert!(o.commit(t3));
        assert_eq!(o.traces().len(), 2);
    }

    #[test]
    fn slow_requests_are_kept_even_when_sampled_out() {
        let o = Obs::new(ObsConfig {
            enabled: true,
            sample_every: u64::MAX,         // only trace 0 wins the draw
            slow_threshold: Duration::ZERO, // ...but everything counts as slow
            trace_capacity: 8,
        });
        let t0 = o.begin_trace("advise");
        assert!(o.commit(t0));
        let t1 = o.begin_trace("advise");
        assert!(o.commit(t1), "slow trace kept despite losing the draw");
        assert_eq!(o.traces().len(), 2);
    }

    #[test]
    fn disabled_hub_collects_nothing() {
        let o = Obs::new(ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        });
        let t = o.begin_trace("advise");
        assert!(!t.active());
        let span = o.span(&t, Stage::Predict, None);
        assert_eq!(span.id(), None);
        span.finish();
        assert!(!o.commit(t));
        assert!(o.traces().is_empty());
        let total: u64 = o.stage_snapshot().iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, 0, "disabled hub must not record histograms");
    }

    #[test]
    fn spans_feed_stage_histograms() {
        let o = test_obs(1);
        o.timer(Stage::GnnForward).finish();
        o.timer(Stage::GnnForward).finish();
        o.record_stage(Stage::BatchWait, Duration::from_micros(250));
        let snap = o.stage_snapshot();
        let get = |stage: Stage| {
            snap.iter()
                .find(|(s, _)| *s == stage)
                .map(|(_, h)| h.count)
                .unwrap()
        };
        assert_eq!(get(Stage::GnnForward), 2);
        assert_eq!(get(Stage::BatchWait), 1);
    }

    #[test]
    fn trace_trees_serialize_to_json() {
        let o = test_obs(1);
        let t = o.begin_trace("advise");
        let root = o.span(&t, Stage::Request, None);
        o.span(&t, Stage::Predict, root.id()).finish();
        root.finish();
        o.commit(t);
        let trees: Vec<TraceTree> = o.traces().iter().map(FinishedTrace::tree).collect();
        let json = serde_json::to_string(&trees).unwrap();
        assert!(json.contains("\"stage\":\"request\""));
        assert!(json.contains("\"stage\":\"predict\""));
        assert!(json.contains("\"trace_id\""));
    }

    #[test]
    fn config_from_env_defaults() {
        // Only assert the defaults (env mutation would race other tests).
        let cfg = ObsConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.sample_every, 1);
        assert_eq!(cfg.slow_threshold, Duration::from_millis(100));
        assert_eq!(cfg.trace_capacity, 64);
    }

    #[test]
    fn monotonic_us_is_monotonic() {
        let a = monotonic_us();
        let b = monotonic_us();
        assert!(b >= a);
    }
}
