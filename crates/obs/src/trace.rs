//! Request-scoped traces: span collection, ring-buffer recording, and
//! JSON span trees.
//!
//! A [`TraceHandle`] is created once per request (at event-loop accept) and
//! cloned through every tier that works on the request. Spans append into a
//! small mutex-guarded vector on the handle; the sampling decision is
//! *tail-based* — every active trace collects spans, and at commit time the
//! trace is kept if it was head-sampled (1-in-N) **or** if its total
//! duration crossed the slow-request threshold. A handle that is not active
//! (tracing disabled, or the request lost the sampling draw with slow-keep
//! impossible) collects nothing at all.

use crate::hist::Stage;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on spans collected per trace; excess spans are dropped.
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// A request-scoped trace identifier (rendered as 16 hex digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Index of a span within its trace, used to parent child spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

/// One recorded span: stage, parent link, and start/end offsets from the
/// trace origin (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawSpan {
    /// Which pipeline stage this span timed.
    pub stage: Stage,
    /// Parent span index within the trace (`None` for root-level spans).
    pub parent: Option<u32>,
    /// Start offset from the trace origin, microseconds.
    pub start_us: u64,
    /// End offset from the trace origin; `None` if never finished.
    pub end_us: Option<u64>,
}

#[derive(Debug)]
pub(crate) struct TraceShared {
    pub(crate) id: TraceId,
    pub(crate) label: &'static str,
    pub(crate) start: Instant,
    pub(crate) sampled: bool,
    pub(crate) spans: Mutex<Vec<RawSpan>>,
}

impl TraceShared {
    fn offset_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

/// A cheap, cloneable reference to an in-flight trace. An inactive handle
/// (from [`TraceHandle::disabled`], or when tracing is off) is a no-op
/// everywhere it is passed.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(pub(crate) Option<Arc<TraceShared>>);

impl TraceHandle {
    /// A handle that collects nothing; safe to pass anywhere.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether this handle is collecting spans.
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// The trace id, if active.
    pub fn id(&self) -> Option<TraceId> {
        self.0.as_ref().map(|s| s.id)
    }

    /// The root span's id (by convention the first span pushed), for
    /// parenting spans created in other tiers.
    pub fn root(&self) -> Option<SpanId> {
        self.0.as_ref().map(|_| SpanId(0))
    }

    /// Append an open span; returns its backing storage, or `None` if the
    /// handle is inactive or the trace hit [`MAX_SPANS_PER_TRACE`].
    pub(crate) fn push_span(
        &self,
        stage: Stage,
        parent: Option<SpanId>,
    ) -> Option<(Arc<TraceShared>, u32)> {
        let shared = self.0.as_ref()?;
        let start_us = shared.offset_us();
        let mut spans = shared.spans.lock().expect("trace span lock poisoned");
        if spans.len() >= MAX_SPANS_PER_TRACE {
            return None;
        }
        let idx = spans.len() as u32;
        spans.push(RawSpan {
            stage,
            parent: parent.map(|p| p.0),
            start_us,
            end_us: None,
        });
        Some((Arc::clone(shared), idx))
    }
}

pub(crate) fn finish_span(shared: &TraceShared, idx: u32) {
    let end_us = shared.offset_us();
    let mut spans = shared.spans.lock().expect("trace span lock poisoned");
    if let Some(span) = spans.get_mut(idx as usize) {
        span.end_us = Some(end_us);
    }
}

/// A committed trace held by the ring-buffer recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// The request's trace id.
    pub id: TraceId,
    /// What kind of request this was (e.g. `"advise"`, `"tune"`).
    pub label: &'static str,
    /// Total wall time from trace begin to commit, microseconds.
    pub duration_us: u64,
    /// All collected spans, in creation order (root first).
    pub spans: Vec<RawSpan>,
}

/// One node of a JSON span tree (`GET /debug/traces`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanNode {
    /// Stage label of this span.
    pub stage: String,
    /// Start offset from the trace origin, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds (0 if the span never finished).
    pub duration_us: u64,
    /// Child spans, in creation order.
    pub children: Vec<SpanNode>,
}

/// A whole trace rendered as a span tree, ready for JSON serialization.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceTree {
    /// Trace id as 16 hex digits.
    pub trace_id: String,
    /// Request kind label.
    pub label: String,
    /// Total traced duration, microseconds.
    pub duration_us: u64,
    /// Root-level spans.
    pub spans: Vec<SpanNode>,
}

impl FinishedTrace {
    /// Build the nested span tree from the flat parent-indexed span list.
    /// Spans with a missing or out-of-range parent surface at the root.
    pub fn tree(&self) -> TraceTree {
        let n = self.spans.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            match span.parent {
                // A span can only parent spans created after it.
                Some(p) if (p as usize) < i => children[p as usize].push(i),
                _ => roots.push(i),
            }
        }
        fn build(idx: usize, spans: &[RawSpan], children: &[Vec<usize>]) -> SpanNode {
            let span = &spans[idx];
            SpanNode {
                stage: span.stage.name().to_string(),
                start_us: span.start_us,
                duration_us: span.end_us.map_or(0, |e| e.saturating_sub(span.start_us)),
                children: children[idx]
                    .iter()
                    .map(|&c| build(c, spans, children))
                    .collect(),
            }
        }
        TraceTree {
            trace_id: self.id.to_string(),
            label: self.label.to_string(),
            duration_us: self.duration_us,
            spans: roots
                .iter()
                .map(|&r| build(r, &self.spans, &children))
                .collect(),
        }
    }
}

/// Bounded ring buffer of the most recent committed traces.
#[derive(Debug)]
pub struct TraceRecorder {
    ring: Mutex<VecDeque<FinishedTrace>>,
    capacity: usize,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn push(&self, trace: FinishedTrace) {
        let mut ring = self.ring.lock().expect("trace ring lock poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The recorded traces, most recent first.
    pub fn recent(&self) -> Vec<FinishedTrace> {
        let ring = self.ring.lock().expect("trace ring lock poisoned");
        ring.iter().rev().cloned().collect()
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring lock poisoned").len()
    }

    /// Whether the recorder holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every recorded trace (tests).
    pub fn clear(&self) {
        self.ring.lock().expect("trace ring lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(stage: Stage, parent: Option<u32>, start_us: u64, end_us: u64) -> RawSpan {
        RawSpan {
            stage,
            parent,
            start_us,
            end_us: Some(end_us),
        }
    }

    #[test]
    fn tree_nests_children_under_parents() {
        let trace = FinishedTrace {
            id: TraceId(0xabcd),
            label: "advise",
            duration_us: 120,
            spans: vec![
                raw(Stage::Request, None, 0, 120),
                raw(Stage::Parse, Some(0), 5, 20),
                raw(Stage::Predict, Some(0), 30, 110),
                raw(Stage::Analyze, Some(2), 31, 40),
            ],
        };
        let tree = trace.tree();
        assert_eq!(tree.trace_id, "000000000000abcd");
        assert_eq!(tree.spans.len(), 1);
        let root = &tree.spans[0];
        assert_eq!(root.stage, "request");
        assert_eq!(root.duration_us, 120);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].stage, "parse");
        assert_eq!(root.children[1].stage, "predict");
        assert_eq!(root.children[1].children[0].stage, "analyze");
    }

    #[test]
    fn forward_or_dangling_parents_fall_back_to_root() {
        let trace = FinishedTrace {
            id: TraceId(1),
            label: "advise",
            duration_us: 10,
            spans: vec![
                raw(Stage::Parse, Some(7), 0, 1),   // out of range
                raw(Stage::Predict, Some(1), 2, 3), // self/forward reference
            ],
        };
        assert_eq!(trace.tree().spans.len(), 2);
    }

    #[test]
    fn recorder_evicts_oldest_beyond_capacity() {
        let rec = TraceRecorder::new(2);
        for i in 0..3u64 {
            rec.push(FinishedTrace {
                id: TraceId(i),
                label: "t",
                duration_us: i,
                spans: Vec::new(),
            });
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, TraceId(2)); // newest first
        assert_eq!(recent[1].id, TraceId(1));
    }
}
