//! Lock-free per-stage latency histograms.
//!
//! Every pipeline stage records durations into a fixed array of atomic
//! buckets with power-of-two microsecond bounds: bucket `i` counts durations
//! in `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs sub-microsecond
//! samples), and one final overflow bucket absorbs everything at or above
//! `2^FINITE_BUCKETS` microseconds (~134 s). Recording is a handful of
//! relaxed `fetch_add`s — no locks, no allocation — so it is safe on the
//! serving hot path, and snapshots are mergeable plain data.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite power-of-two buckets (1 µs .. 2^27 µs ≈ 134 s).
pub const FINITE_BUCKETS: usize = 27;

/// Total buckets including the overflow bucket.
pub const BUCKET_COUNT: usize = FINITE_BUCKETS + 1;

/// The instrumented pipeline stages, end to end: socket accept through
/// response write, plus the engine/GNN/tune interior stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Whole-request root span (accept to last response byte flushed).
    Request,
    /// Socket accept and connection setup on the event thread.
    Accept,
    /// Incremental HTTP read + parse, first byte to complete request.
    Parse,
    /// Time a job spends queued in the micro-batcher before its batch forms.
    BatchWait,
    /// Candidate variant enumeration inside the engine.
    Enumerate,
    /// Static legality analysis (the pg-analyze gate).
    Analyze,
    /// Frontend cache probes (source intern / AST / relational graph).
    CacheLookup,
    /// ParaGraph graph construction from an AST.
    GraphBuild,
    /// Backend `predict_batch` over the collected candidates.
    Predict,
    /// One RGAT layer forward pass.
    GnnForward,
    /// Reverse-mode sweep over the tape.
    GnnBackward,
    /// One search generation inside `pg-tune` (a batched evaluation).
    TuneGeneration,
    /// Response serialization to JSON.
    Serialize,
    /// Response write, enqueue to last byte flushed.
    Write,
}

impl Stage {
    /// Every stage, in export order.
    pub const ALL: [Stage; 14] = [
        Stage::Request,
        Stage::Accept,
        Stage::Parse,
        Stage::BatchWait,
        Stage::Enumerate,
        Stage::Analyze,
        Stage::CacheLookup,
        Stage::GraphBuild,
        Stage::Predict,
        Stage::GnnForward,
        Stage::GnnBackward,
        Stage::TuneGeneration,
        Stage::Serialize,
        Stage::Write,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable label used in metrics and trace output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::BatchWait => "batch_wait",
            Stage::Enumerate => "enumerate",
            Stage::Analyze => "analyze",
            Stage::CacheLookup => "cache_lookup",
            Stage::GraphBuild => "graph_build",
            Stage::Predict => "predict",
            Stage::GnnForward => "gnn_forward",
            Stage::GnnBackward => "gnn_backward",
            Stage::TuneGeneration => "tune_generation",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }
}

/// The upper bound of bucket `i`, in seconds (`+Inf` for the overflow
/// bucket). Bucket `i` counts durations strictly below this bound.
pub fn bucket_bound_seconds(i: usize) -> f64 {
    if i >= FINITE_BUCKETS {
        f64::INFINITY
    } else {
        (1u64 << (i + 1)) as f64 / 1e6
    }
}

fn bucket_index(us: u64) -> usize {
    if us < 2 {
        0
    } else {
        // floor(log2(us)), capped into the overflow bucket.
        let idx = 63 - us.leading_zeros() as usize;
        idx.min(FINITE_BUCKETS)
    }
}

/// One stage's histogram: atomic buckets plus running sum and count.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one duration (lock-free; three atomic adds).
    ///
    /// The count is published *last* with `Release` so a snapshot that
    /// `Acquire`-reads the count observes at least that many bucket
    /// increments: snapshots can lag but never tear below the count.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Record one duration given as a [`std::time::Duration`].
    pub fn record(&self, duration: std::time::Duration) {
        self.record_us(duration.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// A consistent-enough copy: `count <= sum(buckets)` always holds (see
    /// [`Histogram::record_us`]); after recording quiesces the two agree.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Acquire);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let mut buckets = [0u64; BUCKET_COUNT];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_us,
            count,
        }
    }
}

/// Plain-data copy of a [`Histogram`], mergeable across sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts.
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all recorded durations, microseconds.
    pub sum_us: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
            sum_us: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (e.g. merging per-shard
    /// histograms before export).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.sum_us += other.sum_us;
        self.count += other.count;
    }

    /// Sum over the per-bucket counts (equals `count` once quiescent).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Cumulative Prometheus-style buckets: `(le_seconds, count <= le)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                (bucket_bound_seconds(i), acc)
            })
            .collect()
    }
}

/// One [`Histogram`] per [`Stage`].
#[derive(Debug, Default)]
pub struct StageHistograms {
    stages: [Histogram; Stage::COUNT],
}

impl StageHistograms {
    /// Record one duration against a stage.
    pub fn record(&self, stage: Stage, duration: std::time::Duration) {
        self.stages[stage as usize].record(duration);
    }

    /// Record one duration in microseconds against a stage.
    pub fn record_us(&self, stage: Stage, us: u64) {
        self.stages[stage as usize].record_us(us);
    }

    /// Borrow one stage's histogram.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Snapshot every stage, in [`Stage::ALL`] order.
    pub fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.stages[s as usize].snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bucket_index_is_log2_with_overflow() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1_000_000), 19); // 1 s in [2^19, 2^20) µs
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn bounds_are_monotonic_and_end_in_infinity() {
        let bounds: Vec<f64> = (0..BUCKET_COUNT).map(bucket_bound_seconds).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds[0], 2e-6);
        assert!(bounds[BUCKET_COUNT - 1].is_infinite());
    }

    #[test]
    fn record_and_snapshot_agree() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(5));
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_us, 3 + 3 + 5000);
        assert_eq!(snap.bucket_total(), 3);
        assert_eq!(snap.buckets[1], 2); // 3 µs twice
        let cumulative = snap.cumulative();
        assert_eq!(cumulative.last().unwrap().1, 3);
    }

    #[test]
    fn snapshots_merge_by_addition() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record_us(1);
        b.record_us(1);
        b.record_us(1 << 20);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.bucket_total(), 3);
        assert_eq!(merged.sum_us, 2 + (1 << 20));
    }

    /// Satellite: hammer one histogram from 8 threads while a snapshotter
    /// spins. Every mid-flight snapshot must satisfy the publication
    /// invariant (`count <= sum(buckets)` — no torn buckets below the
    /// published count), and the final snapshot must conserve totals.
    #[test]
    fn concurrent_recording_conserves_totals() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let hist = Arc::new(Histogram::default());

        let recorders: Vec<_> = (0..THREADS)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread samples across many buckets.
                        hist.record_us((i % 24) * (t as u64 + 1) * 7 + 1);
                    }
                })
            })
            .collect();

        let snapshotter = {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while seen < THREADS as u64 * PER_THREAD {
                    let snap = hist.snapshot();
                    assert!(
                        snap.count <= snap.bucket_total(),
                        "torn snapshot: count {} exceeds bucket total {}",
                        snap.count,
                        snap.bucket_total()
                    );
                    assert!(snap.count >= seen, "count went backwards");
                    seen = snap.count;
                }
            })
        };

        for r in recorders {
            r.join().unwrap();
        }
        snapshotter.join().unwrap();

        let end = hist.snapshot();
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(end.count, expected);
        assert_eq!(end.bucket_total(), expected);
        let expected_sum: u64 = (0..THREADS as u64)
            .map(|t| {
                (0..PER_THREAD)
                    .map(|i| (i % 24) * (t + 1) * 7 + 1)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(end.sum_us, expected_sum);
    }
}
