//! Adam optimiser (Kingma & Ba, 2014), the optimiser used by the paper.
//!
//! The optimiser keeps first/second-moment state per *parameter key*. Models
//! register each trainable matrix under a stable key (its index in the model's
//! parameter list) and call [`Adam::step`] once per parameter per update.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hyper-parameters for the Adam optimiser.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct AdamConfig {
    /// Learning rate (`alpha`).
    pub learning_rate: f32,
    /// Exponential decay rate for the first moment estimate.
    pub beta1: f32,
    /// Exponential decay rate for the second moment estimate.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
    /// L2 weight decay applied to the gradient (0 disables it).
    pub weight_decay: f32,
    /// Gradient clipping threshold on the global L2 norm (0 disables it).
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            grad_clip: 5.0,
        }
    }
}

/// Adam optimiser with per-key moment state.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    /// Global step counter, shared by all parameters.
    t: u64,
    /// First (m) and second (v) moment estimates keyed by parameter id.
    moments: HashMap<usize, (Matrix, Matrix)>,
}

impl Adam {
    /// Create an optimiser with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Override the learning rate (e.g. for simple schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
    }

    /// Number of optimisation steps performed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Begin a new optimisation step. Must be called once before the
    /// per-parameter [`Adam::step`] calls of one update.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to `param` given its gradient.
    ///
    /// # Panics
    /// Panics if `param` and `grad` shapes differ, or if `begin_step` has not
    /// been called yet.
    pub fn step(&mut self, key: usize, param: &mut Matrix, grad: &Matrix) {
        assert!(
            self.t > 0,
            "Adam::begin_step must be called before Adam::step"
        );
        assert_eq!(
            param.shape(),
            grad.shape(),
            "parameter/gradient shape mismatch"
        );
        let cfg = self.config;

        let (m, v) = self.moments.entry(key).or_insert_with(|| {
            (
                Matrix::zeros(param.rows(), param.cols()),
                Matrix::zeros(param.rows(), param.cols()),
            )
        });
        assert_eq!(
            m.shape(),
            param.shape(),
            "parameter {key} changed shape between steps"
        );

        // Optional gradient clipping by global norm of this parameter.
        let mut grad_scale = 1.0_f32;
        if cfg.grad_clip > 0.0 {
            let norm = grad.frobenius_norm();
            if norm > cfg.grad_clip {
                grad_scale = cfg.grad_clip / norm;
            }
        }

        let bias1 = 1.0 - cfg.beta1.powi(self.t as i32);
        let bias2 = 1.0 - cfg.beta2.powi(self.t as i32);

        let pm = param.as_mut_slice();
        let gm = grad.as_slice();
        let ms = m.as_mut_slice();
        let vs = v.as_mut_slice();
        for i in 0..pm.len() {
            let mut g = gm[i] * grad_scale;
            if cfg.weight_decay > 0.0 {
                g += cfg.weight_decay * pm[i];
            }
            ms[i] = cfg.beta1 * ms[i] + (1.0 - cfg.beta1) * g;
            vs[i] = cfg.beta2 * vs[i] + (1.0 - cfg.beta2) * g * g;
            let m_hat = ms[i] / bias1;
            let v_hat = vs[i] / bias2;
            pm[i] -= cfg.learning_rate * m_hat / (v_hat.sqrt() + cfg.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(x) = (x - 3)^2 should converge to 3.
    #[test]
    fn adam_minimises_quadratic() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.1,
            ..AdamConfig::default()
        });
        let mut x = Matrix::from_vec(1, 1, vec![-4.0]);
        for _ in 0..500 {
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (x.get(0, 0) - 3.0)]);
            adam.begin_step();
            adam.step(0, &mut x, &grad);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-2, "x = {}", x.get(0, 0));
    }

    #[test]
    fn adam_minimises_multivariate_quadratic() {
        // f(w) = ||w - target||^2 over a 4x3 matrix.
        let target = Matrix::from_fn(4, 3, |r, c| (r as f32) - (c as f32) * 0.5);
        let mut w = Matrix::zeros(4, 3);
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.05,
            ..AdamConfig::default()
        });
        for _ in 0..800 {
            let grad = w.sub(&target).scale(2.0);
            adam.begin_step();
            adam.step(0, &mut w, &grad);
        }
        assert!(w.approx_eq(&target, 5e-2));
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn step_without_begin_panics() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut p = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        adam.step(0, &mut p, &g);
    }

    #[test]
    fn gradient_clipping_limits_update_magnitude() {
        let cfg = AdamConfig {
            learning_rate: 0.1,
            grad_clip: 1.0,
            ..AdamConfig::default()
        };
        let mut adam = Adam::new(cfg);
        let mut p = Matrix::zeros(1, 2);
        let huge_grad = Matrix::from_vec(1, 2, vec![1e6, -1e6]);
        adam.begin_step();
        adam.step(0, &mut p, &huge_grad);
        // With clipping the first Adam step magnitude is bounded by the
        // learning rate (|m_hat/sqrt(v_hat)| <= 1 elementwise).
        assert!(p.as_slice().iter().all(|v| v.abs() <= 0.11));
    }

    #[test]
    fn independent_keys_keep_independent_state() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.1,
            ..AdamConfig::default()
        });
        let mut a = Matrix::from_vec(1, 1, vec![0.0]);
        let mut b = Matrix::from_vec(1, 1, vec![0.0]);
        for _ in 0..50 {
            adam.begin_step();
            adam.step(0, &mut a, &Matrix::from_vec(1, 1, vec![1.0]));
            adam.step(1, &mut b, &Matrix::from_vec(1, 1, vec![-1.0]));
        }
        assert!(a.get(0, 0) < 0.0);
        assert!(b.get(0, 0) > 0.0);
        assert!(
            (a.get(0, 0) + b.get(0, 0)).abs() < 1e-5,
            "symmetric problems should move symmetrically"
        );
    }
}
