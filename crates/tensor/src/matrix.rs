//! Dense row-major `f32` matrix used throughout the ParaGraph models.
//!
//! The matrix type is deliberately small and predictable: a shape plus a flat
//! `Vec<f32>`. All hot operations (matrix multiplication in particular) are
//! written so that the inner loops are over contiguous slices, and the larger
//! products are parallelised over output rows with rayon.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major dense matrix of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Minimum number of multiply-accumulate operations before `matmul`
/// parallelises over output rows. Below this threshold the rayon dispatch
/// overhead dominates.
const PAR_MATMUL_THRESHOLD: usize = 64 * 64 * 64;

/// Below this many multiply-accumulates the simple accumulating `ikj` kernel
/// wins: packing `B` transposed costs `k * n` extra reads/writes that tiny
/// products never amortise.
const PACK_MATMUL_THRESHOLD: usize = 24 * 24 * 24;

/// Narrow-output cutoff: products with fewer than this many output columns
/// (the attention-score `* x 1` products, notably) use the packed
/// transposed-`B` dot kernel, everything wider uses the register-tiled `ikj`
/// kernel.
const MATMUL_NARROW_N: usize = 8;

/// One register tile of the blocked `ikj` kernel: accumulate `T` output
/// columns of one row entirely in a fixed-size array (which LLVM keeps in
/// SIMD registers), sweeping `A`'s row once. Zero entries of `A` skip their
/// whole `B` row — layer-one GNN inputs are mostly one-hot, so this skip is
/// worth more than any amount of SIMD.
#[inline]
fn matmul_row_tile<const T: usize>(row_a: &[f32], b: &[f32], n: usize, j0: usize, out: &mut [f32]) {
    let mut acc = [0.0f32; T];
    for (kk, &a) in row_a.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = &b[kk * n + j0..kk * n + j0 + T];
        for l in 0..T {
            acc[l] += a * b_row[l];
        }
    }
    out[j0..j0 + T].copy_from_slice(&acc);
}

/// [`matmul_row_tile`] that accumulates on top of the existing output tile
/// (`out += A * B` row kernels).
#[inline]
fn matmul_row_tile_acc<const T: usize>(
    row_a: &[f32],
    b: &[f32],
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    let mut acc = [0.0f32; T];
    acc.copy_from_slice(&out[j0..j0 + T]);
    for (kk, &a) in row_a.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = &b[kk * n + j0..kk * n + j0 + T];
        for l in 0..T {
            acc[l] += a * b_row[l];
        }
    }
    out[j0..j0 + T].copy_from_slice(&acc);
}

/// Accumulating variant of [`matmul_row_tiled`]: `row_out += row_a * B`.
#[inline]
fn matmul_row_tiled_acc(row_a: &[f32], b: &[f32], n: usize, row_out: &mut [f32]) {
    let mut j0 = 0;
    while n - j0 >= 16 {
        matmul_row_tile_acc::<16>(row_a, b, n, j0, row_out);
        j0 += 16;
    }
    if n - j0 >= 8 {
        matmul_row_tile_acc::<8>(row_a, b, n, j0, row_out);
        j0 += 8;
    }
    if n - j0 >= 4 {
        matmul_row_tile_acc::<4>(row_a, b, n, j0, row_out);
        j0 += 4;
    }
    if n - j0 >= 2 {
        matmul_row_tile_acc::<2>(row_a, b, n, j0, row_out);
        j0 += 2;
    }
    if j0 < n {
        matmul_row_tile_acc::<1>(row_a, b, n, j0, row_out);
    }
}

/// Compute one output row of `A * B` with the register-tiled `ikj` kernel:
/// column tiles of 16/8/4 keep the accumulators in registers, the innermost
/// loops are fixed-width (autovectorizer-friendly), and the per-element
/// summation order over `k` is ascending — identical to the naive kernel, so
/// tiling never changes a result bit.
#[inline]
fn matmul_row_tiled(row_a: &[f32], b: &[f32], n: usize, row_out: &mut [f32]) {
    let mut j0 = 0;
    while n - j0 >= 16 {
        matmul_row_tile::<16>(row_a, b, n, j0, row_out);
        j0 += 16;
    }
    if n - j0 >= 8 {
        matmul_row_tile::<8>(row_a, b, n, j0, row_out);
        j0 += 8;
    }
    if n - j0 >= 4 {
        matmul_row_tile::<4>(row_a, b, n, j0, row_out);
        j0 += 4;
    }
    if n - j0 >= 2 {
        matmul_row_tile::<2>(row_a, b, n, j0, row_out);
        j0 += 2;
    }
    if j0 < n {
        matmul_row_tile::<1>(row_a, b, n, j0, row_out);
    }
}

/// Eight-wide partial-sum dot product over two contiguous slices. The fixed
/// accumulator array is the pattern LLVM's autovectorizer turns into packed
/// SIMD madds without any unsafe or intrinsics.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % 8;
    let mut acc = [0.0f32; 8];
    for (ca, cb) in a[..main].chunks_exact(8).zip(b[..main].chunks_exact(8)) {
        for l in 0..8 {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        sum += x * y;
    }
    sum
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with the given value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Create a matrix taking ownership of a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create a 1 x n row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Create an n x 1 column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrow one row as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copy one column out of the matrix.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Reshape without copying. The number of elements must be preserved.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(self.data.len(), rows * cols, "reshape must preserve length");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Small products run an accumulating `ikj` kernel; larger ones pack
    /// `other` transposed once and compute cache-blocked dot products
    /// (see [`Matrix::matmul_into`]). Parallelised over output rows when the
    /// problem is large enough to amortise the rayon dispatch.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other`, written into `out` (reshaped in place,
    /// reusing its buffer — the allocation-free sibling of
    /// [`Matrix::matmul`] for arena-style callers like the autograd tape).
    ///
    /// Kernel selection:
    ///
    /// * tiny products run the plain accumulating `ikj` loop;
    /// * narrow outputs (`n <` [`MATMUL_NARROW_N`], e.g. attention-score
    ///   `* x 1` products) pack `other` transposed once so the inner loop is
    ///   a dot product over two contiguous slices;
    /// * everything else runs the cache-blocked, register-tiled `ikj` kernel
    ///   ([`matmul_row_tiled`]): fixed-width column tiles accumulate in
    ///   registers, zero rows of `A` are skipped (one-hot GNN features), and
    ///   per-element summation order matches the naive kernel bit for bit.
    ///
    /// All paths are plain safe Rust and parallelise over output rows once
    /// the product is large enough to amortise the rayon dispatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let m = self.rows;
        let k = self.cols;
        let n = other.cols;

        let work = m * k * n;
        if work < PACK_MATMUL_THRESHOLD {
            // ikj loop order keeps the innermost loop contiguous in both
            // `other` and the output row. Accumulating kernel: needs zeros.
            out.reset_to_zeros(m, n);
            for (row_out, row_a) in out.data.chunks_mut(n).zip(self.data.chunks(k)) {
                for (kk, &a) in row_a.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in row_out.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            }
            return;
        }

        // Both remaining kernels overwrite every output element.
        out.resize_for_overwrite(m, n);
        if n < MATMUL_NARROW_N {
            let bt = other.transpose();
            let compute_row = |row_a: &[f32], row_out: &mut [f32]| {
                for (o, j) in row_out.iter_mut().zip(0..n) {
                    *o = dot(row_a, &bt.data[j * k..(j + 1) * k]);
                }
            };
            if work >= PAR_MATMUL_THRESHOLD {
                out.data
                    .par_chunks_mut(n)
                    .zip(self.data.par_chunks(k))
                    .for_each(|(row_out, row_a)| compute_row(row_a, row_out));
            } else {
                for (row_out, row_a) in out.data.chunks_mut(n).zip(self.data.chunks(k)) {
                    compute_row(row_a, row_out);
                }
            }
            return;
        }

        let b = &other.data;
        if work >= PAR_MATMUL_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .zip(self.data.par_chunks(k))
                .for_each(|(row_out, row_a)| matmul_row_tiled(row_a, b, n, row_out));
        } else {
            for (row_out, row_a) in out.data.chunks_mut(n).zip(self.data.chunks(k)) {
                matmul_row_tiled(row_a, b, n, row_out);
            }
        }
    }

    /// `out += self * other^T`: `other` is `p x j` with the same inner
    /// dimension `j` as `self` (`m x j`). This is the backward-pass kernel
    /// for `dL/dA = G * B^T`; in every model matmul `B` is a small parameter
    /// matrix, so the kernel pays one tiny transpose of `other` and then
    /// reuses the register-tiled zero-skipping row kernel — ReLU-masked
    /// gradient rows skip most of their work.
    pub fn matmul_nt_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_nt output shape mismatch"
        );
        let j = self.cols;
        let p = other.rows;
        let work = self.rows * j * p;
        if p < MATMUL_NARROW_N || work < PACK_MATMUL_THRESHOLD {
            // Narrow or tiny: dot products over the already-contiguous rows.
            let compute_row = |row_a: &[f32], row_out: &mut [f32]| {
                for (o, idx) in row_out.iter_mut().zip(0..p) {
                    *o += dot(row_a, &other.data[idx * j..(idx + 1) * j]);
                }
            };
            if work >= PAR_MATMUL_THRESHOLD {
                out.data
                    .par_chunks_mut(p)
                    .zip(self.data.par_chunks(j))
                    .for_each(|(row_out, row_a)| compute_row(row_a, row_out));
            } else {
                for (row_out, row_a) in out.data.chunks_mut(p).zip(self.data.chunks(j)) {
                    compute_row(row_a, row_out);
                }
            }
            return;
        }
        let bt = other.transpose();
        let b = &bt.data;
        if work >= PAR_MATMUL_THRESHOLD {
            out.data
                .par_chunks_mut(p)
                .zip(self.data.par_chunks(j))
                .for_each(|(row_out, row_a)| matmul_row_tiled_acc(row_a, b, p, row_out));
        } else {
            for (row_out, row_a) in out.data.chunks_mut(p).zip(self.data.chunks(j)) {
                matmul_row_tiled_acc(row_a, b, p, row_out);
            }
        }
    }

    /// `out = self * other^T` — the overwrite sibling of
    /// [`Matrix::matmul_nt_acc_into`], used when a gradient buffer receives
    /// its first (and usually only) contribution: skipping the zero-fill and
    /// read-back halves the memory traffic on the largest backward matrices.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let j = self.cols;
        let p = other.rows;
        out.resize_for_overwrite(self.rows, p);
        let work = self.rows * j * p;
        if p < MATMUL_NARROW_N || work < PACK_MATMUL_THRESHOLD {
            let compute_row = |row_a: &[f32], row_out: &mut [f32]| {
                for (o, idx) in row_out.iter_mut().zip(0..p) {
                    *o = dot(row_a, &other.data[idx * j..(idx + 1) * j]);
                }
            };
            if work >= PAR_MATMUL_THRESHOLD {
                out.data
                    .par_chunks_mut(p)
                    .zip(self.data.par_chunks(j))
                    .for_each(|(row_out, row_a)| compute_row(row_a, row_out));
            } else {
                for (row_out, row_a) in out.data.chunks_mut(p).zip(self.data.chunks(j)) {
                    compute_row(row_a, row_out);
                }
            }
            return;
        }
        let bt = other.transpose();
        let b = &bt.data;
        if work >= PAR_MATMUL_THRESHOLD {
            out.data
                .par_chunks_mut(p)
                .zip(self.data.par_chunks(j))
                .for_each(|(row_out, row_a)| matmul_row_tiled(row_a, b, p, row_out));
        } else {
            for (row_out, row_a) in out.data.chunks_mut(p).zip(self.data.chunks(j)) {
                matmul_row_tiled(row_a, b, p, row_out);
            }
        }
    }

    /// `out += self^T * other` without materialising the transpose: `self` is
    /// `m x k`, `other` is `m x n`, `out` is `k x n`. This is the
    /// backward-pass kernel for `dL/dB = A^T * G`. Large products are
    /// parallelised by row chunks with per-chunk partial sums reduced in
    /// chunk order, so the result stays deterministic.
    pub fn matmul_tn_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn output shape mismatch"
        );
        let m = self.rows;
        let k = self.cols;
        let n = other.cols;
        let accumulate = |rows: std::ops::Range<usize>, out: &mut Matrix| {
            for i in rows {
                let a_row = &self.data[i * k..(i + 1) * k];
                let g_row = &other.data[i * n..(i + 1) * n];
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[kk * n..(kk + 1) * n];
                    for (o, &g) in out_row.iter_mut().zip(g_row.iter()) {
                        *o += a * g;
                    }
                }
            }
        };
        let work = m * k * n;
        if work < PAR_MATMUL_THRESHOLD || m < 2 {
            accumulate(0..m, out);
            return;
        }
        let chunk_rows = m.div_ceil(16).max(8);
        let ranges: Vec<std::ops::Range<usize>> = (0..m)
            .step_by(chunk_rows)
            .map(|lo| lo..(lo + chunk_rows).min(m))
            .collect();
        let partials: Vec<Matrix> = ranges
            .par_iter()
            .map(|range| {
                let mut partial = Matrix::zeros(k, n);
                accumulate(range.clone(), &mut partial);
                partial
            })
            .collect();
        for partial in &partials {
            out.add_assign(partial);
        }
    }

    /// Elementwise sum of two equally shaped matrices.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference of two equally shaped matrices.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combination of two equally shaped matrices.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaled addition: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply all elements by a scalar, returning a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Become `f` applied elementwise to `src`, reusing this buffer.
    pub fn map_from(&mut self, src: &Matrix, f: impl Fn(f32) -> f32) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend(src.data.iter().map(|&v| f(v)));
    }

    /// Become `f` applied elementwise to the pair `(a, b)`, reusing this
    /// buffer.
    pub fn zip_from(&mut self, a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(
            a.shape(),
            b.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            a.shape(),
            b.shape()
        );
        self.rows = a.rows;
        self.cols = a.cols;
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(b.data.iter()).map(|(&x, &y)| f(x, y)));
    }

    /// In-place row-broadcast addition: `self[r] += bias` for every row.
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width must match matrix width");
        for r in 0..self.rows {
            let row = self.row_mut(r);
            for (o, &b) in row.iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
    }

    /// In-place column-broadcast scaling: `self[r] *= scales[r]`.
    pub fn mul_col_broadcast_assign(&mut self, scales: &Matrix) {
        assert_eq!(scales.cols, 1, "scales must be a column vector");
        assert_eq!(
            scales.rows, self.rows,
            "scales height must match matrix height"
        );
        for r in 0..self.rows {
            let s = scales.data[r];
            for v in self.row_mut(r) {
                *v *= s;
            }
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshape to `rows x cols` with every element zero, reusing the existing
    /// buffer allocation whenever its capacity suffices. The arena primitive
    /// behind tape reuse: repeated iterations with stable shapes allocate
    /// nothing.
    pub fn reset_to_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape to `rows x cols` for a kernel that will overwrite **every**
    /// element: existing contents are kept as garbage when the length already
    /// matches (the steady state of a reused tape slot), so no memset pass
    /// runs. Only pair this with full-overwrite kernels — accumulating
    /// kernels need [`Matrix::reset_to_zeros`].
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        if self.data.len() != rows * cols {
            self.data.clear();
            self.data.resize(rows * cols, 0.0);
        }
    }

    /// Become a copy of `src`, reusing the existing buffer allocation
    /// whenever its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Add a 1 x cols row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width must match matrix width");
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            for (o, &b) in row.iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Multiply each row `i` by the scalar `scales[i]` (an n x 1 column vector).
    pub fn mul_col_broadcast(&self, scales: &Matrix) -> Matrix {
        assert_eq!(scales.cols, 1, "scales must be a column vector");
        assert_eq!(
            scales.rows, self.rows,
            "scales height must match matrix height"
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            let s = scales.data[r];
            for v in out.row_mut(r) {
                *v *= s;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum, producing a 1 x cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Column-wise mean, producing a 1 x cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        if self.rows == 0 {
            return Matrix::zeros(1, self.cols);
        }
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Maximum element (negative infinity for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols requires equal row counts"
        );
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation of `self` on top of `other`.
    pub fn concat_rows(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "concat_rows requires equal column counts"
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Gather the given rows into a new matrix (rows may repeat).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < self.rows,
                "gather_rows index {idx} out of bounds ({} rows)",
                self.rows
            );
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Scatter-add rows of `self` into a new `out_rows x cols` matrix:
    /// `out[indices[i]] += self[i]`.
    pub fn scatter_add_rows(&self, indices: &[usize], out_rows: usize) -> Matrix {
        let mut out = Matrix::zeros(out_rows, self.cols);
        self.scatter_add_rows_acc_into(indices, &mut out);
        out
    }

    /// Scatter-add rows of `self` into an existing matrix:
    /// `out[indices[i]] += self[i]`. The accumulate-in-place sibling of
    /// [`Matrix::scatter_add_rows`] used by the gradient arena.
    pub fn scatter_add_rows_acc_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(indices.len(), self.rows, "one index per row required");
        assert_eq!(out.cols, self.cols, "scatter column width mismatch");
        let out_rows = out.rows;
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < out_rows,
                "scatter index {idx} out of bounds ({out_rows} rows)"
            );
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            let dst = out.row_mut(idx);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// Gather rows of `self` into `out` (reshaped in place, every row
    /// overwritten): `out[i] = self[indices[i]]`.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize_for_overwrite(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < self.rows,
                "gather_rows index {idx} out of bounds ({} rows)",
                self.rows
            );
            let start = i * self.cols;
            out.data[start..start + self.cols].copy_from_slice(self.row(idx));
        }
    }

    /// Gather-add rows of `self`: `out[i] += self[indices[i]]`. The
    /// accumulate-in-place backward kernel of scatter-add.
    pub fn gather_rows_acc_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(out.rows, indices.len(), "one output row per index");
        assert_eq!(out.cols, self.cols, "gather column width mismatch");
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < self.rows,
                "gather_rows index {idx} out of bounds ({} rows)",
                self.rows
            );
            let src = self.row(idx);
            let dst = out.row_mut(i);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute elementwise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Approximate equality within an absolute tolerance.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_lays_out_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_identity_op() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let i = Matrix::identity(3);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
        assert!(i.matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_large_parallel_path_matches_serial() {
        // Force the parallel path and compare against an independently
        // computed small-blocked result.
        let n = 70;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 13) % 17) as f32 / 16.0);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 3 + c * 5) % 23) as f32 / 22.0);
        let c = a.matmul(&b);
        // naive reference
        let mut reference = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a.get(i, k) * b.get(k, j);
                }
                reference.set(i, j, acc);
            }
        }
        assert!(c.approx_eq(&reference, 1e-3));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let t = a.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), a.get(2, 4));
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn broadcast_ops() {
        let a = Matrix::from_fn(2, 3, |_, c| c as f32);
        let bias = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        let with_bias = a.add_row_broadcast(&bias);
        assert_eq!(with_bias.row(0), &[10.0, 21.0, 32.0]);
        assert_eq!(with_bias.row(1), &[10.0, 21.0, 32.0]);

        let scales = Matrix::col_vector(&[2.0, 3.0]);
        let scaled = a.mul_col_broadcast(&scales);
        assert_eq!(scaled.row(0), &[0.0, 2.0, 4.0]);
        assert_eq!(scaled.row(1), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.mean_rows().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn concat_and_gather_and_scatter() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![9.0, 8.0]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.row(0), &[1.0, 2.0, 9.0]);

        let stacked = a.concat_rows(&a);
        assert_eq!(stacked.shape(), (4, 2));

        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[3.0, 4.0]);
        assert_eq!(g.row(2), &[1.0, 2.0]);

        let s = g.scatter_add_rows(&[0, 0, 1], 2);
        assert_eq!(s.row(0), &[6.0, 8.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_fill_zero() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        a.fill_zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 1, f32::NAN);
        assert!(a.has_non_finite());
    }

    fn pseudo(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17 + seed * 101) % 19) as f32 - 9.0) / 7.0
        })
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_on_awkward_shapes() {
        // Shapes straddling the pack threshold, tile boundaries and remainder
        // lanes of the 8-wide dot kernel.
        for &(m, k, n) in &[
            (1usize, 40usize, 24usize),
            (23, 13, 7),
            (100, 37, 29),
            (130, 48, 65),
            (3, 200, 200),
        ] {
            let a = pseudo(m, k, 1);
            let b = pseudo(k, n, 2);
            let got = a.matmul(&b);
            let want = naive_matmul(&a, &b);
            assert!(
                got.approx_eq(&want, 1e-3),
                "matmul mismatch for {m}x{k} * {k}x{n}: max diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn matmul_into_reuses_and_reshapes_the_output() {
        let a = pseudo(5, 6, 3);
        let b = pseudo(6, 4, 4);
        let mut out = Matrix::filled(9, 9, 7.0); // wrong shape, stale values
        a.matmul_into(&b, &mut out);
        assert!(out.approx_eq(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_nt_acc_matches_explicit_transpose() {
        let g = pseudo(50, 20, 5);
        let b = pseudo(30, 20, 6);
        let mut out = pseudo(50, 30, 7);
        let want = out.add(&g.matmul(&b.transpose()));
        g.matmul_nt_acc_into(&b, &mut out);
        assert!(out.approx_eq(&want, 1e-3), "{}", out.max_abs_diff(&want));
    }

    #[test]
    fn matmul_tn_acc_matches_explicit_transpose() {
        // Large enough to take the chunked-partials parallel path.
        let a = pseudo(600, 24, 8);
        let g = pseudo(600, 32, 9);
        let mut out = pseudo(24, 32, 10);
        let want = out.add(&a.transpose().matmul(&g));
        a.matmul_tn_acc_into(&g, &mut out);
        assert!(out.approx_eq(&want, 2e-3), "{}", out.max_abs_diff(&want));
    }

    #[test]
    fn acc_into_gather_scatter_match_allocating_forms() {
        let x = pseudo(4, 3, 11);
        let indices = [0usize, 2, 2, 3, 1];
        let mut gathered = Matrix::zeros(5, 3);
        x.gather_rows_acc_into(&indices, &mut gathered);
        assert!(gathered.approx_eq(&x.gather_rows(&indices), 0.0));

        let mut scattered = Matrix::zeros(4, 3);
        gathered.scatter_add_rows_acc_into(&indices, &mut scattered);
        assert!(scattered.approx_eq(&gathered.scatter_add_rows(&indices, 4), 0.0));
    }

    #[test]
    fn reset_and_copy_reuse_the_allocation() {
        let mut m = Matrix::filled(8, 8, 3.0);
        m.reset_to_zeros(4, 5);
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.sum(), 0.0);

        let src = pseudo(3, 7, 12);
        m.copy_from(&src);
        assert!(m.approx_eq(&src, 0.0));
    }
}
