//! Sparse adjacency in CSR form for graph message passing.
//!
//! GraphBLAST's observation, adopted here: GNN message passing *is* sparse
//! linear algebra. A relation's edge list `(src[e], dst[e])` is the pattern
//! of a sparse matrix `A` with `A[dst[e], src[e]] = s[e]` (the per-edge
//! attention coefficient), and one propagation step is the sparse × dense
//! product `A · X` — every destination row accumulates its incoming
//! messages. [`SparseMatrix`] encodes that pattern once (compressed sparse
//! rows over destinations, plus the transpose view over sources for the
//! backward pass) and the autograd tape runs [`Tape::spmm_csr`],
//! [`Tape::sddmm_edge_logits`] and [`Tape::csr_segment_softmax`] against it.
//!
//! # Encoding contract
//!
//! * Rows index **destinations**, columns index **sources**; the matrix is
//!   `rows x cols` with one stored entry per edge (duplicates allowed — two
//!   parallel edges stay two entries).
//! * Construction is a stable counting sort by destination: within one
//!   destination row, entries keep the original edge-list order. Per-row
//!   accumulation in [`SparseMatrix::spmm_into`] therefore adds
//!   contributions in exactly the order the fused per-edge scatter path
//!   adds them, so push and pull aggregation agree bit for bit row by row.
//! * [`SparseMatrix::perm`] maps each CSR position back to its original
//!   edge index; per-edge payloads (attention priors) are permuted once at
//!   build time with [`SparseMatrix::permute_to_csr`], after which every
//!   per-edge column on the tape lives in CSR order and softmax segments
//!   are contiguous row extents — no segment-id indirection on the hot path.
//! * The transpose view (`t_*` arrays: a CSC walk of the same entries,
//!   grouped by source) is built eagerly. Backward of `A · X` with respect
//!   to `X` is `Aᵀ · G`, and the transpose view makes that another
//!   sequential per-row pull instead of a scatter.
//!
//! [`Tape::spmm_csr`]: crate::Tape::spmm_csr
//! [`Tape::sddmm_edge_logits`]: crate::Tape::sddmm_edge_logits
//! [`Tape::csr_segment_softmax`]: crate::Tape::csr_segment_softmax

use crate::matrix::Matrix;
use rayon::prelude::*;
use std::sync::Arc;

/// Minimum `nnz * feature_dim` before [`SparseMatrix::spmm_into`]
/// parallelises over destination rows; below it the rayon dispatch overhead
/// dominates the row work.
const SPMM_PAR_THRESHOLD: usize = 1 << 16;

/// A sparse matrix pattern in compressed-sparse-row form, with a transpose
/// (CSC) view for backward passes. The pattern is immutable and shared:
/// recording it on an autograd tape is an `Arc` refcount bump.
///
/// Values are *not* stored here — message passing recomputes the per-edge
/// coefficients every forward pass, so ops take the value column (in CSR
/// order) as a separate operand.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` extents: row `d` owns CSR positions `row_ptr[d]..row_ptr[d+1]`.
    row_ptr: Arc<[usize]>,
    /// Source (column) index per CSR position.
    col_idx: Arc<[usize]>,
    /// Original edge index per CSR position.
    perm: Arc<[usize]>,
    /// `cols + 1` extents of the transpose view.
    t_row_ptr: Arc<[usize]>,
    /// Destination (row) index per transpose position.
    t_dst: Arc<[usize]>,
    /// CSR position per transpose position (to look up the edge value).
    t_pos: Arc<[usize]>,
}

impl SparseMatrix {
    /// Build the CSR pattern of an edge list: entry `e` sits at
    /// `(row, col) = (dst[e], src[e])`. Stable by destination — entries of
    /// one row keep their original relative order.
    ///
    /// # Panics
    /// Panics when `src` and `dst` differ in length or an index is out of
    /// bounds for the declared shape.
    pub fn from_edges(rows: usize, cols: usize, src: &[usize], dst: &[usize]) -> Self {
        assert_eq!(src.len(), dst.len(), "one source per destination required");
        let nnz = src.len();
        for (&s, &d) in src.iter().zip(dst) {
            assert!(s < cols, "source index {s} out of bounds ({cols} cols)");
            assert!(
                d < rows,
                "destination index {d} out of bounds ({rows} rows)"
            );
        }

        // Stable counting sort by destination.
        let mut row_ptr = vec![0usize; rows + 1];
        for &d in dst {
            row_ptr[d + 1] += 1;
        }
        for d in 0..rows {
            row_ptr[d + 1] += row_ptr[d];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut perm = vec![0usize; nnz];
        for (e, (&s, &d)) in src.iter().zip(dst).enumerate() {
            let pos = next[d];
            next[d] += 1;
            col_idx[pos] = s;
            perm[pos] = e;
        }

        // Transpose view: walk CSR in order so each source's entries are
        // grouped, ascending by destination (stable again).
        let mut t_row_ptr = vec![0usize; cols + 1];
        for &s in &col_idx {
            t_row_ptr[s + 1] += 1;
        }
        for s in 0..cols {
            t_row_ptr[s + 1] += t_row_ptr[s];
        }
        let mut t_next = t_row_ptr.clone();
        let mut t_dst = vec![0usize; nnz];
        let mut t_pos = vec![0usize; nnz];
        for d in 0..rows {
            let extent = row_ptr[d]..row_ptr[d + 1];
            for (pos, &s) in col_idx[extent.clone()].iter().enumerate() {
                let pos = pos + extent.start;
                let tp = t_next[s];
                t_next[s] += 1;
                t_dst[tp] = d;
                t_pos[tp] = pos;
            }
        }

        Self {
            rows,
            cols,
            row_ptr: Arc::from(row_ptr),
            col_idx: Arc::from(col_idx),
            perm: Arc::from(perm),
            t_row_ptr: Arc::from(t_row_ptr),
            t_dst: Arc::from(t_dst),
            t_pos: Arc::from(t_pos),
        }
    }

    /// Number of rows (destinations).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (sources).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (edges).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.col_idx.is_empty()
    }

    /// Row extents: row `d` owns positions `row_ptr()[d]..row_ptr()[d+1]`.
    #[inline]
    pub fn row_ptr(&self) -> &Arc<[usize]> {
        &self.row_ptr
    }

    /// Source index per CSR position.
    #[inline]
    pub fn col_idx(&self) -> &Arc<[usize]> {
        &self.col_idx
    }

    /// Original edge index per CSR position.
    #[inline]
    pub fn perm(&self) -> &Arc<[usize]> {
        &self.perm
    }

    /// Recover the `(src, dst)` edge list in CSR order. Composed with
    /// [`SparseMatrix::perm`] this is a permutation of the input edge list —
    /// the round-trip identity the property tests pin.
    pub fn to_edge_list(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.nnz());
        for d in 0..self.rows {
            for pos in self.row_ptr[d]..self.row_ptr[d + 1] {
                out.push((self.col_idx[pos], d));
            }
        }
        out
    }

    /// Permute a per-edge payload (one entry per original edge) into CSR
    /// order: `out[pos] = per_edge[perm[pos]]`. Done once at build time so
    /// the hot ops never chase the permutation.
    pub fn permute_to_csr<T: Copy>(&self, per_edge: &[T]) -> Vec<T> {
        assert_eq!(per_edge.len(), self.nnz(), "one payload per edge required");
        self.perm.iter().map(|&e| per_edge[e]).collect()
    }

    /// Sparse × dense product `out = base + A(scale) · x`, where `A(scale)`
    /// is this pattern carrying `scale` (an `nnz x 1` column in CSR order)
    /// as its values: `out[d] = base[d] + Σ_pos scale[pos] * x[col_idx[pos]]`
    /// over row `d`'s extent. With `base == None` the product starts from
    /// zeros.
    ///
    /// Every output row is fully written — rows with an empty extent become
    /// an exact copy of `base` (or zeros), never stale buffer contents, so
    /// isolated nodes are safe on a reused arena slot. Per-row accumulation
    /// is in CSR-position order; large products parallelise over rows
    /// (deterministic: each row is owned by exactly one task).
    pub fn spmm_into(&self, scale: &Matrix, x: &Matrix, base: Option<&Matrix>, out: &mut Matrix) {
        assert_eq!(
            scale.shape(),
            (self.nnz(), 1),
            "one scale per stored entry required"
        );
        assert_eq!(
            x.rows(),
            self.cols,
            "dense operand must have one row per source"
        );
        let f = x.cols();
        if let Some(base) = base {
            assert_eq!(base.shape(), (self.rows, f), "base shape mismatch");
        }
        out.resize_for_overwrite(self.rows, f);
        let row_task = |d: usize, out_row: &mut [f32]| {
            match base {
                Some(base) => out_row.copy_from_slice(base.row(d)),
                None => out_row.fill(0.0),
            }
            for pos in self.row_ptr[d]..self.row_ptr[d + 1] {
                let s = scale.get(pos, 0);
                for (o, &v) in out_row.iter_mut().zip(x.row(self.col_idx[pos])) {
                    *o += s * v;
                }
            }
        };
        if f > 0 && self.nnz() * f >= SPMM_PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(f)
                .enumerate()
                .for_each(|(d, out_row)| row_task(d, out_row));
        } else {
            for d in 0..self.rows {
                row_task(d, out.row_mut(d));
            }
        }
    }

    /// Transpose product accumulated in place: `acc += A(scale)ᵀ · g`, i.e.
    /// `acc[s] += Σ scale[pos] * g[dst]` over source `s`'s transpose extent.
    /// The backward kernel of [`SparseMatrix::spmm_into`] with respect to
    /// the dense operand — the CSC view turns the would-be scatter into a
    /// sequential per-source pull.
    pub fn spmm_transpose_acc_into(&self, scale: &Matrix, g: &Matrix, acc: &mut Matrix) {
        assert_eq!(
            scale.shape(),
            (self.nnz(), 1),
            "one scale per stored entry required"
        );
        assert_eq!(
            g.rows(),
            self.rows,
            "gradient must have one row per destination"
        );
        let f = g.cols();
        assert_eq!(acc.shape(), (self.cols, f), "accumulator shape mismatch");
        let row_task = |s: usize, acc_row: &mut [f32]| {
            for tp in self.t_row_ptr[s]..self.t_row_ptr[s + 1] {
                let v = scale.get(self.t_pos[tp], 0);
                for (o, &gv) in acc_row.iter_mut().zip(g.row(self.t_dst[tp])) {
                    *o += v * gv;
                }
            }
        };
        if f > 0 && self.nnz() * f >= SPMM_PAR_THRESHOLD {
            acc.as_mut_slice()
                .par_chunks_mut(f)
                .enumerate()
                .for_each(|(s, acc_row)| row_task(s, acc_row));
        } else {
            for s in 0..self.cols {
                row_task(s, acc.row_mut(s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_of(adj: &SparseMatrix, scale: &Matrix) -> Matrix {
        let mut dense = Matrix::zeros(adj.rows(), adj.cols());
        for d in 0..adj.rows() {
            for pos in adj.row_ptr()[d]..adj.row_ptr()[d + 1] {
                let s = adj.col_idx()[pos];
                dense.set(d, s, dense.get(d, s) + scale.get(pos, 0));
            }
        }
        dense
    }

    #[test]
    fn csr_round_trips_the_edge_list_as_a_permutation() {
        let src = vec![3usize, 0, 2, 2, 1, 3];
        let dst = vec![1usize, 2, 0, 2, 2, 1];
        let adj = SparseMatrix::from_edges(4, 4, &src, &dst);
        assert_eq!(adj.nnz(), 6);
        // perm recovers every original edge exactly once.
        let mut seen = vec![false; src.len()];
        for (pos, (s, d)) in adj.to_edge_list().into_iter().enumerate() {
            let e = adj.perm()[pos];
            assert!(!seen[e], "edge {e} appeared twice");
            seen[e] = true;
            assert_eq!((s, d), (src[e], dst[e]));
        }
        assert!(seen.into_iter().all(|v| v), "an edge was dropped");
        // Stability: within a destination row, original order is kept.
        for d in 0..adj.rows() {
            let extent = &adj.perm()[adj.row_ptr()[d]..adj.row_ptr()[d + 1]];
            assert!(extent.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn transpose_view_visits_every_entry_once() {
        let src = vec![0usize, 1, 1, 2, 0];
        let dst = vec![2usize, 0, 2, 1, 1];
        let adj = SparseMatrix::from_edges(3, 3, &src, &dst);
        let mut seen = vec![false; adj.nnz()];
        for s in 0..adj.cols() {
            for tp in adj.t_row_ptr[s]..adj.t_row_ptr[s + 1] {
                let pos = adj.t_pos[tp];
                assert!(!seen[pos]);
                seen[pos] = true;
                assert_eq!(adj.col_idx()[pos], s, "transpose grouped a wrong source");
                // t_dst names the CSR row owning the position.
                let d = adj.t_dst[tp];
                assert!((adj.row_ptr()[d]..adj.row_ptr()[d + 1]).contains(&pos));
            }
        }
        assert!(seen.into_iter().all(|v| v));
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let src = vec![0usize, 1, 2, 3, 1, 0, 2];
        let dst = vec![1usize, 1, 0, 3, 2, 3, 2];
        let adj = SparseMatrix::from_edges(4, 4, &src, &dst);
        let scale = Matrix::from_fn(adj.nnz(), 1, |r, _| (r as f32 + 1.0) * 0.25);
        let x = Matrix::from_fn(4, 5, |r, c| ((r * 5 + c) as f32).sin());
        let mut got = Matrix::zeros(0, 0);
        adj.spmm_into(&scale, &x, None, &mut got);
        let want = dense_of(&adj, &scale).matmul(&x);
        assert!(got.approx_eq(&want, 1e-6), "{}", got.max_abs_diff(&want));

        // With a base: out = base + A x.
        let base = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.1);
        adj.spmm_into(&scale, &x, Some(&base), &mut got);
        let want = base.add(&dense_of(&adj, &scale).matmul(&x));
        assert!(got.approx_eq(&want, 1e-6));
    }

    #[test]
    fn spmm_transpose_matches_dense_transpose_matmul() {
        let src = vec![0usize, 2, 1, 2];
        let dst = vec![1usize, 0, 2, 2];
        let adj = SparseMatrix::from_edges(3, 3, &src, &dst);
        let scale = Matrix::col_vector(&[0.5, -1.0, 2.0, 0.25]);
        let g = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let mut acc = Matrix::zeros(3, 4);
        adj.spmm_transpose_acc_into(&scale, &g, &mut acc);
        let want = dense_of(&adj, &scale).transpose().matmul(&g);
        assert!(acc.approx_eq(&want, 1e-6), "{}", acc.max_abs_diff(&want));
    }

    #[test]
    fn isolated_rows_are_written_not_skipped() {
        // Rows 0 and 3 have no incoming entries; spmm must write them (zero
        // or base), never leave buffer garbage.
        let adj = SparseMatrix::from_edges(4, 4, &[1, 2], &[1, 2]);
        let scale = Matrix::col_vector(&[1.0, 1.0]);
        let x = Matrix::filled(4, 3, 2.0);
        let mut out = Matrix::filled(4, 3, 99.0); // poisoned buffer
        adj.spmm_into(&scale, &x, None, &mut out);
        assert_eq!(out.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(3), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(1), &[2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = SparseMatrix::from_edges(2, 2, &[0], &[5]);
    }

    #[test]
    fn empty_pattern_is_fine() {
        let adj = SparseMatrix::from_edges(3, 3, &[], &[]);
        assert!(adj.is_empty());
        let mut out = Matrix::filled(3, 2, 7.0);
        adj.spmm_into(&Matrix::zeros(0, 1), &Matrix::zeros(3, 2), None, &mut out);
        assert_eq!(out.as_slice(), &[0.0; 6]);
    }
}

#[cfg(test)]
mod csr_properties {
    //! Property tests pinning the CSR contract: building from a random edge
    //! list and reading back is a permutation-stable identity, and `spmm`
    //! against the pattern equals a dense reference matmul.

    use super::*;
    use proptest::prelude::*;

    /// Deterministic splitmix-style stream (the proptest shim has no
    /// collection strategies, so draws come from a seeded integer stream).
    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_edge_lists_round_trip_and_spmm_matches_dense(
            seed in 0u64..1_000_000,
            nodes in 1u32..24,
            edges in 0u32..96,
            feat in 1u32..9,
        ) {
            let n = nodes as usize;
            let e = edges as usize;
            let f = feat as usize;
            let mut next = stream(seed);
            let src: Vec<usize> = (0..e).map(|_| next() as usize % n).collect();
            let dst: Vec<usize> = (0..e).map(|_| next() as usize % n).collect();
            let adj = SparseMatrix::from_edges(n, n, &src, &dst);

            // Round trip: the CSR edge list is a permutation of the input,
            // stable within each destination row.
            prop_assert_eq!(adj.nnz(), e);
            let mut seen = vec![false; e];
            for (pos, (s, d)) in adj.to_edge_list().into_iter().enumerate() {
                let orig = adj.perm()[pos];
                prop_assert!(!seen[orig], "edge visited twice");
                seen[orig] = true;
                prop_assert_eq!((s, d), (src[orig], dst[orig]));
            }
            prop_assert!(seen.into_iter().all(|v| v), "edge dropped");
            for d in 0..n {
                let extent = &adj.perm()[adj.row_ptr()[d]..adj.row_ptr()[d + 1]];
                prop_assert!(
                    extent.windows(2).all(|w| w[0] < w[1]),
                    "row order not stable"
                );
            }

            // spmm == dense reference matmul of the weighted adjacency.
            let scale_vals: Vec<f32> = (0..e)
                .map(|_| (next() % 2001) as f32 / 1000.0 - 1.0)
                .collect();
            let scale = Matrix::col_vector(&scale_vals);
            let x = Matrix::from_fn(n, f, |r, c| {
                (((r * 31 + c * 17) % 23) as f32 - 11.0) / 7.0
            });
            let mut dense = Matrix::zeros(n, n);
            for pos in 0..e {
                let d = adj.to_edge_list()[pos].1;
                let s = adj.col_idx()[pos];
                dense.set(d, s, dense.get(d, s) + scale.get(pos, 0));
            }
            let mut got = Matrix::filled(n, f, f32::NAN); // poisoned
            adj.spmm_into(&scale, &x, None, &mut got);
            let want = dense.matmul(&x);
            // 1e-6 relative to the result's magnitude: the dense kernel and
            // the CSR walk sum the same terms in a different association.
            let tol = 1e-6 * want.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
            prop_assert!(
                got.approx_eq(&want, tol),
                "spmm diverged from dense matmul by {}",
                got.max_abs_diff(&want)
            );
        }
    }
}
