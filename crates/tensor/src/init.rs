//! Weight-initialisation schemes for the neural-network layers.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: samples from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// This is the initialisation used for the RGAT projection matrices and the
/// fully connected layers of the ParaGraph model.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..=limit))
}

/// He/Kaiming uniform initialisation, appropriate for ReLU activations:
/// samples from `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`.
pub fn he_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..=limit))
}

/// Small-uniform initialisation for attention vectors and biases.
pub fn small_uniform(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
}

/// Zero initialisation (used for biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 64, 32);
        let limit = (6.0_f32 / 96.0).sqrt();
        assert_eq!(m.shape(), (64, 32));
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
        // Not all values identical (i.e. actual randomness happened).
        assert!(m.max() > m.min());
    }

    #[test]
    fn he_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = he_uniform(&mut rng, 16, 8);
        let limit = (6.0_f32 / 16.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn initialisation_is_deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let m1 = xavier_uniform(&mut a, 10, 10);
        let m2 = xavier_uniform(&mut b, 10, 10);
        assert!(m1.approx_eq(&m2, 0.0));
    }

    #[test]
    fn small_uniform_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = small_uniform(&mut rng, 4, 4, 0.01);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.01 + 1e-9));
    }
}
