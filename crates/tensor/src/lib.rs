//! # pg-tensor
//!
//! Dense linear-algebra and machine-learning substrate for the ParaGraph
//! reproduction. The paper trains its models with PyTorch-Geometric; since
//! this repository builds everything from scratch in Rust, `pg-tensor`
//! provides the pieces those models need:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with rayon-parallel matmul,
//! * [`autograd::Tape`] — reverse-mode automatic differentiation over the op
//!   set required by relational graph attention networks,
//! * [`Adam`] — the Adam optimiser used by the paper,
//! * [`MinMaxScaler`] / [`TargetTransform`] — the feature/target scaling the
//!   paper applies before training,
//! * [`metrics`] — RMSE, normalised RMSE and relative error (the paper's
//!   evaluation metrics).
//!
//! The crate is dependency-light and fully deterministic given a seed, which
//! keeps every experiment in `pg-bench` reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adam;
pub mod autograd;
pub mod init;
pub mod matrix;
pub mod metrics;
pub mod scaler;
pub mod sparse;

pub use adam::{Adam, AdamConfig};
pub use autograd::{Tape, Var};
pub use matrix::Matrix;
pub use scaler::{MinMaxScaler, TargetTransform};
pub use sparse::SparseMatrix;

#[cfg(test)]
mod integration_tests {
    //! A tiny end-to-end learning problem proving that matrix ops, autograd
    //! and Adam compose into something that actually learns.
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn two_layer_mlp_learns_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(1234);
        // y = 2*x0 - 3*x1 + 0.5
        let sample = |rng: &mut StdRng| {
            let x0: f32 = rng.gen_range(-1.0..1.0);
            let x1: f32 = rng.gen_range(-1.0..1.0);
            (vec![x0, x1], 2.0 * x0 - 3.0 * x1 + 0.5)
        };

        let mut w1 = init::xavier_uniform(&mut rng, 2, 16);
        let mut b1 = Matrix::zeros(1, 16);
        let mut w2 = init::xavier_uniform(&mut rng, 16, 1);
        let mut b2 = Matrix::zeros(1, 1);
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.01,
            ..AdamConfig::default()
        });

        let mut final_loss = f32::INFINITY;
        for _ in 0..400 {
            let (x, y) = sample(&mut rng);
            let mut tape = Tape::new();
            let vx = tape.leaf(Matrix::row_vector(&x));
            let vw1 = tape.leaf(w1.clone());
            let vb1 = tape.leaf(b1.clone());
            let vw2 = tape.leaf(w2.clone());
            let vb2 = tape.leaf(b2.clone());
            let h = tape.matmul(vx, vw1);
            let h = tape.add_row_broadcast(h, vb1);
            let h = tape.tanh(h);
            let o = tape.matmul(h, vw2);
            let o = tape.add_row_broadcast(o, vb2);
            let loss = tape.mse_loss(o, &[y]);
            tape.backward(loss);
            final_loss = tape.value(loss).get(0, 0);

            adam.begin_step();
            // grad_ref borrows the retained gradient buffers — no clones.
            adam.step(0, &mut w1, tape.grad_ref(vw1).expect("w1 gradient"));
            adam.step(1, &mut b1, tape.grad_ref(vb1).expect("b1 gradient"));
            adam.step(2, &mut w2, tape.grad_ref(vw2).expect("w2 gradient"));
            adam.step(3, &mut b2, tape.grad_ref(vb2).expect("b2 gradient"));
        }
        assert!(
            final_loss < 0.05,
            "MLP failed to learn a simple linear map, final loss {final_loss}"
        );
    }
}
