//! Feature scaling utilities.
//!
//! The paper normalises the edge weights and the two launch-configuration
//! side features (number of teams, number of threads) with a MinMax scaler,
//! and trains on runtimes whose ranges span several orders of magnitude. We
//! provide both a [`MinMaxScaler`] and a log-domain [`TargetTransform`] so
//! the model can be trained on well-conditioned targets while all reported
//! errors remain in the original (millisecond) domain.

use serde::{Deserialize, Serialize};

/// Per-column MinMax scaler mapping each feature into `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl MinMaxScaler {
    /// Fit the scaler on rows of features (each row one sample).
    ///
    /// # Panics
    /// Panics if `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on an empty dataset");
        let width = rows[0].len();
        let mut mins = vec![f32::INFINITY; width];
        let mut maxs = vec![f32::NEG_INFINITY; width];
        for row in rows {
            assert_eq!(row.len(), width, "inconsistent feature width");
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        Self { mins, maxs }
    }

    /// Fit a scaler over a single feature column.
    pub fn fit_scalar(values: &[f32]) -> Self {
        let rows: Vec<Vec<f32>> = values.iter().map(|&v| vec![v]).collect();
        Self::fit(&rows)
    }

    /// Number of features the scaler was fitted on.
    pub fn width(&self) -> usize {
        self.mins.len()
    }

    /// Observed minimum per column.
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Observed maximum per column.
    pub fn maxs(&self) -> &[f32] {
        &self.maxs
    }

    /// Range (max - min) of the given column.
    pub fn range(&self, column: usize) -> f32 {
        self.maxs[column] - self.mins[column]
    }

    /// Scale one sample into `[0, 1]` per column. Columns with zero range map
    /// to 0.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.mins.len(), "feature width mismatch");
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                let range = self.maxs[i] - self.mins[i];
                if range <= f32::EPSILON {
                    0.0
                } else {
                    (v - self.mins[i]) / range
                }
            })
            .collect()
    }

    /// Scale a single value using column 0 of the fitted statistics.
    pub fn transform_scalar(&self, value: f32) -> f32 {
        self.transform(&[value])[0]
    }

    /// Invert [`MinMaxScaler::transform`] for one sample.
    pub fn inverse_transform(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.mins.len(), "feature width mismatch");
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                let range = self.maxs[i] - self.mins[i];
                if range <= f32::EPSILON {
                    self.mins[i]
                } else {
                    v * range + self.mins[i]
                }
            })
            .collect()
    }

    /// Invert a single scaled value using column 0.
    pub fn inverse_transform_scalar(&self, value: f32) -> f32 {
        self.inverse_transform(&[value])[0]
    }
}

/// Transformation applied to the regression target (the measured runtime)
/// before training.
///
/// Runtimes in the paper span from tens of microseconds to hundreds of
/// seconds, so training directly on milliseconds makes the MSE loss attend
/// only to the largest kernels. `Log1pMinMax` trains in `log(1 + ms)` space
/// scaled to `[0, 1]`, which matches the paper's observation that relative
/// error stays flat across runtime bins.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum TargetTransform {
    /// Plain MinMax scaling of the raw runtime.
    MinMax(MinMaxScaler),
    /// `log(1 + runtime)` followed by MinMax scaling (default).
    Log1pMinMax(MinMaxScaler),
}

impl TargetTransform {
    /// Fit a log-domain transform on raw runtimes (in milliseconds).
    pub fn fit_log1p(runtimes_ms: &[f32]) -> Self {
        let logs: Vec<f32> = runtimes_ms
            .iter()
            .map(|&v| (1.0 + v.max(0.0)).ln())
            .collect();
        TargetTransform::Log1pMinMax(MinMaxScaler::fit_scalar(&logs))
    }

    /// Fit a linear-domain transform on raw runtimes (in milliseconds).
    pub fn fit_linear(runtimes_ms: &[f32]) -> Self {
        TargetTransform::MinMax(MinMaxScaler::fit_scalar(runtimes_ms))
    }

    /// Map a raw runtime (ms) into model/target space.
    pub fn encode(&self, runtime_ms: f32) -> f32 {
        match self {
            TargetTransform::MinMax(s) => s.transform_scalar(runtime_ms),
            TargetTransform::Log1pMinMax(s) => s.transform_scalar((1.0 + runtime_ms.max(0.0)).ln()),
        }
    }

    /// Map a model prediction back to a raw runtime in milliseconds.
    pub fn decode(&self, encoded: f32) -> f32 {
        match self {
            TargetTransform::MinMax(s) => s.inverse_transform_scalar(encoded),
            TargetTransform::Log1pMinMax(s) => {
                (s.inverse_transform_scalar(encoded).exp() - 1.0).max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_round_trip() {
        let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![2.0, 200.0]];
        let scaler = MinMaxScaler::fit(&rows);
        assert_eq!(scaler.mins(), &[1.0, 100.0]);
        assert_eq!(scaler.maxs(), &[3.0, 300.0]);
        let t = scaler.transform(&[2.0, 150.0]);
        assert!((t[0] - 0.5).abs() < 1e-6);
        assert!((t[1] - 0.25).abs() < 1e-6);
        let back = scaler.inverse_transform(&t);
        assert!((back[0] - 2.0).abs() < 1e-5);
        assert!((back[1] - 150.0).abs() < 1e-3);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![5.0], vec![5.0]];
        let scaler = MinMaxScaler::fit(&rows);
        assert_eq!(scaler.transform(&[5.0]), vec![0.0]);
        assert_eq!(scaler.inverse_transform(&[0.7]), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_on_empty_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }

    #[test]
    fn log_transform_round_trip() {
        let runtimes = vec![0.05, 1.0, 250.0, 30_000.0, 700_000.0];
        let t = TargetTransform::fit_log1p(&runtimes);
        for &r in &runtimes {
            let enc = t.encode(r);
            assert!((0.0..=1.0).contains(&enc), "encoded {enc} out of range");
            let dec = t.decode(enc);
            let rel = (dec - r).abs() / r.max(1e-3);
            assert!(rel < 1e-2, "round trip error too large: {r} -> {dec}");
        }
    }

    #[test]
    fn linear_transform_round_trip() {
        let runtimes = vec![1.0, 2.0, 10.0];
        let t = TargetTransform::fit_linear(&runtimes);
        let enc = t.encode(5.5);
        let dec = t.decode(enc);
        assert!((dec - 5.5).abs() < 1e-4);
    }

    #[test]
    fn transform_scalar_matches_transform() {
        let scaler = MinMaxScaler::fit_scalar(&[0.0, 10.0]);
        assert!((scaler.transform_scalar(5.0) - 0.5).abs() < 1e-6);
        assert!((scaler.range(0) - 10.0).abs() < 1e-6);
    }
}
