//! Regression metrics used in the paper's evaluation:
//! RMSE (Eq. 3), normalised RMSE (RMSE divided by the runtime range) and
//! relative error (absolute error divided by the runtime range).

/// Root mean square error between predictions and ground truth.
///
/// Returns 0 for empty inputs.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn rmse(predicted: &[f32], actual: &[f32]) -> f32 {
    assert_eq!(predicted.len(), actual.len(), "rmse length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| {
            let d = (p - a) as f64;
            d * d
        })
        .sum();
    (sum_sq / predicted.len() as f64).sqrt() as f32
}

/// RMSE normalised by the range (max - min) of the actual values, as used in
/// Table III of the paper. Returns 0 when the range is degenerate.
pub fn normalized_rmse(predicted: &[f32], actual: &[f32]) -> f32 {
    let range = value_range(actual);
    if range <= f32::EPSILON {
        return 0.0;
    }
    rmse(predicted, actual) / range
}

/// Mean relative error: mean of |pred - actual| / range(actual), the per-bin
/// metric of Figure 4 and the per-application metric of Figure 6.
pub fn mean_relative_error(predicted: &[f32], actual: &[f32], range: f32) -> f32 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "relative error length mismatch"
    );
    if predicted.is_empty() || range <= f32::EPSILON {
        return 0.0;
    }
    let sum: f64 = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| ((p - a).abs() / range) as f64)
        .sum();
    (sum / predicted.len() as f64) as f32
}

/// Mean absolute percentage error (diagnostic; not reported in the paper but
/// useful when validating the simulator and baselines).
pub fn mape(predicted: &[f32], actual: &[f32]) -> f32 {
    assert_eq!(predicted.len(), actual.len(), "mape length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let sum: f64 = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| (((p - a).abs()) / a.abs().max(1e-6)) as f64)
        .sum();
    (sum / predicted.len() as f64) as f32
}

/// Coefficient of determination R^2 (diagnostic).
pub fn r2(predicted: &[f32], actual: &[f32]) -> f32 {
    assert_eq!(predicted.len(), actual.len(), "r2 length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let mean: f64 = actual.iter().map(|&v| v as f64).sum::<f64>() / actual.len() as f64;
    let ss_res: f64 = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| {
            let d = (a - p) as f64;
            d * d
        })
        .sum();
    let ss_tot: f64 = actual
        .iter()
        .map(|&a| {
            let d = a as f64 - mean;
            d * d
        })
        .sum();
    if ss_tot <= f64::EPSILON {
        return 0.0;
    }
    (1.0 - ss_res / ss_tot) as f32
}

/// Range (max - min) of a slice; 0 for empty input.
pub fn value_range(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    max - min
}

/// Mean of a slice; 0 for empty input.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population standard deviation of a slice; 0 for empty input.
pub fn std_dev(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values) as f64;
    let var: f64 = values
        .iter()
        .map(|&v| {
            let d = v as f64 - m;
            d * d
        })
        .sum::<f64>()
        / values.len() as f64;
    var.sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(normalized_rmse(&a, &a), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let pred = [1.0, 2.0, 3.0, 4.0];
        let act = [2.0, 2.0, 5.0, 4.0];
        // errors: 1, 0, 2, 0 -> mse = 5/4 -> rmse = sqrt(1.25)
        assert!((rmse(&pred, &act) - 1.25_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn normalized_rmse_divides_by_range() {
        let pred = [0.0, 10.0];
        let act = [0.0, 20.0];
        // rmse = sqrt(100/2), range = 20
        let expected = (50.0_f32).sqrt() / 20.0;
        assert!((normalized_rmse(&pred, &act) - expected).abs() < 1e-6);
    }

    #[test]
    fn relative_error_uses_supplied_range() {
        let pred = [5.0];
        let act = [10.0];
        assert!((mean_relative_error(&pred, &act, 100.0) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(normalized_rmse(&[], &[]), 0.0);
        assert_eq!(mean_relative_error(&[], &[], 10.0), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
        assert_eq!(r2(&[], &[]), 0.0);
        assert_eq!(value_range(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn r2_of_perfect_fit_is_one() {
        let act = [1.0, 2.0, 3.0, 10.0];
        assert!((r2(&act, &act) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let act = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2(&pred, &act).abs() < 1e-6);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&vals) - 2.0).abs() < 1e-6);
        assert!((mean(&vals) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
