//! Reverse-mode automatic differentiation on a reusable tape.
//!
//! The ParaGraph model builds a fresh computation graph for every program
//! graph (node counts and edge lists differ per sample), so the natural
//! structure is a *tape*: forward operations append nodes, and
//! [`Tape::backward`] walks the tape in reverse accumulating gradients.
//!
//! The op vocabulary is intentionally small — exactly the operations needed
//! by the RGAT layers, the readout and the MLP heads — and every backward
//! rule is validated against finite differences in the test-suite.
//!
//! # Allocation discipline
//!
//! The tape is an arena: [`Tape::reset`] rewinds the logical length to zero
//! but keeps every node slot, so the value and gradient buffers recorded in
//! one iteration are reused by the next. Training loops and batched serving
//! hold one tape and `reset()` it between steps; when shapes are stable
//! across iterations (the common case for a fixed batch composition) a
//! forward + backward pass performs no heap allocation beyond index-scale
//! scratch. New ops must follow the same rules:
//!
//! * forward values are written through [`Matrix`] `*_into` kernels into the
//!   slot buffer handed to the closure, never returned by value;
//! * backward rules accumulate into the parent's retained gradient buffer
//!   (`ensure_grad` + `*_acc_into` / in-place loops), never via
//!   `Matrix::clone`;
//! * index slices (gather/scatter maps, segment ids) are stored as
//!   `Arc<[usize]>` so recording them on the tape is a refcount bump, not a
//!   copy — use the `*_shared` entry points from prepared data structures.

use crate::matrix::{dot, Matrix};
use crate::sparse::SparseMatrix;
use std::sync::Arc;

/// Handle to a value on a [`Tape`].
///
/// Handles are indices into the tape arena: [`Tape::reset`] invalidates all
/// outstanding handles (debug builds assert on stale use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Index of the underlying tape node (mostly useful for debugging).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Operation recorded on the tape. Parent handles are stored by index;
/// index slices are shared (`Arc`) so recording never copies them.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (input or parameter); has no parents.
    Leaf,
    /// `C = A * B` matrix product.
    MatMul(usize, usize),
    /// `C = A + B` (same shapes).
    Add(usize, usize),
    /// `C = A - B` (same shapes).
    Sub(usize, usize),
    /// `C = A ⊙ B` elementwise.
    Hadamard(usize, usize),
    /// `C = A + bias` where `bias` is `1 x cols`, broadcast over rows.
    AddRowBroadcast(usize, usize),
    /// `C = alpha * A`.
    Scale(usize, f32),
    /// Rectified linear unit.
    Relu(usize),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(usize, f32),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// `[A | B]` column concatenation.
    ConcatCols(usize, usize),
    /// Contiguous row slice `A[start..start+rows]`.
    SliceRows(usize, usize),
    /// Select rows of A by index (rows may repeat).
    GatherRows(usize, Arc<[usize]>),
    /// `out[idx[i]] += A[i]` into a matrix with `out_rows` rows.
    ScatterAddRows(usize, Arc<[usize]>, usize),
    /// Per-segment softmax over an `E x 1` logit column with constant
    /// multiplicative priors: `alpha_i = w_i e^{l_i} / sum_seg w_j e^{l_j}`.
    /// The priors are constants, so only the logit handle and the segment
    /// map are needed for the backward pass. `seg_count` bounds the segment
    /// ids so scratch can be a flat vector instead of a hash map.
    SegmentSoftmax {
        logits: usize,
        segments: Arc<[usize]>,
        seg_count: usize,
    },
    /// Multiply row `i` of A by scalar `s[i]` (`s` is `rows x 1`).
    MulColBroadcast(usize, usize),
    /// Column-wise mean producing a `1 x cols` row vector.
    MeanRows(usize),
    /// Per-segment column-wise mean: rows `offsets[g]..offsets[g+1]` of A
    /// average into output row `g` (the batched-readout sibling of
    /// `MeanRows` for a disjoint union of graphs).
    SegmentMeanRows { a: usize, offsets: Arc<[usize]> },
    /// Sum of all elements producing a `1 x 1` value.
    SumAll(usize),
    /// Mean squared error against a constant target, producing `1 x 1`.
    MseLoss { pred: usize, target: Arc<[f32]> },
    /// Fused per-edge message aggregation:
    /// `out = base; out[dst[e]] += s[e] * A[src[e]]` (with `src = e` when
    /// absent, and `base = 0` when absent). Collapses the gather →
    /// column-scale → scatter-add → running-sum chain of a message-passing
    /// layer into one pass over the edges, so neither the `E x F` gathered
    /// and scaled intermediates nor a separate per-relation aggregate are
    /// materialised.
    EdgeScaleScatter {
        a: usize,
        s: usize,
        base: Option<usize>,
        src: Option<Arc<[usize]>>,
        dst: Arc<[usize]>,
    },
    /// Sparse × dense product `out = base + A(s) · a` against a shared CSR
    /// pattern, with `s` the `nnz x 1` value column in CSR order (and
    /// `base = 0` when absent). The pull-mode dual of `EdgeScaleScatter`:
    /// same per-edge math, but iteration is per destination row, and the
    /// backward pass pulls through the pattern's transpose view instead of
    /// scattering.
    SpmmCsr {
        a: usize,
        s: usize,
        base: Option<usize>,
        adj: Arc<SparseMatrix>,
    },
    /// Fused SDDMM-style attention logits over a CSR pattern:
    /// `out[pos] = x[col(pos)] · p + x[row(pos)] · q`, an `nnz x 1` column
    /// in CSR order. Sampled dense-dense matmul: only the entries the
    /// pattern stores are computed, so no `E x F` gather is materialised.
    SddmmEdgeLogits {
        x: usize,
        p: usize,
        q: usize,
        adj: Arc<SparseMatrix>,
    },
    /// Segment softmax over contiguous CSR row extents with constant
    /// multiplicative priors (the CSR sibling of `SegmentSoftmax`: segments
    /// are `row_ptr[d]..row_ptr[d+1]` extents, so backward needs no
    /// segment-id scratch).
    CsrSegmentSoftmax {
        logits: usize,
        row_ptr: Arc<[usize]>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    /// Retained gradient buffer; meaningful only when `has_grad` is true.
    grad: Matrix,
    has_grad: bool,
    /// False when no gradient consumer can be reached through this node
    /// (constant leaves like input features or attention priors, and
    /// anything computed only from them). Backward skips dead branches
    /// entirely — including the large `G * B^T` products that would only
    /// feed an input leaf.
    requires_grad: bool,
    op: Op,
}

/// Parent indices of an op (at most three).
fn op_parents(op: &Op) -> [Option<usize>; 3] {
    match op {
        Op::Leaf => [None, None, None],
        Op::MatMul(a, b)
        | Op::Add(a, b)
        | Op::Sub(a, b)
        | Op::Hadamard(a, b)
        | Op::AddRowBroadcast(a, b)
        | Op::ConcatCols(a, b)
        | Op::MulColBroadcast(a, b) => [Some(*a), Some(*b), None],
        Op::Scale(a, _)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::Tanh(a)
        | Op::Sigmoid(a)
        | Op::SliceRows(a, _)
        | Op::GatherRows(a, _)
        | Op::ScatterAddRows(a, _, _)
        | Op::MeanRows(a)
        | Op::SumAll(a) => [Some(*a), None, None],
        Op::SegmentSoftmax { logits, .. } => [Some(*logits), None, None],
        Op::SegmentMeanRows { a, .. } => [Some(*a), None, None],
        Op::MseLoss { pred, .. } => [Some(*pred), None, None],
        Op::EdgeScaleScatter { a, s, base, .. } => [Some(*a), Some(*s), *base],
        Op::SpmmCsr { a, s, base, .. } => [Some(*a), Some(*s), *base],
        Op::SddmmEdgeLogits { x, p, q, .. } => [Some(*x), Some(*p), Some(*q)],
        Op::CsrSegmentSoftmax { logits, .. } => [Some(*logits), None, None],
    }
}

/// Reverse-mode autodiff tape with arena-style buffer reuse (see the module
/// docs for the reuse contract).
#[derive(Debug, Default, Clone)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Logical length: nodes `0..live` belong to the current iteration,
    /// slots past it are retained buffers from earlier iterations.
    live: usize,
    /// Reusable index-scale scratch (segment reductions in backward).
    scratch: Vec<f32>,
}

/// Zero the gradient buffer of a node (shape-matched to its value) unless it
/// already received gradient this pass.
fn ensure_grad(node: &mut Node) {
    if !node.has_grad {
        let (rows, cols) = node.value.shape();
        node.grad.reset_to_zeros(rows, cols);
        node.has_grad = true;
    }
}

/// Mutably borrow two distinct nodes of the slice.
fn two_mut(nodes: &mut [Node], a: usize, b: usize) -> (&mut Node, &mut Node) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Accumulate `delta` into the gradient of `nodes[idx]`. The first
/// contribution is a plain copy — most tape nodes have exactly one consumer,
/// so skipping the zero-fill-then-add round trip halves gradient traffic.
fn acc_grad(nodes: &mut [Node], idx: usize, delta: &Matrix) {
    let node = &mut nodes[idx];
    if !node.requires_grad {
        return;
    }
    if node.has_grad {
        node.grad.add_assign(delta);
    } else {
        node.grad.copy_from(delta);
        node.has_grad = true;
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Rewind the tape for the next iteration, retaining every node slot and
    /// its value/gradient buffers for reuse.
    ///
    /// All outstanding [`Var`] handles are invalidated (they index the arena
    /// and would alias the next iteration's nodes); values and gradients read
    /// through old handles after a reset are meaningless. Shapes are *not*
    /// retained — the next iteration reshapes each slot as it records.
    pub fn reset(&mut self) {
        self.live = 0;
    }

    /// Record one op: reuse (or create) the slot at `live`, let `compute`
    /// write the forward value into it with read access to all earlier
    /// nodes, and stamp the op.
    fn push_with(&mut self, op: Op, compute: impl FnOnce(&[Node], &mut Matrix)) -> Var {
        if self.live == self.nodes.len() {
            self.nodes.push(Node {
                value: Matrix::zeros(0, 0),
                grad: Matrix::zeros(0, 0),
                has_grad: false,
                requires_grad: true,
                op: Op::Leaf,
            });
        }
        let (prev, rest) = self.nodes.split_at_mut(self.live);
        let node = &mut rest[0];
        compute(prev, &mut node.value);
        debug_assert!(
            !node.value.has_non_finite(),
            "non-finite value produced by {op:?}"
        );
        node.requires_grad = match op_parents(&op) {
            [None, None, None] => true, // leaves are trainable unless opted out
            parents => parents.into_iter().flatten().any(|p| prev[p].requires_grad),
        };
        node.op = op;
        node.has_grad = false;
        let var = Var(self.live);
        self.live += 1;
        var
    }

    /// Record a leaf (input or parameter) value, taking ownership.
    ///
    /// Prefer [`Tape::leaf_copy`] in loops: it copies into the slot's
    /// retained buffer instead of replacing it, so a reset tape re-leafs
    /// without allocating.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push_with(Op::Leaf, move |_, out| *out = value)
    }

    /// Record a leaf by copying into the slot's retained buffer.
    pub fn leaf_copy(&mut self, value: &Matrix) -> Var {
        self.push_with(Op::Leaf, |_, out| out.copy_from(value))
    }

    /// Record a constant leaf that needs no gradient (input features,
    /// attention priors, targets). Backward prunes every computation whose
    /// only consumers are such constants — e.g. the input-feature branch of
    /// the first layer's projection backward.
    pub fn leaf_copy_no_grad(&mut self, value: &Matrix) -> Var {
        let v = self.leaf_copy(value);
        self.nodes[v.0].requires_grad = false;
        v
    }

    /// Borrow the forward value of a tape node.
    pub fn value(&self, v: Var) -> &Matrix {
        debug_assert!(v.0 < self.live, "stale Var used after Tape::reset");
        &self.nodes[v.0].value
    }

    /// Gradient of a tape node after [`Tape::backward`], cloned.
    ///
    /// Returns a zero matrix of the right shape if the node did not receive
    /// any gradient. Hot paths should prefer [`Tape::grad_ref`], which
    /// neither clones nor materialises zeros.
    pub fn grad(&self, v: Var) -> Matrix {
        debug_assert!(v.0 < self.live, "stale Var used after Tape::reset");
        let node = &self.nodes[v.0];
        if node.has_grad {
            node.grad.clone()
        } else {
            Matrix::zeros(node.value.rows(), node.value.cols())
        }
    }

    /// Borrow the gradient of a tape node after [`Tape::backward`], or
    /// `None` if the node received no gradient (equivalent to an all-zero
    /// gradient of the value's shape).
    pub fn grad_ref(&self, v: Var) -> Option<&Matrix> {
        debug_assert!(v.0 < self.live, "stale Var used after Tape::reset");
        let node = &self.nodes[v.0];
        node.has_grad.then_some(&node.grad)
    }

    // -- forward ops --------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.push_with(Op::MatMul(a.0, b.0), |prev, out| {
            prev[a.0].value.matmul_into(&prev[b.0].value, out)
        })
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.push_with(Op::Add(a.0, b.0), |prev, out| {
            out.zip_from(&prev[a.0].value, &prev[b.0].value, |x, y| x + y)
        })
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.push_with(Op::Sub(a.0, b.0), |prev, out| {
            out.zip_from(&prev[a.0].value, &prev[b.0].value, |x, y| x - y)
        })
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        self.push_with(Op::Hadamard(a.0, b.0), |prev, out| {
            out.zip_from(&prev[a.0].value, &prev[b.0].value, |x, y| x * y)
        })
    }

    /// Add a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        self.push_with(Op::AddRowBroadcast(a.0, bias.0), |prev, out| {
            out.copy_from(&prev[a.0].value);
            out.add_row_broadcast_assign(&prev[bias.0].value);
        })
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        self.push_with(Op::Scale(a.0, alpha), |prev, out| {
            out.map_from(&prev[a.0].value, |v| v * alpha)
        })
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        self.push_with(Op::Relu(a.0), |prev, out| {
            out.map_from(&prev[a.0].value, |v| v.max(0.0))
        })
    }

    /// Leaky ReLU activation.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        self.push_with(Op::LeakyRelu(a.0, slope), |prev, out| {
            out.map_from(&prev[a.0].value, |v| if v > 0.0 { v } else { slope * v })
        })
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.push_with(Op::Tanh(a.0), |prev, out| {
            out.map_from(&prev[a.0].value, f32::tanh)
        })
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.push_with(Op::Sigmoid(a.0), |prev, out| {
            out.map_from(&prev[a.0].value, |v| 1.0 / (1.0 + (-v).exp()))
        })
    }

    /// Column concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        self.push_with(Op::ConcatCols(a.0, b.0), |prev, out| {
            let (va, vb) = (&prev[a.0].value, &prev[b.0].value);
            assert_eq!(
                va.rows(),
                vb.rows(),
                "concat_cols requires equal row counts"
            );
            let (ca, cb) = (va.cols(), vb.cols());
            out.resize_for_overwrite(va.rows(), ca + cb);
            for r in 0..va.rows() {
                out.row_mut(r)[..ca].copy_from_slice(va.row(r));
                out.row_mut(r)[ca..].copy_from_slice(vb.row(r));
            }
        })
    }

    /// Contiguous row slice `a[start..end]` (used e.g. to split a stacked
    /// attention vector into its source/destination halves without changing
    /// the parameter layout).
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        assert!(start <= end, "slice_rows range is reversed");
        self.push_with(Op::SliceRows(a.0, start), |prev, out| {
            let va = &prev[a.0].value;
            assert!(end <= va.rows(), "slice_rows range out of bounds");
            let cols = va.cols();
            out.resize_for_overwrite(end - start, cols);
            out.as_mut_slice()
                .copy_from_slice(&va.as_slice()[start * cols..end * cols]);
        })
    }

    /// Gather rows of `a` by index.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        self.gather_rows_shared(a, Arc::from(indices))
    }

    /// [`Tape::gather_rows`] with a shared index slice: recording it on the
    /// tape is a refcount bump, not a copy.
    pub fn gather_rows_shared(&mut self, a: Var, indices: Arc<[usize]>) -> Var {
        self.push_with(Op::GatherRows(a.0, Arc::clone(&indices)), |prev, out| {
            prev[a.0].value.gather_rows_into(&indices, out)
        })
    }

    /// Scatter-add rows of `a` into an `out_rows x cols` matrix.
    pub fn scatter_add_rows(&mut self, a: Var, indices: &[usize], out_rows: usize) -> Var {
        self.scatter_add_rows_shared(a, Arc::from(indices), out_rows)
    }

    /// [`Tape::scatter_add_rows`] with a shared index slice.
    pub fn scatter_add_rows_shared(
        &mut self,
        a: Var,
        indices: Arc<[usize]>,
        out_rows: usize,
    ) -> Var {
        self.push_with(
            Op::ScatterAddRows(a.0, Arc::clone(&indices), out_rows),
            |prev, out| {
                let va = &prev[a.0].value;
                out.reset_to_zeros(out_rows, va.cols());
                va.scatter_add_rows_acc_into(&indices, out);
            },
        )
    }

    /// Segment softmax with constant multiplicative priors.
    ///
    /// `logits` must be an `E x 1` column; `segments[i]` identifies the
    /// softmax group of edge `i` (in ParaGraph: its destination node);
    /// `priors[i] > 0` is a constant prior weight (in ParaGraph: the scaled
    /// edge weight). The result is an `E x 1` column of attention
    /// coefficients that sum to one within each segment.
    pub fn segment_softmax(&mut self, logits: Var, segments: &[usize], priors: &[f32]) -> Var {
        self.segment_softmax_shared(logits, Arc::from(segments), priors)
    }

    /// [`Tape::segment_softmax`] with a shared segment slice.
    pub fn segment_softmax_shared(
        &mut self,
        logits: Var,
        segments: Arc<[usize]>,
        priors: &[f32],
    ) -> Var {
        let seg_count = segments.iter().copied().max().map_or(0, |m| m + 1);
        let op = Op::SegmentSoftmax {
            logits: logits.0,
            segments: Arc::clone(&segments),
            seg_count,
        };
        self.push_with(op, |prev, out| {
            let l = &prev[logits.0].value;
            assert_eq!(l.cols(), 1, "segment_softmax expects an E x 1 logit column");
            assert_eq!(
                l.rows(),
                segments.len(),
                "one segment id per logit required"
            );
            assert_eq!(l.rows(), priors.len(), "one prior per logit required");
            segment_softmax_into(l, &segments, priors, seg_count, out);
        })
    }

    /// Multiply each row of `a` by the corresponding entry of the column
    /// vector `s`.
    pub fn mul_col_broadcast(&mut self, a: Var, s: Var) -> Var {
        self.push_with(Op::MulColBroadcast(a.0, s.0), |prev, out| {
            out.copy_from(&prev[a.0].value);
            out.mul_col_broadcast_assign(&prev[s.0].value);
        })
    }

    /// Column-wise mean over rows (graph readout).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        self.push_with(Op::MeanRows(a.0), |prev, out| {
            let va = &prev[a.0].value;
            out.reset_to_zeros(1, va.cols());
            if va.rows() == 0 {
                return;
            }
            for r in 0..va.rows() {
                for (o, &v) in out.row_mut(0).iter_mut().zip(va.row(r)) {
                    *o += v;
                }
            }
            let scale = 1.0 / va.rows() as f32;
            out.map_inplace(|v| v * scale);
        })
    }

    /// Per-segment column-wise mean: rows `offsets[g]..offsets[g+1]` of `a`
    /// average into output row `g`. `offsets` must be non-decreasing with
    /// `offsets[0] == 0` and `offsets.last() == a.rows()`; empty segments
    /// produce zero rows. The batched-graph readout: one call pools a whole
    /// disjoint union of graphs.
    pub fn segment_mean_rows(&mut self, a: Var, offsets: &[usize]) -> Var {
        self.segment_mean_rows_shared(a, Arc::from(offsets))
    }

    /// [`Tape::segment_mean_rows`] with a shared offset slice.
    pub fn segment_mean_rows_shared(&mut self, a: Var, offsets: Arc<[usize]>) -> Var {
        let op = Op::SegmentMeanRows {
            a: a.0,
            offsets: Arc::clone(&offsets),
        };
        self.push_with(op, |prev, out| {
            let va = &prev[a.0].value;
            assert!(!offsets.is_empty(), "offsets need at least one boundary");
            assert_eq!(offsets[0], 0, "offsets must start at 0");
            assert_eq!(
                *offsets.last().unwrap(),
                va.rows(),
                "offsets must end at the row count"
            );
            let groups = offsets.len() - 1;
            out.reset_to_zeros(groups, va.cols());
            for g in 0..groups {
                let (lo, hi) = (offsets[g], offsets[g + 1]);
                assert!(lo <= hi, "offsets must be non-decreasing");
                if lo == hi {
                    continue;
                }
                for r in lo..hi {
                    for (o, &v) in out.row_mut(g).iter_mut().zip(va.row(r)) {
                        *o += v;
                    }
                }
                let scale = 1.0 / (hi - lo) as f32;
                for o in out.row_mut(g) {
                    *o *= scale;
                }
            }
        })
    }

    /// Fused per-edge message aggregation into an `out_rows x cols` matrix:
    /// `out = base` (zeros when `base` is `None`), then
    /// `out[dst[e]] += s[e] * a[src[e]]`, or `out[dst[e]] += s[e] * a[e]`
    /// when `src` is `None` (rows of `a` already in edge order). `s` must be
    /// an `E x 1` column. Equivalent to `add(base, scatter_add_rows(
    /// mul_col_broadcast(gather_rows(a, src), s), dst))` — same edge
    /// accumulation order, one pass, no intermediates.
    pub fn edge_scale_scatter(
        &mut self,
        a: Var,
        s: Var,
        base: Option<Var>,
        src: Option<Arc<[usize]>>,
        dst: Arc<[usize]>,
        out_rows: usize,
    ) -> Var {
        assert_ne!(a.0, s.0, "messages and scales must be distinct nodes");
        if let Some(base) = base {
            assert_ne!(base.0, a.0, "base must be distinct from the messages");
            assert_ne!(base.0, s.0, "base must be distinct from the scales");
        }
        let op = Op::EdgeScaleScatter {
            a: a.0,
            s: s.0,
            base: base.map(|b| b.0),
            src: src.clone(),
            dst: Arc::clone(&dst),
        };
        self.push_with(op, |prev, out| {
            let va = &prev[a.0].value;
            let vs = &prev[s.0].value;
            assert_eq!(vs.cols(), 1, "edge scales must be an E x 1 column");
            assert_eq!(vs.rows(), dst.len(), "one scale per edge required");
            if let Some(src) = &src {
                assert_eq!(src.len(), dst.len(), "one source per edge required");
            } else {
                assert_eq!(va.rows(), dst.len(), "one row per edge required");
            }
            match base {
                Some(b) => {
                    let vb = &prev[b.0].value;
                    assert_eq!(vb.shape(), (out_rows, va.cols()), "base shape mismatch");
                    out.copy_from(vb);
                }
                None => out.reset_to_zeros(out_rows, va.cols()),
            }
            for (e, &d) in dst.iter().enumerate() {
                let row = match &src {
                    Some(src) => va.row(src[e]),
                    None => va.row(e),
                };
                let scale = vs.get(e, 0);
                for (o, &v) in out.row_mut(d).iter_mut().zip(row) {
                    *o += scale * v;
                }
            }
        })
    }

    /// Sparse × dense aggregation `out = base + A(s) · a` against a shared
    /// CSR pattern (`base = 0` when absent): destination row `d` accumulates
    /// `s[pos] * a[col(pos)]` over its row extent. `s` must be the pattern's
    /// `nnz x 1` value column *in CSR order* (permute per-edge data once with
    /// [`SparseMatrix::permute_to_csr`]).
    ///
    /// Pull-mode equivalent of [`Tape::edge_scale_scatter`]: the CSR build is
    /// stable by destination, so each output row adds the same contributions
    /// in the same order and the two ops agree bit for bit. Backward pulls
    /// `dA/da = Aᵀ·g` through the transpose view — sequential per-source
    /// accumulation instead of a scatter.
    pub fn spmm_csr(&mut self, a: Var, s: Var, base: Option<Var>, adj: &Arc<SparseMatrix>) -> Var {
        assert_ne!(a.0, s.0, "messages and scales must be distinct nodes");
        if let Some(base) = base {
            assert_ne!(base.0, a.0, "base must be distinct from the messages");
            assert_ne!(base.0, s.0, "base must be distinct from the scales");
        }
        let op = Op::SpmmCsr {
            a: a.0,
            s: s.0,
            base: base.map(|b| b.0),
            adj: Arc::clone(adj),
        };
        let adj = Arc::clone(adj);
        self.push_with(op, move |prev, out| {
            let vb = base.map(|b| &prev[b.0].value);
            adj.spmm_into(&prev[s.0].value, &prev[a.0].value, vb, out);
        })
    }

    /// Fused SDDMM-style per-edge attention logits over a CSR pattern:
    /// `out[pos] = x[col(pos)] · p + x[row(pos)] · q`, an `nnz x 1` column in
    /// CSR order. `p` and `q` are `F x 1` contraction vectors (in ParaGraph:
    /// `W·a_src` and `W·a_dst` precontracted once per relation). Only the
    /// stored entries are computed — no `E x F` gathered intermediate, and
    /// the per-destination term `x[d] · q` is hoisted out of each row extent.
    pub fn sddmm_edge_logits(&mut self, x: Var, p: Var, q: Var, adj: &Arc<SparseMatrix>) -> Var {
        assert_ne!(x.0, p.0, "features and contraction vectors must differ");
        assert_ne!(x.0, q.0, "features and contraction vectors must differ");
        assert_ne!(p.0, q.0, "the two contraction vectors must be distinct");
        let op = Op::SddmmEdgeLogits {
            x: x.0,
            p: p.0,
            q: q.0,
            adj: Arc::clone(adj),
        };
        let adj = Arc::clone(adj);
        self.push_with(op, move |prev, out| {
            let vx = &prev[x.0].value;
            let vp = &prev[p.0].value;
            let vq = &prev[q.0].value;
            assert_eq!(vx.rows(), adj.cols(), "one feature row per source");
            assert_eq!(vx.rows(), adj.rows(), "one feature row per destination");
            assert_eq!(vp.shape(), (vx.cols(), 1), "p must be an F x 1 column");
            assert_eq!(vq.shape(), (vx.cols(), 1), "q must be an F x 1 column");
            let (row_ptr, col_idx) = (adj.row_ptr(), adj.col_idx());
            out.resize_for_overwrite(adj.nnz(), 1);
            for d in 0..adj.rows() {
                let (lo, hi) = (row_ptr[d], row_ptr[d + 1]);
                if lo == hi {
                    continue;
                }
                let dst_term = dot(vx.row(d), vq.as_slice());
                for pos in lo..hi {
                    let v = dot(vx.row(col_idx[pos]), vp.as_slice()) + dst_term;
                    out.set(pos, 0, v);
                }
            }
        })
    }

    /// [`Tape::segment_softmax`] re-expressed over CSR row extents: segment
    /// `d` is the contiguous positions `row_ptr[d]..row_ptr[d+1]`, and
    /// `priors` is the constant prior column already in CSR order. Contiguous
    /// segments need no per-segment scratch in either direction.
    pub fn csr_segment_softmax(
        &mut self,
        logits: Var,
        row_ptr: &Arc<[usize]>,
        priors: &[f32],
    ) -> Var {
        let op = Op::CsrSegmentSoftmax {
            logits: logits.0,
            row_ptr: Arc::clone(row_ptr),
        };
        let row_ptr = Arc::clone(row_ptr);
        self.push_with(op, move |prev, out| {
            let l = &prev[logits.0].value;
            assert_eq!(l.cols(), 1, "csr_segment_softmax expects an E x 1 column");
            assert!(!row_ptr.is_empty(), "row_ptr needs at least one boundary");
            assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
            assert_eq!(
                *row_ptr.last().unwrap(),
                l.rows(),
                "row_ptr must end at the logit count"
            );
            assert_eq!(l.rows(), priors.len(), "one prior per logit required");
            let e = l.rows();
            out.resize_for_overwrite(e, 1);
            for d in 0..row_ptr.len() - 1 {
                let (lo, hi) = (row_ptr[d], row_ptr[d + 1]);
                assert!(lo <= hi, "row_ptr must be non-decreasing");
                if lo == hi {
                    continue;
                }
                // Per-row max subtraction, as in `segment_softmax_into`.
                let mut m = f32::NEG_INFINITY;
                for pos in lo..hi {
                    m = m.max(l.get(pos, 0));
                }
                let mut sum = 0.0f32;
                for (pos, &w) in priors.iter().enumerate().take(hi).skip(lo) {
                    let num = w.max(1e-12) * (l.get(pos, 0) - m).exp();
                    out.set(pos, 0, num);
                    sum += num;
                }
                let inv = 1.0 / sum.max(1e-20);
                for pos in lo..hi {
                    out.set(pos, 0, out.get(pos, 0) * inv);
                }
            }
        })
    }

    /// Sum of all elements.
    pub fn sum_all(&mut self, a: Var) -> Var {
        self.push_with(Op::SumAll(a.0), |prev, out| {
            out.reset_to_zeros(1, 1);
            out.set(0, 0, prev[a.0].value.sum());
        })
    }

    /// Mean-squared-error loss against a constant target.
    pub fn mse_loss(&mut self, pred: Var, target: &[f32]) -> Var {
        let op = Op::MseLoss {
            pred: pred.0,
            target: Arc::from(target),
        };
        self.push_with(op, |prev, out| {
            let p = &prev[pred.0].value;
            assert_eq!(p.len(), target.len(), "prediction/target length mismatch");
            let mse = p
                .as_slice()
                .iter()
                .zip(target.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / target.len().max(1) as f32;
            out.reset_to_zeros(1, 1);
            out.set(0, 0, mse);
        })
    }

    // -- backward -----------------------------------------------------------

    /// Run reverse-mode accumulation from `output`, which must be a `1 x 1`
    /// scalar node (typically a loss).
    ///
    /// Gradients accumulate into each node's retained buffer; read them with
    /// [`Tape::grad_ref`] (borrowing) or [`Tape::grad`] (cloning). The walk
    /// is clone-free: ops, values and gradients are accessed through
    /// split borrows of the arena, never copied.
    pub fn backward(&mut self, output: Var) {
        assert!(output.0 < self.live, "stale Var used after Tape::reset");
        assert_eq!(
            self.nodes[output.0].value.shape(),
            (1, 1),
            "backward must start from a scalar node"
        );
        let Tape {
            nodes,
            live,
            scratch,
        } = self;
        // Reset any previous gradients.
        for node in &mut nodes[..*live] {
            node.has_grad = false;
        }
        {
            let node = &mut nodes[output.0];
            node.grad.reset_to_zeros(1, 1);
            node.grad.set(0, 0, 1.0);
            node.has_grad = true;
        }

        for i in (0..=output.0).rev() {
            let (parents, rest) = nodes.split_at_mut(i);
            let node = &rest[0];
            if !node.has_grad {
                continue;
            }
            let g = &node.grad;
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if !parents[a].requires_grad && !parents[b].requires_grad {
                        // Dead branch: both factors are constants.
                    } else if a == b {
                        let Node {
                            value,
                            grad,
                            has_grad,
                            ..
                        } = &mut parents[a];
                        if !*has_grad {
                            grad.reset_to_zeros(value.rows(), value.cols());
                            *has_grad = true;
                        }
                        g.matmul_nt_acc_into(value, grad);
                        value.matmul_tn_acc_into(g, grad);
                    } else {
                        let (na, nb) = two_mut(parents, a, b);
                        if na.requires_grad {
                            if na.has_grad {
                                g.matmul_nt_acc_into(&nb.value, &mut na.grad);
                            } else {
                                g.matmul_nt_into(&nb.value, &mut na.grad);
                                na.has_grad = true;
                            }
                        }
                        if nb.requires_grad {
                            ensure_grad(nb);
                            na.value.matmul_tn_acc_into(g, &mut nb.grad);
                        }
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    acc_grad(parents, a, g);
                    acc_grad(parents, b, g);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    acc_grad(parents, a, g);
                    let nb = &mut parents[b];
                    if !nb.requires_grad {
                    } else if nb.has_grad {
                        nb.grad.axpy(-1.0, g);
                    } else {
                        nb.grad.map_from(g, |v| -v);
                        nb.has_grad = true;
                    }
                }
                Op::Hadamard(a, b) => {
                    let (a, b) = (*a, *b);
                    if a == b {
                        let Node {
                            value,
                            grad,
                            has_grad,
                            ..
                        } = &mut parents[a];
                        if !*has_grad {
                            grad.reset_to_zeros(value.rows(), value.cols());
                            *has_grad = true;
                        }
                        for ((d, &gv), &vv) in grad
                            .as_mut_slice()
                            .iter_mut()
                            .zip(g.as_slice())
                            .zip(value.as_slice())
                        {
                            *d += 2.0 * gv * vv;
                        }
                    } else {
                        let (na, nb) = two_mut(parents, a, b);
                        if na.requires_grad {
                            ensure_grad(na);
                            for ((d, &gv), &vv) in na
                                .grad
                                .as_mut_slice()
                                .iter_mut()
                                .zip(g.as_slice())
                                .zip(nb.value.as_slice())
                            {
                                *d += gv * vv;
                            }
                        }
                        if nb.requires_grad {
                            ensure_grad(nb);
                            for ((d, &gv), &vv) in nb
                                .grad
                                .as_mut_slice()
                                .iter_mut()
                                .zip(g.as_slice())
                                .zip(na.value.as_slice())
                            {
                                *d += gv * vv;
                            }
                        }
                    }
                }
                Op::AddRowBroadcast(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    acc_grad(parents, a, g);
                    let nb = &mut parents[bias];
                    if nb.requires_grad {
                        ensure_grad(nb);
                        for r in 0..g.rows() {
                            for (o, &x) in nb.grad.row_mut(0).iter_mut().zip(g.row(r)) {
                                *o += x;
                            }
                        }
                    }
                }
                Op::Scale(a, alpha) => {
                    let (a, alpha) = (*a, *alpha);
                    let na = &mut parents[a];
                    if !na.requires_grad {
                        // constant input
                    } else if na.has_grad {
                        na.grad.axpy(alpha, g);
                    } else {
                        na.grad.map_from(g, |v| v * alpha);
                        na.has_grad = true;
                    }
                }
                Op::Relu(a) => {
                    let na = &mut parents[*a];
                    let Node {
                        value,
                        grad,
                        has_grad,
                        requires_grad,
                        ..
                    } = na;
                    if !*requires_grad {
                        // constant input
                    } else if *has_grad {
                        for ((d, &gv), &vv) in grad
                            .as_mut_slice()
                            .iter_mut()
                            .zip(g.as_slice())
                            .zip(value.as_slice())
                        {
                            if vv > 0.0 {
                                *d += gv;
                            }
                        }
                    } else {
                        grad.zip_from(g, value, |gv, vv| if vv > 0.0 { gv } else { 0.0 });
                        *has_grad = true;
                    }
                }
                Op::LeakyRelu(a, slope) => {
                    let slope = *slope;
                    let na = &mut parents[*a];
                    let Node {
                        value,
                        grad,
                        has_grad,
                        requires_grad,
                        ..
                    } = na;
                    if !*requires_grad {
                        // constant input
                    } else if *has_grad {
                        for ((d, &gv), &vv) in grad
                            .as_mut_slice()
                            .iter_mut()
                            .zip(g.as_slice())
                            .zip(value.as_slice())
                        {
                            *d += gv * if vv > 0.0 { 1.0 } else { slope };
                        }
                    } else {
                        grad.zip_from(g, value, |gv, vv| gv * if vv > 0.0 { 1.0 } else { slope });
                        *has_grad = true;
                    }
                }
                Op::Tanh(a) => {
                    // Derivative from the op's own output y: 1 - y^2.
                    let y = &node.value;
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        // constant input
                    } else if na.has_grad {
                        for ((d, &gv), &yv) in na
                            .grad
                            .as_mut_slice()
                            .iter_mut()
                            .zip(g.as_slice())
                            .zip(y.as_slice())
                        {
                            *d += gv * (1.0 - yv * yv);
                        }
                    } else {
                        na.grad.zip_from(g, y, |gv, yv| gv * (1.0 - yv * yv));
                        na.has_grad = true;
                    }
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        // constant input
                    } else if na.has_grad {
                        for ((d, &gv), &yv) in na
                            .grad
                            .as_mut_slice()
                            .iter_mut()
                            .zip(g.as_slice())
                            .zip(y.as_slice())
                        {
                            *d += gv * yv * (1.0 - yv);
                        }
                    } else {
                        na.grad.zip_from(g, y, |gv, yv| gv * yv * (1.0 - yv));
                        na.has_grad = true;
                    }
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let a_cols = parents[a].value.cols();
                    {
                        let na = &mut parents[a];
                        if na.requires_grad {
                            ensure_grad(na);
                            for r in 0..g.rows() {
                                for (d, &x) in
                                    na.grad.row_mut(r).iter_mut().zip(&g.row(r)[..a_cols])
                                {
                                    *d += x;
                                }
                            }
                        }
                    }
                    {
                        let nb = &mut parents[b];
                        if nb.requires_grad {
                            ensure_grad(nb);
                            for r in 0..g.rows() {
                                for (d, &x) in
                                    nb.grad.row_mut(r).iter_mut().zip(&g.row(r)[a_cols..])
                                {
                                    *d += x;
                                }
                            }
                        }
                    }
                }
                Op::SliceRows(a, start) => {
                    let (a, start) = (*a, *start);
                    let na = &mut parents[a];
                    if !na.requires_grad {
                        continue;
                    }
                    ensure_grad(na);
                    let cols = na.grad.cols();
                    let dst =
                        &mut na.grad.as_mut_slice()[start * cols..start * cols + g.rows() * cols];
                    for (d, &x) in dst.iter_mut().zip(g.as_slice()) {
                        *d += x;
                    }
                }
                Op::GatherRows(a, indices) => {
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        continue;
                    }
                    ensure_grad(na);
                    g.scatter_add_rows_acc_into(indices, &mut na.grad);
                }
                Op::ScatterAddRows(a, indices, _out_rows) => {
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        // constant input
                    } else if na.has_grad {
                        g.gather_rows_acc_into(indices, &mut na.grad);
                    } else {
                        g.gather_rows_into(indices, &mut na.grad);
                        na.has_grad = true;
                    }
                }
                Op::SegmentSoftmax {
                    logits,
                    segments,
                    seg_count,
                } => {
                    // alpha_i = w_i e^{l_i} / sum_j w_j e^{l_j}  (within segment)
                    // d alpha_i / d l_k = alpha_i (delta_ik - alpha_k)
                    // => dL/dl = alpha ⊙ (g - sum_seg(g ⊙ alpha))
                    if !parents[*logits].requires_grad {
                        continue;
                    }
                    let alpha = &node.value;
                    let e = alpha.rows();
                    scratch.clear();
                    scratch.resize(*seg_count, 0.0);
                    for (k, &seg) in segments.iter().enumerate().take(e) {
                        scratch[seg] += g.get(k, 0) * alpha.get(k, 0);
                    }
                    let nl = &mut parents[*logits];
                    ensure_grad(nl);
                    for k in 0..e {
                        let dot = scratch[segments[k]];
                        let delta = alpha.get(k, 0) * (g.get(k, 0) - dot);
                        nl.grad.set(k, 0, nl.grad.get(k, 0) + delta);
                    }
                }
                Op::MulColBroadcast(a, s) => {
                    let (a, s) = (*a, *s);
                    if a == s {
                        // Only possible for a 1x1 value: y = v*v.
                        let Node {
                            value,
                            grad,
                            has_grad,
                            ..
                        } = &mut parents[a];
                        if !*has_grad {
                            grad.reset_to_zeros(value.rows(), value.cols());
                            *has_grad = true;
                        }
                        for ((d, &gv), &vv) in grad
                            .as_mut_slice()
                            .iter_mut()
                            .zip(g.as_slice())
                            .zip(value.as_slice())
                        {
                            *d += 2.0 * gv * vv;
                        }
                    } else {
                        let (na, ns) = two_mut(parents, a, s);
                        let want_ds = ns.requires_grad;
                        if want_ds {
                            ensure_grad(ns);
                        }
                        let Node {
                            value: a_val,
                            grad: a_grad,
                            has_grad: a_has,
                            requires_grad: a_req,
                            ..
                        } = na;
                        let Node {
                            value: s_val,
                            grad: s_grad,
                            ..
                        } = ns;
                        let want_da = *a_req;
                        let first = want_da && !*a_has;
                        if first {
                            a_grad.resize_for_overwrite(a_val.rows(), a_val.cols());
                            *a_has = true;
                        }
                        for r in 0..a_val.rows() {
                            let scale = s_val.get(r, 0);
                            let mut dot = 0.0f32;
                            if first {
                                for ((d, &gv), &av) in
                                    a_grad.row_mut(r).iter_mut().zip(g.row(r)).zip(a_val.row(r))
                                {
                                    *d = gv * scale;
                                    dot += gv * av;
                                }
                            } else if want_da {
                                for ((d, &gv), &av) in
                                    a_grad.row_mut(r).iter_mut().zip(g.row(r)).zip(a_val.row(r))
                                {
                                    *d += gv * scale;
                                    dot += gv * av;
                                }
                            } else if want_ds {
                                for (&gv, &av) in g.row(r).iter().zip(a_val.row(r)) {
                                    dot += gv * av;
                                }
                            }
                            if want_ds {
                                s_grad.set(r, 0, s_grad.get(r, 0) + dot);
                            }
                        }
                    }
                }
                Op::MeanRows(a) => {
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        continue;
                    }
                    ensure_grad(na);
                    let rows = na.value.rows();
                    let scale = 1.0 / rows.max(1) as f32;
                    for r in 0..rows {
                        for (d, &x) in na.grad.row_mut(r).iter_mut().zip(g.row(0)) {
                            *d += x * scale;
                        }
                    }
                }
                Op::SegmentMeanRows { a, offsets } => {
                    // Contiguous offsets cover every input row exactly once,
                    // so the first contribution can overwrite.
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        continue;
                    }
                    let first = !na.has_grad;
                    if first {
                        let (rows, cols) = na.value.shape();
                        na.grad.resize_for_overwrite(rows, cols);
                        na.has_grad = true;
                    }
                    for gi in 0..offsets.len() - 1 {
                        let (lo, hi) = (offsets[gi], offsets[gi + 1]);
                        if lo == hi {
                            continue;
                        }
                        let scale = 1.0 / (hi - lo) as f32;
                        for r in lo..hi {
                            if first {
                                for (d, &x) in na.grad.row_mut(r).iter_mut().zip(g.row(gi)) {
                                    *d = x * scale;
                                }
                            } else {
                                for (d, &x) in na.grad.row_mut(r).iter_mut().zip(g.row(gi)) {
                                    *d += x * scale;
                                }
                            }
                        }
                    }
                }
                Op::SumAll(a) => {
                    let gv = g.get(0, 0);
                    let na = &mut parents[*a];
                    if !na.requires_grad {
                        continue;
                    }
                    ensure_grad(na);
                    for d in na.grad.as_mut_slice() {
                        *d += gv;
                    }
                }
                Op::EdgeScaleScatter {
                    a,
                    s,
                    base,
                    src,
                    dst,
                } => {
                    if let Some(b) = base {
                        acc_grad(parents, *b, g);
                    }
                    let (a, s) = (*a, *s);
                    let (na, ns) = two_mut(parents, a, s);
                    let want_ds = ns.requires_grad;
                    if want_ds {
                        ensure_grad(ns);
                    }
                    let want_da = na.requires_grad;
                    if want_da {
                        if let Some(src) = src {
                            // Arbitrary sources may repeat: scatter-accumulate.
                            ensure_grad(na);
                            for (e, (&sr, &d)) in src.iter().zip(dst.iter()).enumerate() {
                                let scale = ns.value.get(e, 0);
                                for (o, &gv) in na.grad.row_mut(sr).iter_mut().zip(g.row(d)) {
                                    *o += scale * gv;
                                }
                            }
                        } else {
                            // Edge-ordered rows are written exactly once.
                            let first = !na.has_grad;
                            if first {
                                let (rows, cols) = na.value.shape();
                                na.grad.resize_for_overwrite(rows, cols);
                                na.has_grad = true;
                            }
                            for (e, &d) in dst.iter().enumerate() {
                                let scale = ns.value.get(e, 0);
                                if first {
                                    for (o, &gv) in na.grad.row_mut(e).iter_mut().zip(g.row(d)) {
                                        *o = scale * gv;
                                    }
                                } else {
                                    for (o, &gv) in na.grad.row_mut(e).iter_mut().zip(g.row(d)) {
                                        *o += scale * gv;
                                    }
                                }
                            }
                        }
                    }
                    if want_ds {
                        for (e, &d) in dst.iter().enumerate() {
                            let row = match src {
                                Some(src) => na.value.row(src[e]),
                                None => na.value.row(e),
                            };
                            let dot: f32 = g.row(d).iter().zip(row).map(|(&gv, &av)| gv * av).sum();
                            ns.grad.set(e, 0, ns.grad.get(e, 0) + dot);
                        }
                    }
                }
                Op::SpmmCsr { a, s, base, adj } => {
                    // out[d] = base[d] + Σ_pos s[pos] * a[col(pos)]
                    // d base = g;  d a = Aᵀ(s) · g  (pulled via the
                    // transpose view — per-source, deterministic);
                    // d s[pos] = g[row(pos)] · a[col(pos)].
                    if let Some(b) = base {
                        acc_grad(parents, *b, g);
                    }
                    let (a, s) = (*a, *s);
                    let (na, ns) = two_mut(parents, a, s);
                    let want_ds = ns.requires_grad;
                    if want_ds {
                        ensure_grad(ns);
                    }
                    if na.requires_grad {
                        ensure_grad(na);
                        adj.spmm_transpose_acc_into(&ns.value, g, &mut na.grad);
                    }
                    if want_ds {
                        let (row_ptr, col_idx) = (adj.row_ptr(), adj.col_idx());
                        for d in 0..adj.rows() {
                            let gr = g.row(d);
                            for pos in row_ptr[d]..row_ptr[d + 1] {
                                let dv = dot(gr, na.value.row(col_idx[pos]));
                                ns.grad.set(pos, 0, ns.grad.get(pos, 0) + dv);
                            }
                        }
                    }
                }
                Op::SddmmEdgeLogits { x, p, q, adj } => {
                    // out[pos] = x[col(pos)] · p + x[row(pos)] · q
                    // d x[col(pos)] += g[pos] pᵀ;  d x[row(pos)] += g[pos] qᵀ;
                    // d p += Σ g[pos] x[col(pos)]ᵀ;  d q += Σ g[pos] x[row(pos)]ᵀ.
                    let (x, p, q) = (*x, *p, *q);
                    let (row_ptr, col_idx) = (adj.row_ptr(), adj.col_idx());
                    if parents[x].requires_grad {
                        // Stage p and q in scratch so x's gradient can be
                        // mutated without aliasing its sibling parents.
                        let f = parents[x].value.cols();
                        scratch.clear();
                        scratch.extend_from_slice(parents[p].value.as_slice());
                        scratch.extend_from_slice(parents[q].value.as_slice());
                        let (pv, qv) = scratch.split_at(f);
                        let nx = &mut parents[x];
                        ensure_grad(nx);
                        for d in 0..adj.rows() {
                            let (lo, hi) = (row_ptr[d], row_ptr[d + 1]);
                            for pos in lo..hi {
                                let gv = g.get(pos, 0);
                                for (o, &vv) in nx.grad.row_mut(col_idx[pos]).iter_mut().zip(pv) {
                                    *o += gv * vv;
                                }
                                for (o, &vv) in nx.grad.row_mut(d).iter_mut().zip(qv) {
                                    *o += gv * vv;
                                }
                            }
                        }
                    }
                    if parents[p].requires_grad {
                        let (np, nx) = two_mut(parents, p, x);
                        ensure_grad(np);
                        for d in 0..adj.rows() {
                            for pos in row_ptr[d]..row_ptr[d + 1] {
                                let gv = g.get(pos, 0);
                                for (fi, &xv) in nx.value.row(col_idx[pos]).iter().enumerate() {
                                    np.grad.set(fi, 0, np.grad.get(fi, 0) + gv * xv);
                                }
                            }
                        }
                    }
                    if parents[q].requires_grad {
                        let (nq, nx) = two_mut(parents, q, x);
                        ensure_grad(nq);
                        for d in 0..adj.rows() {
                            let (lo, hi) = (row_ptr[d], row_ptr[d + 1]);
                            if lo == hi {
                                continue;
                            }
                            // Row d's q-term is shared by its whole extent.
                            let gsum: f32 = (lo..hi).map(|pos| g.get(pos, 0)).sum();
                            for (fi, &xv) in nx.value.row(d).iter().enumerate() {
                                nq.grad.set(fi, 0, nq.grad.get(fi, 0) + gsum * xv);
                            }
                        }
                    }
                }
                Op::CsrSegmentSoftmax { logits, row_ptr } => {
                    // Same rule as SegmentSoftmax — dL/dl = alpha ⊙ (g -
                    // sum_seg(g ⊙ alpha)) — but segments are contiguous row
                    // extents, so the per-segment dot needs no scratch.
                    if !parents[*logits].requires_grad {
                        continue;
                    }
                    let alpha = &node.value;
                    let nl = &mut parents[*logits];
                    ensure_grad(nl);
                    for d in 0..row_ptr.len() - 1 {
                        let (lo, hi) = (row_ptr[d], row_ptr[d + 1]);
                        let mut dv = 0.0f32;
                        for pos in lo..hi {
                            dv += g.get(pos, 0) * alpha.get(pos, 0);
                        }
                        for pos in lo..hi {
                            let delta = alpha.get(pos, 0) * (g.get(pos, 0) - dv);
                            nl.grad.set(pos, 0, nl.grad.get(pos, 0) + delta);
                        }
                    }
                }
                Op::MseLoss { pred, target } => {
                    let gv = g.get(0, 0);
                    let n = target.len().max(1) as f32;
                    let np = &mut parents[*pred];
                    if !np.requires_grad {
                        continue;
                    }
                    ensure_grad(np);
                    let Node { value, grad, .. } = np;
                    for ((d, &pv), &tv) in grad
                        .as_mut_slice()
                        .iter_mut()
                        .zip(value.as_slice())
                        .zip(target.iter())
                    {
                        *d += gv * 2.0 * (pv - tv) / n;
                    }
                }
            }
        }
    }
}

/// Forward computation of the segment softmax with priors, written into a
/// reused output buffer. Per-segment max subtraction keeps huge logits (from
/// high trip-count priors or an exploding training step) from overflowing
/// `exp` into `inf`/`NaN`.
fn segment_softmax_into(
    logits: &Matrix,
    segments: &[usize],
    priors: &[f32],
    seg_count: usize,
    out: &mut Matrix,
) {
    let e = logits.rows();
    out.resize_for_overwrite(e, 1);
    if e == 0 {
        return;
    }
    // Per-segment max for numerical stability.
    let mut seg_max = vec![f32::NEG_INFINITY; seg_count];
    for (i, &seg) in segments.iter().enumerate().take(e) {
        seg_max[seg] = seg_max[seg].max(logits.get(i, 0));
    }
    let mut seg_sum = vec![0.0f32; seg_count];
    for i in 0..e {
        let m = seg_max[segments[i]];
        let w = priors[i].max(1e-12);
        let num = w * (logits.get(i, 0) - m).exp();
        out.set(i, 0, num);
        seg_sum[segments[i]] += num;
    }
    for i in 0..e {
        let denom = seg_sum[segments[i]].max(1e-20);
        out.set(i, 0, out.get(i, 0) / denom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically estimate d(loss)/d(x[i][j]) by central differences and
    /// compare against the analytic gradient from the tape.
    fn check_gradient<F>(x: &Matrix, analytic: &Matrix, mut loss_fn: F, tol: f32)
    where
        F: FnMut(&Matrix) -> f32,
    {
        let eps = 1e-3_f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.get(r, c) + eps);
                let mut minus = x.clone();
                minus.set(r, c, x.get(r, c) - eps);
                let numeric = (loss_fn(&plus) - loss_fn(&minus)) / (2.0 * eps);
                let got = analytic.get(r, c);
                assert!(
                    (numeric - got).abs() < tol,
                    "gradient mismatch at ({r},{c}): numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    fn input(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Simple deterministic pseudo-random fill without pulling rand here.
        Matrix::from_fn(rows, cols, |r, c| {
            let v = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * 31 + c * 7) as u64 * 2654435761))
                % 1000;
            (v as f32 / 500.0) - 1.0
        })
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let a0 = input(3, 4, 1);
        let b0 = input(4, 2, 2);
        let loss = |a: &Matrix, b: &Matrix| -> f32 {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vb = t.leaf(b.clone());
            let c = t.matmul(va, vb);
            let s = t.sum_all(c);
            t.value(s).get(0, 0)
        };
        let mut t = Tape::new();
        let va = t.leaf(a0.clone());
        let vb = t.leaf(b0.clone());
        let c = t.matmul(va, vb);
        let s = t.sum_all(c);
        t.backward(s);
        check_gradient(&a0, &t.grad(va), |a| loss(a, &b0), 1e-2);
        check_gradient(&b0, &t.grad(vb), |b| loss(&a0, b), 1e-2);
    }

    #[test]
    fn squared_matmul_gradients_match_finite_differences() {
        // C = A * A exercises the aliased-parent backward path.
        let a0 = input(3, 3, 17);
        let run = |a: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let c = t.matmul(va, va);
            let s = t.sum_all(c);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(va))
        };
        let (_, g) = run(&a0);
        check_gradient(&a0, &g, |a| run(a).0, 2e-2);
    }

    #[test]
    fn activation_gradients_match_finite_differences() {
        let x0 = input(2, 3, 5);
        for act in ["relu", "leaky", "tanh", "sigmoid"] {
            let run = |x: &Matrix| -> (f32, Matrix) {
                let mut t = Tape::new();
                let vx = t.leaf(x.clone());
                let y = match act {
                    "relu" => t.relu(vx),
                    "leaky" => t.leaky_relu(vx, 0.2),
                    "tanh" => t.tanh(vx),
                    _ => t.sigmoid(vx),
                };
                let s = t.sum_all(y);
                t.backward(s);
                (t.value(s).get(0, 0), t.grad(vx))
            };
            let (_, g) = run(&x0);
            check_gradient(&x0, &g, |x| run(x).0, 2e-2);
        }
    }

    #[test]
    fn broadcast_and_concat_gradients() {
        let a0 = input(3, 2, 7);
        let bias0 = input(1, 2, 8);
        let b0 = input(3, 3, 9);
        let run = |a: &Matrix, bias: &Matrix, b: &Matrix| -> (f32, Matrix, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vbias = t.leaf(bias.clone());
            let vb = t.leaf(b.clone());
            let ab = t.add_row_broadcast(va, vbias);
            let cat = t.concat_cols(ab, vb);
            let act = t.tanh(cat);
            let s = t.sum_all(act);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(va), t.grad(vbias), t.grad(vb))
        };
        let (_, ga, gbias, gb) = run(&a0, &bias0, &b0);
        check_gradient(&a0, &ga, |a| run(a, &bias0, &b0).0, 2e-2);
        check_gradient(&bias0, &gbias, |bias| run(&a0, bias, &b0).0, 2e-2);
        check_gradient(&b0, &gb, |b| run(&a0, &bias0, b).0, 2e-2);
    }

    #[test]
    fn gather_scatter_gradients() {
        let x0 = input(4, 3, 11);
        let indices = vec![0usize, 2, 2, 3, 1];
        let dst = vec![1usize, 0, 1, 1, 0];
        let run = |x: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let g = t.gather_rows(vx, &indices);
            let sc = t.scatter_add_rows(g, &dst, 2);
            let act = t.sigmoid(sc);
            let s = t.sum_all(act);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(vx))
        };
        let (_, grad) = run(&x0);
        check_gradient(&x0, &grad, |x| run(x).0, 2e-2);
    }

    #[test]
    fn segment_softmax_is_normalised_per_segment() {
        let logits = Matrix::col_vector(&[0.3, -0.2, 1.5, 0.0, 0.7]);
        let segments = vec![0usize, 0, 1, 1, 1];
        let priors = vec![1.0, 2.0, 1.0, 0.5, 1.0];
        let mut t = Tape::new();
        let vl = t.leaf(logits);
        let alpha = t.segment_softmax(vl, &segments, &priors);
        let a = t.value(alpha);
        let seg0: f32 = a.get(0, 0) + a.get(1, 0);
        let seg1: f32 = a.get(2, 0) + a.get(3, 0) + a.get(4, 0);
        assert!((seg0 - 1.0).abs() < 1e-5);
        assert!((seg1 - 1.0).abs() < 1e-5);
        assert!(a.as_slice().iter().all(|&v| v > 0.0));
        // Larger prior should increase the share for equal logits.
        assert!(a.get(1, 0) > 0.0);
    }

    #[test]
    fn segment_softmax_survives_extreme_logits() {
        // exp(l) overflows f32 for l > ~88; the per-segment max subtraction
        // must keep huge attention logits (high trip-count priors feeding an
        // exploding step) finite and normalised.
        let logits = Matrix::col_vector(&[4000.0, 3999.0, -4000.0, 0.0, 1e4]);
        let segments = vec![0usize, 0, 0, 1, 1];
        let priors = vec![5.0, 1.0, 2.0, 1.0, 3.0];
        let mut t = Tape::new();
        let vl = t.leaf(logits);
        let alpha = t.segment_softmax(vl, &segments, &priors);
        let mix = t.leaf(Matrix::col_vector(&[0.3, -0.4, 1.0, 0.2, -0.9]));
        let weighted = t.hadamard(alpha, mix);
        let s = t.sum_all(weighted);
        t.backward(s);
        let a = t.value(alpha);
        assert!(!a.has_non_finite());
        let seg0: f32 = a.get(0, 0) + a.get(1, 0) + a.get(2, 0);
        let seg1: f32 = a.get(3, 0) + a.get(4, 0);
        assert!((seg0 - 1.0).abs() < 1e-5, "segment 0 sums to {seg0}");
        assert!((seg1 - 1.0).abs() < 1e-5, "segment 1 sums to {seg1}");
        assert!(!t.grad(vl).has_non_finite());
    }

    #[test]
    fn segment_softmax_gradients_match_finite_differences() {
        let logits0 = Matrix::col_vector(&[0.2, -0.4, 0.9, 0.1]);
        let segments = vec![0usize, 0, 1, 1];
        let priors = vec![1.0, 3.0, 0.5, 1.0];
        // Weight the alphas so the loss is not constant (softmax sums to 1).
        let mix = Matrix::col_vector(&[0.7, -1.3, 2.0, 0.4]);
        let run = |l: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vl = t.leaf(l.clone());
            let vmix = t.leaf(mix.clone());
            let alpha = t.segment_softmax(vl, &segments, &priors);
            let weighted = t.hadamard(alpha, vmix);
            let s = t.sum_all(weighted);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(vl))
        };
        let (_, g) = run(&logits0);
        check_gradient(&logits0, &g, |l| run(l).0, 2e-2);
    }

    #[test]
    fn mul_col_broadcast_gradients() {
        let a0 = input(4, 3, 21);
        let s0 = input(4, 1, 22);
        let run = |a: &Matrix, s: &Matrix| -> (f32, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vs = t.leaf(s.clone());
            let prod = t.mul_col_broadcast(va, vs);
            let act = t.tanh(prod);
            let l = t.sum_all(act);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(va), t.grad(vs))
        };
        let (_, ga, gs) = run(&a0, &s0);
        check_gradient(&a0, &ga, |a| run(a, &s0).0, 2e-2);
        check_gradient(&s0, &gs, |s| run(&a0, s).0, 2e-2);
    }

    #[test]
    fn mean_rows_and_mse_gradients() {
        let x0 = input(5, 3, 31);
        let target = vec![0.3f32, -0.2, 0.8];
        let run = |x: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let pooled = t.mean_rows(vx);
            let loss = t.mse_loss(pooled, &target);
            t.backward(loss);
            (t.value(loss).get(0, 0), t.grad(vx))
        };
        let (_, g) = run(&x0);
        check_gradient(&x0, &g, |x| run(x).0, 2e-2);
    }

    #[test]
    fn slice_rows_gradients_match_finite_differences() {
        let x0 = input(6, 3, 61);
        let run = |x: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let top = t.slice_rows(vx, 0, 2);
            let mid = t.slice_rows(vx, 2, 5);
            let act = t.tanh(mid);
            let pooled_top = t.mean_rows(top);
            let pooled_mid = t.mean_rows(act);
            let both = t.concat_cols(pooled_top, pooled_mid);
            let loss = t.mse_loss(both, &[0.1, -0.2, 0.4, 0.0, 0.3, 0.5]);
            t.backward(loss);
            (t.value(loss).get(0, 0), t.grad(vx))
        };
        let (_, g) = run(&x0);
        check_gradient(&x0, &g, |x| run(x).0, 2e-2);
        // Rows outside every slice receive no gradient.
        assert!(g.row(5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn segment_mean_rows_matches_mean_rows_for_one_segment() {
        let x = input(6, 4, 33);
        let mut t = Tape::new();
        let vx = t.leaf(x.clone());
        let whole = t.mean_rows(vx);
        let seg = t.segment_mean_rows(vx, &[0, 6]);
        assert!(t.value(seg).approx_eq(t.value(whole), 0.0));
    }

    #[test]
    fn segment_mean_rows_gradients_match_finite_differences() {
        let x0 = input(7, 3, 35);
        let offsets = vec![0usize, 3, 3, 7]; // includes an empty segment
        let target = vec![0.1f32, -0.5, 0.4, 0.0, 0.2, -0.1, 0.9, 0.3, 0.6];
        let run = |x: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let pooled = t.segment_mean_rows(vx, &offsets);
            let loss = t.mse_loss(pooled, &target);
            t.backward(loss);
            (t.value(loss).get(0, 0), t.grad(vx))
        };
        let (_, g) = run(&x0);
        check_gradient(&x0, &g, |x| run(x).0, 2e-2);
    }

    #[test]
    fn edge_scale_scatter_matches_unfused_chain_and_gradients() {
        let a0 = input(5, 3, 71);
        let s0 = input(6, 1, 72);
        let src: Arc<[usize]> = Arc::from(vec![0usize, 1, 2, 2, 4, 0]);
        let dst: Arc<[usize]> = Arc::from(vec![1usize, 0, 1, 3, 2, 3]);

        // Fused result equals gather -> mul_col -> scatter bit for bit.
        let mut t = Tape::new();
        let va = t.leaf(a0.clone());
        let vs = t.leaf(s0.clone());
        let fused = t.edge_scale_scatter(va, vs, None, Some(Arc::clone(&src)), Arc::clone(&dst), 5);
        let gathered = t.gather_rows_shared(va, Arc::clone(&src));
        let scaled = t.mul_col_broadcast(gathered, vs);
        let unfused = t.scatter_add_rows_shared(scaled, Arc::clone(&dst), 5);
        assert!(t.value(fused).approx_eq(t.value(unfused), 0.0));

        // Gradients for both inputs match finite differences (src given).
        let run = |a: &Matrix, s: &Matrix| -> (f32, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vs = t.leaf(s.clone());
            let out =
                t.edge_scale_scatter(va, vs, None, Some(Arc::clone(&src)), Arc::clone(&dst), 5);
            let act = t.tanh(out);
            let l = t.sum_all(act);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(va), t.grad(vs))
        };
        let (_, ga, gs) = run(&a0, &s0);
        check_gradient(&a0, &ga, |a| run(a, &s0).0, 2e-2);
        check_gradient(&s0, &gs, |s| run(&a0, s).0, 2e-2);

        // Edge-ordered variant (no src): rows of `a` are the edges.
        let a_edges = input(6, 3, 73);
        let run_id = |a: &Matrix, s: &Matrix| -> (f32, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vs = t.leaf(s.clone());
            let out = t.edge_scale_scatter(va, vs, None, None, Arc::clone(&dst), 5);
            let act = t.sigmoid(out);
            let l = t.sum_all(act);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(va), t.grad(vs))
        };
        let (_, ga, gs) = run_id(&a_edges, &s0);
        check_gradient(&a_edges, &ga, |a| run_id(a, &s0).0, 2e-2);
        check_gradient(&s0, &gs, |s| run_id(&a_edges, s).0, 2e-2);
    }

    #[test]
    fn spmm_csr_matches_edge_scale_scatter_bit_for_bit_and_gradients() {
        let a0 = input(5, 3, 81);
        let s_edge = input(6, 1, 82);
        let base0 = input(5, 3, 83);
        let src = vec![0usize, 1, 2, 2, 4, 0];
        let dst = vec![1usize, 0, 1, 3, 2, 3];
        let adj = Arc::new(SparseMatrix::from_edges(5, 5, &src, &dst));
        let s_csr = Matrix::col_vector(&adj.permute_to_csr(s_edge.as_slice()));

        // Stable-by-destination CSR order means the pull-mode product adds
        // each output row's contributions in the push path's order — the
        // results must agree bit for bit, not just within tolerance.
        let mut t = Tape::new();
        let va = t.leaf(a0.clone());
        let vb = t.leaf(base0.clone());
        let vs_push = t.leaf(s_edge.clone());
        let push = t.edge_scale_scatter(
            va,
            vs_push,
            Some(vb),
            Some(Arc::from(&src[..])),
            Arc::from(&dst[..]),
            5,
        );
        let vb2 = t.leaf(base0.clone());
        let vs_pull = t.leaf(s_csr.clone());
        let pull = t.spmm_csr(va, vs_pull, Some(vb2), &adj);
        assert!(t.value(push).approx_eq(t.value(pull), 0.0));

        // Gradients for all three operands match finite differences.
        let run = |a: &Matrix, s: &Matrix, b: &Matrix| -> (f32, Matrix, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vs = t.leaf(s.clone());
            let vb = t.leaf(b.clone());
            let out = t.spmm_csr(va, vs, Some(vb), &adj);
            let act = t.tanh(out);
            let l = t.sum_all(act);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(va), t.grad(vs), t.grad(vb))
        };
        let (_, ga, gs, gb) = run(&a0, &s_csr, &base0);
        check_gradient(&a0, &ga, |a| run(a, &s_csr, &base0).0, 2e-2);
        check_gradient(&s_csr, &gs, |s| run(&a0, s, &base0).0, 2e-2);
        check_gradient(&base0, &gb, |b| run(&a0, &s_csr, b).0, 2e-2);
    }

    #[test]
    fn sddmm_edge_logits_matches_gather_chain_and_gradients() {
        let x0 = input(5, 4, 91);
        let p0 = input(4, 1, 92).scale(0.6);
        let q0 = input(4, 1, 93).scale(0.6);
        let src = vec![0usize, 1, 3, 2, 4, 4];
        let dst = vec![2usize, 2, 0, 4, 1, 2];
        let adj = Arc::new(SparseMatrix::from_edges(5, 5, &src, &dst));

        // Fused logits equal the unfused project-then-gather chain on the
        // same edges (in CSR order).
        let csr_edges = adj.to_edge_list();
        let csr_src: Vec<usize> = csr_edges.iter().map(|&(s, _)| s).collect();
        let csr_dst: Vec<usize> = csr_edges.iter().map(|&(_, d)| d).collect();
        let mut t = Tape::new();
        let vx = t.leaf(x0.clone());
        let vp = t.leaf(p0.clone());
        let vq = t.leaf(q0.clone());
        let fused = t.sddmm_edge_logits(vx, vp, vq, &adj);
        let node_src = t.matmul(vx, vp);
        let node_dst = t.matmul(vx, vq);
        let e_src = t.gather_rows(node_src, &csr_src);
        let e_dst = t.gather_rows(node_dst, &csr_dst);
        let unfused = t.add(e_src, e_dst);
        assert!(
            t.value(fused).approx_eq(t.value(unfused), 1e-6),
            "fused sddmm diverged from the gather chain by {}",
            t.value(fused).max_abs_diff(t.value(unfused))
        );

        let run = |x: &Matrix, p: &Matrix, q: &Matrix| -> (f32, Matrix, Matrix, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let vp = t.leaf(p.clone());
            let vq = t.leaf(q.clone());
            let out = t.sddmm_edge_logits(vx, vp, vq, &adj);
            let act = t.tanh(out);
            let l = t.sum_all(act);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(vx), t.grad(vp), t.grad(vq))
        };
        let (_, gx, gp, gq) = run(&x0, &p0, &q0);
        check_gradient(&x0, &gx, |x| run(x, &p0, &q0).0, 2e-2);
        check_gradient(&p0, &gp, |p| run(&x0, p, &q0).0, 2e-2);
        check_gradient(&q0, &gq, |q| run(&x0, &p0, q).0, 2e-2);
    }

    #[test]
    fn csr_segment_softmax_matches_segment_softmax_and_gradients() {
        let src = vec![0usize, 1, 2, 3, 4, 0, 1];
        let dst = vec![1usize, 1, 0, 4, 1, 4, 0];
        let adj = Arc::new(SparseMatrix::from_edges(5, 5, &src, &dst));
        let priors_edge = vec![1.0f32, 2.0, 0.5, 1.5, 4.0, 1.0, 0.25];
        let priors_csr = adj.permute_to_csr(&priors_edge);
        let logits0 = input(7, 1, 94);
        let logits_csr = Matrix::col_vector(&adj.permute_to_csr(logits0.as_slice()));

        // CSR-extent softmax equals the segment-id softmax on the same
        // groups (segment id = destination, in CSR order).
        let csr_dst: Vec<usize> = adj.to_edge_list().iter().map(|&(_, d)| d).collect();
        let mut t = Tape::new();
        let vl = t.leaf(logits_csr.clone());
        let by_extent = t.csr_segment_softmax(vl, adj.row_ptr(), &priors_csr);
        let by_segment = t.segment_softmax(vl, &csr_dst, &priors_csr);
        assert!(t.value(by_extent).approx_eq(t.value(by_segment), 1e-7));

        let run = |l: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vl = t.leaf(l.clone());
            let alpha = t.csr_segment_softmax(vl, adj.row_ptr(), &priors_csr);
            let act = t.tanh(alpha);
            let s = t.sum_all(act);
            let loss = t.mse_loss(s, &[0.3]);
            t.backward(loss);
            (t.value(loss).get(0, 0), t.grad(vl))
        };
        let (_, gl) = run(&logits_csr);
        check_gradient(&logits_csr, &gl, |l| run(l).0, 2e-2);
    }

    #[test]
    fn spmm_csr_zero_in_edge_rows_are_zero_after_reset() {
        // Iteration 1 fills every output row with large values; after a
        // reset, iteration 2 reuses the same slot buffers for a graph where
        // node 2 has no incoming edges. Its aggregation row must be zero
        // (or exactly the base), never iteration 1's stale contents.
        let mut t = Tape::new();
        let x = Matrix::filled(4, 3, 100.0);
        let ones = Matrix::filled(4, 1, 1.0);

        let dense = Arc::new(SparseMatrix::from_edges(4, 4, &[0, 1, 2, 3], &[1, 2, 3, 0]));
        let va = t.leaf_copy(&x);
        let vs = t.leaf_copy(&ones);
        let out = t.spmm_csr(va, vs, None, &dense);
        assert!(t.value(out).row(2).iter().all(|&v| v == 100.0));

        t.reset();
        // Node 2 is isolated now (zero in-edges); nodes 0, 1, 3 still get one.
        let sparse = Arc::new(SparseMatrix::from_edges(4, 4, &[1, 2, 0], &[0, 1, 3]));
        let small = Matrix::filled(4, 3, 0.5);
        let scale3 = Matrix::filled(3, 1, 1.0);
        let va = t.leaf_copy(&small);
        let vs = t.leaf_copy(&scale3);
        let out = t.spmm_csr(va, vs, None, &sparse);
        assert_eq!(t.value(out).row(2), &[0.0, 0.0, 0.0]);
        assert_eq!(t.value(out).row(0), &[0.5, 0.5, 0.5]);

        // Same for a base-carrying aggregate: the isolated row is exactly
        // the base row, not base plus garbage.
        t.reset();
        let base = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let va = t.leaf_copy(&small);
        let vs = t.leaf_copy(&scale3);
        let vb = t.leaf_copy(&base);
        let out = t.spmm_csr(va, vs, Some(vb), &sparse);
        assert_eq!(t.value(out).row(2), base.row(2));
    }

    #[test]
    fn composite_model_like_graph_gradients() {
        // A miniature RGAT-style pass: gather, project, attention, scatter,
        // readout, MLP, MSE — exercising every op end to end.
        let h0 = input(5, 4, 41);
        let w0 = input(4, 3, 42).scale(0.5);
        let attn0 = input(6, 1, 43).scale(0.3);
        let src = vec![0usize, 1, 2, 3, 4, 0];
        let dst = vec![1usize, 2, 2, 4, 0, 3];
        let priors = vec![1.0f32, 2.0, 0.5, 1.0, 4.0, 1.0];
        let target = vec![0.25f32];

        let run = |h: &Matrix, w: &Matrix, attn: &Matrix| -> (f32, Matrix, Matrix, Matrix) {
            let mut t = Tape::new();
            let vh = t.leaf(h.clone());
            let vw = t.leaf(w.clone());
            let vattn = t.leaf(attn.clone());
            let hs = t.gather_rows(vh, &src);
            let hd = t.gather_rows(vh, &dst);
            let ms = t.matmul(hs, vw);
            let md = t.matmul(hd, vw);
            let cat = t.concat_cols(ms, md);
            let logits_raw = t.matmul(cat, vattn);
            let logits = t.leaky_relu(logits_raw, 0.2);
            let alpha = t.segment_softmax(logits, &dst, &priors);
            let msg = t.mul_col_broadcast(ms, alpha);
            let agg = t.scatter_add_rows(msg, &dst, 5);
            let act = t.relu(agg);
            let pooled = t.mean_rows(act);
            let s = t.sum_all(pooled);
            let loss = t.mse_loss(s, &target);
            t.backward(loss);
            (
                t.value(loss).get(0, 0),
                t.grad(vh),
                t.grad(vw),
                t.grad(vattn),
            )
        };
        let (_, gh, gw, gattn) = run(&h0, &w0, &attn0);
        check_gradient(&h0, &gh, |h| run(h, &w0, &attn0).0, 3e-2);
        check_gradient(&w0, &gw, |w| run(&h0, w, &attn0).0, 3e-2);
        check_gradient(&attn0, &gattn, |a| run(&h0, &w0, a).0, 3e-2);
    }

    #[test]
    fn reset_reuses_slots_and_reproduces_results() {
        // The same computation re-recorded on a reset tape must give the same
        // values and gradients, with the node count identical (slots reused).
        let a0 = input(8, 6, 51);
        let b0 = input(6, 3, 52);
        let target = vec![0.4f32, -0.1, 0.3];
        let mut t = Tape::new();
        let run = |t: &mut Tape, a: &Matrix, b: &Matrix| -> (f32, Matrix, Matrix) {
            t.reset();
            let va = t.leaf_copy(a);
            let vb = t.leaf_copy(b);
            let c = t.matmul(va, vb);
            let act = t.tanh(c);
            let pooled = t.mean_rows(act);
            let loss = t.mse_loss(pooled, &target);
            t.backward(loss);
            (t.value(loss).get(0, 0), t.grad(va), t.grad(vb))
        };
        let (l1, ga1, gb1) = run(&mut t, &a0, &b0);
        let len1 = t.len();
        let (l2, ga2, gb2) = run(&mut t, &a0, &b0);
        assert_eq!(l1, l2);
        assert!(ga1.approx_eq(&ga2, 0.0));
        assert!(gb1.approx_eq(&gb2, 0.0));
        assert_eq!(t.len(), len1);

        // A differently shaped program on the same (reset) tape still works.
        let c0 = input(2, 5, 53);
        t.reset();
        let vc = t.leaf_copy(&c0);
        let s = t.sum_all(vc);
        t.backward(s);
        assert_eq!(t.grad(vc).shape(), c0.shape());
        assert_eq!(t.grad(vc).sum(), c0.len() as f32);
    }

    #[test]
    fn grad_ref_borrows_without_cloning() {
        let mut t = Tape::new();
        let used = t.leaf(Matrix::filled(1, 1, 2.0));
        let unused = t.leaf(Matrix::filled(3, 3, 1.0));
        let s = t.sum_all(used);
        t.backward(s);
        assert!(t.grad_ref(unused).is_none());
        assert_eq!(t.grad_ref(used).unwrap().get(0, 0), 1.0);
        // Before backward nothing has a gradient.
        let mut t2 = Tape::new();
        let v = t2.leaf(Matrix::zeros(2, 2));
        assert!(t2.grad_ref(v).is_none());
    }

    #[test]
    #[should_panic(expected = "scalar node")]
    fn backward_from_non_scalar_panics() {
        let mut t = Tape::new();
        let v = t.leaf(Matrix::zeros(2, 2));
        t.backward(v);
    }

    #[test]
    fn grad_of_unused_leaf_is_zero() {
        let mut t = Tape::new();
        let used = t.leaf(Matrix::filled(1, 1, 2.0));
        let unused = t.leaf(Matrix::filled(3, 3, 1.0));
        let s = t.sum_all(used);
        t.backward(s);
        assert_eq!(t.grad(unused).sum(), 0.0);
        assert_eq!(t.grad(used).get(0, 0), 1.0);
    }
}

#[cfg(test)]
mod segment_softmax_properties {
    //! Property test for the numerical stability of the segment softmax:
    //! `exp` overflows `f32` past ~88, and ParaGraph's high trip-count
    //! priors can push raw attention logits far beyond that during an
    //! unlucky training step. Whatever the segment layout, the max-subtracted
    //! forward and its backward must stay finite and normalised.

    use super::*;
    use proptest::prelude::*;

    /// Deterministic splitmix-style stream so the property draws arbitrary
    /// segment maps and magnitudes from plain integer strategies (the
    /// proptest shim has no collection strategies).
    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_segments_stay_finite_and_normalised(
            seed in 0u64..1_000_000,
            edges in 1u32..48,
            exponent in 0u32..5,
        ) {
            let e = edges as usize;
            let mut next = stream(seed);
            // Logit magnitudes up to 1e4 — far past the exp overflow point.
            let magnitude = 10f32.powi(exponent as i32);
            let seg_count = (next() as usize % e) + 1;
            let segments: Vec<usize> = (0..e).map(|_| next() as usize % seg_count).collect();
            let logits: Vec<f32> = (0..e)
                .map(|_| ((next() % 2001) as f32 / 1000.0 - 1.0) * magnitude)
                .collect();
            let priors: Vec<f32> = (0..e)
                .map(|_| (next() % 1000) as f32 / 100.0 + 0.01)
                .collect();
            let mix: Vec<f32> = (0..e)
                .map(|_| (next() % 2001) as f32 / 1000.0 - 1.0)
                .collect();

            let mut t = Tape::new();
            let vl = t.leaf(Matrix::col_vector(&logits));
            let alpha = t.segment_softmax(vl, &segments, &priors);
            let vmix = t.leaf(Matrix::col_vector(&mix));
            let weighted = t.hadamard(alpha, vmix);
            let s = t.sum_all(weighted);
            t.backward(s);

            let a = t.value(alpha);
            prop_assert!(!a.has_non_finite(), "softmax produced inf/NaN");
            prop_assert!(a.as_slice().iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
            let mut sums = vec![0.0f32; seg_count];
            for (i, &seg) in segments.iter().enumerate() {
                sums[seg] += a.get(i, 0);
            }
            for (seg, &sum) in sums.iter().enumerate() {
                // Segments with no edges keep a zero sum.
                let populated = segments.contains(&seg);
                if populated {
                    prop_assert!(
                        (sum - 1.0).abs() < 1e-4,
                        "segment {seg} sums to {sum}"
                    );
                }
            }
            prop_assert!(!t.grad(vl).has_non_finite(), "backward produced inf/NaN");
        }
    }
}
