//! Reverse-mode automatic differentiation on a per-sample tape.
//!
//! The ParaGraph model builds a fresh computation graph for every program
//! graph (node counts and edge lists differ per sample), so the natural
//! structure is a *tape*: forward operations append nodes, and
//! [`Tape::backward`] walks the tape in reverse accumulating gradients.
//!
//! The op vocabulary is intentionally small — exactly the operations needed
//! by the RGAT layers, the readout and the MLP heads — and every backward
//! rule is validated against finite differences in the test-suite.

use crate::matrix::Matrix;

/// Handle to a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Index of the underlying tape node (mostly useful for debugging).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Operation recorded on the tape. Parent handles are stored by index.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (input or parameter); has no parents.
    Leaf,
    /// `C = A * B` matrix product.
    MatMul(usize, usize),
    /// `C = A + B` (same shapes).
    Add(usize, usize),
    /// `C = A - B` (same shapes).
    Sub(usize, usize),
    /// `C = A ⊙ B` elementwise.
    Hadamard(usize, usize),
    /// `C = A + bias` where `bias` is `1 x cols`, broadcast over rows.
    AddRowBroadcast(usize, usize),
    /// `C = alpha * A`.
    Scale(usize, f32),
    /// Rectified linear unit.
    Relu(usize),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(usize, f32),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// `[A | B]` column concatenation.
    ConcatCols(usize, usize),
    /// Select rows of A by index (rows may repeat).
    GatherRows(usize, Vec<usize>),
    /// `out[idx[i]] += A[i]` into a matrix with `out_rows` rows.
    ScatterAddRows(usize, Vec<usize>, usize),
    /// Per-segment softmax over an `E x 1` logit column with constant
    /// multiplicative priors: `alpha_i = w_i e^{l_i} / sum_seg w_j e^{l_j}`.
    /// The priors are constants, so only the logit handle and the segment
    /// map are needed for the backward pass.
    SegmentSoftmax { logits: usize, segments: Vec<usize> },
    /// Multiply row `i` of A by scalar `s[i]` (`s` is `rows x 1`).
    MulColBroadcast(usize, usize),
    /// Column-wise mean producing a `1 x cols` row vector.
    MeanRows(usize),
    /// Sum of all elements producing a `1 x 1` value.
    SumAll(usize),
    /// Mean squared error against a constant target, producing `1 x 1`.
    MseLoss { pred: usize, target: Vec<f32> },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// Reverse-mode autodiff tape.
#[derive(Debug, Default, Clone)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(
            !value.has_non_finite(),
            "non-finite value produced by {op:?}"
        );
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Record a leaf (input or parameter) value.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Borrow the forward value of a tape node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Borrow the gradient of a tape node after [`Tape::backward`].
    ///
    /// Returns a zero matrix of the right shape if the node did not receive
    /// any gradient.
    pub fn grad(&self, v: Var) -> Matrix {
        let node = &self.nodes[v.0];
        node.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    // -- forward ops --------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a.0, b.0))
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(value, Op::Add(a.0, b.0))
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(value, Op::Sub(a.0, b.0))
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(value, Op::Hadamard(a.0, b.0))
    }

    /// Add a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[bias.0].value);
        self.push(value, Op::AddRowBroadcast(a.0, bias.0))
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.nodes[a.0].value.scale(alpha);
        self.push(value, Op::Scale(a.0, alpha))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| v.max(0.0));
        self.push(value, Op::Relu(a.0))
    }

    /// Leaky ReLU activation.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let value = self.nodes[a.0]
            .value
            .map(|v| if v > 0.0 { v } else { slope * v });
        self.push(value, Op::LeakyRelu(a.0, slope))
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push(value, Op::Tanh(a.0))
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(a.0))
    }

    /// Column concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(value, Op::ConcatCols(a.0, b.0))
    }

    /// Gather rows of `a` by index.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let value = self.nodes[a.0].value.gather_rows(indices);
        self.push(value, Op::GatherRows(a.0, indices.to_vec()))
    }

    /// Scatter-add rows of `a` into an `out_rows x cols` matrix.
    pub fn scatter_add_rows(&mut self, a: Var, indices: &[usize], out_rows: usize) -> Var {
        let value = self.nodes[a.0].value.scatter_add_rows(indices, out_rows);
        self.push(value, Op::ScatterAddRows(a.0, indices.to_vec(), out_rows))
    }

    /// Segment softmax with constant multiplicative priors.
    ///
    /// `logits` must be an `E x 1` column; `segments[i]` identifies the
    /// softmax group of edge `i` (in ParaGraph: its destination node);
    /// `priors[i] > 0` is a constant prior weight (in ParaGraph: the scaled
    /// edge weight). The result is an `E x 1` column of attention
    /// coefficients that sum to one within each segment.
    pub fn segment_softmax(&mut self, logits: Var, segments: &[usize], priors: &[f32]) -> Var {
        let l = &self.nodes[logits.0].value;
        assert_eq!(l.cols(), 1, "segment_softmax expects an E x 1 logit column");
        assert_eq!(
            l.rows(),
            segments.len(),
            "one segment id per logit required"
        );
        assert_eq!(l.rows(), priors.len(), "one prior per logit required");
        let value = segment_softmax_forward(l, segments, priors);
        self.push(
            value,
            Op::SegmentSoftmax {
                logits: logits.0,
                segments: segments.to_vec(),
            },
        )
    }

    /// Multiply each row of `a` by the corresponding entry of the column
    /// vector `s`.
    pub fn mul_col_broadcast(&mut self, a: Var, s: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .mul_col_broadcast(&self.nodes[s.0].value);
        self.push(value, Op::MulColBroadcast(a.0, s.0))
    }

    /// Column-wise mean over rows (graph readout).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.mean_rows();
        self.push(value, Op::MeanRows(a.0))
    }

    /// Sum of all elements.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(value, Op::SumAll(a.0))
    }

    /// Mean-squared-error loss against a constant target.
    pub fn mse_loss(&mut self, pred: Var, target: &[f32]) -> Var {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.len(), target.len(), "prediction/target length mismatch");
        let mse = p
            .as_slice()
            .iter()
            .zip(target.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / target.len().max(1) as f32;
        let value = Matrix::from_vec(1, 1, vec![mse]);
        self.push(
            value,
            Op::MseLoss {
                pred: pred.0,
                target: target.to_vec(),
            },
        )
    }

    // -- backward -----------------------------------------------------------

    fn accumulate(&mut self, idx: usize, delta: &Matrix) {
        let node = &mut self.nodes[idx];
        match &mut node.grad {
            Some(g) => g.add_assign(delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    /// Run reverse-mode accumulation from `output`, which must be a `1 x 1`
    /// scalar node (typically a loss).
    pub fn backward(&mut self, output: Var) {
        assert_eq!(
            self.nodes[output.0].value.shape(),
            (1, 1),
            "backward must start from a scalar node"
        );
        // Reset any previous gradients.
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[output.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..=output.0).rev() {
            let Some(grad_out) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let a_val = self.nodes[a].value.clone();
                    let b_val = self.nodes[b].value.clone();
                    let da = grad_out.matmul(&b_val.transpose());
                    let db = a_val.transpose().matmul(&grad_out);
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, &grad_out);
                    self.accumulate(b, &grad_out);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, &grad_out);
                    self.accumulate(b, &grad_out.scale(-1.0));
                }
                Op::Hadamard(a, b) => {
                    let da = grad_out.hadamard(&self.nodes[b].value);
                    let db = grad_out.hadamard(&self.nodes[a].value);
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.accumulate(a, &grad_out);
                    let db = grad_out.sum_rows();
                    self.accumulate(bias, &db);
                }
                Op::Scale(a, alpha) => {
                    self.accumulate(a, &grad_out.scale(alpha));
                }
                Op::Relu(a) => {
                    let mask = self.nodes[a].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    self.accumulate(a, &grad_out.hadamard(&mask));
                }
                Op::LeakyRelu(a, slope) => {
                    let mask = self.nodes[a]
                        .value
                        .map(|v| if v > 0.0 { 1.0 } else { slope });
                    self.accumulate(a, &grad_out.hadamard(&mask));
                }
                Op::Tanh(a) => {
                    let deriv = self.nodes[i].value.map(|y| 1.0 - y * y);
                    self.accumulate(a, &grad_out.hadamard(&deriv));
                }
                Op::Sigmoid(a) => {
                    let deriv = self.nodes[i].value.map(|y| y * (1.0 - y));
                    self.accumulate(a, &grad_out.hadamard(&deriv));
                }
                Op::ConcatCols(a, b) => {
                    let a_cols = self.nodes[a].value.cols();
                    let rows = grad_out.rows();
                    let mut da = Matrix::zeros(rows, a_cols);
                    let mut db = Matrix::zeros(rows, grad_out.cols() - a_cols);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&grad_out.row(r)[..a_cols]);
                        db.row_mut(r).copy_from_slice(&grad_out.row(r)[a_cols..]);
                    }
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::GatherRows(a, indices) => {
                    let rows = self.nodes[a].value.rows();
                    let da = grad_out.scatter_add_rows(&indices, rows);
                    self.accumulate(a, &da);
                }
                Op::ScatterAddRows(a, indices, _out_rows) => {
                    let da = grad_out.gather_rows(&indices);
                    self.accumulate(a, &da);
                }
                Op::SegmentSoftmax { logits, segments } => {
                    // alpha_i = w_i e^{l_i} / sum_j w_j e^{l_j}  (within segment)
                    // d alpha_i / d l_k = alpha_i (delta_ik - alpha_k)
                    // => dL/dl = alpha ⊙ (g - sum_seg(g ⊙ alpha))
                    let alpha = self.nodes[i].value.clone();
                    let e = alpha.rows();
                    let mut seg_dot: std::collections::HashMap<usize, f32> =
                        std::collections::HashMap::new();
                    for (k, &seg) in segments.iter().enumerate().take(e) {
                        *seg_dot.entry(seg).or_insert(0.0) += grad_out.get(k, 0) * alpha.get(k, 0);
                    }
                    let mut dl = Matrix::zeros(e, 1);
                    for k in 0..e {
                        let dot = seg_dot[&segments[k]];
                        dl.set(k, 0, alpha.get(k, 0) * (grad_out.get(k, 0) - dot));
                    }
                    self.accumulate(logits, &dl);
                }
                Op::MulColBroadcast(a, s) => {
                    let a_val = self.nodes[a].value.clone();
                    let s_val = self.nodes[s].value.clone();
                    let da = grad_out.mul_col_broadcast(&s_val);
                    let mut ds = Matrix::zeros(s_val.rows(), 1);
                    for r in 0..a_val.rows() {
                        let dot: f32 = grad_out
                            .row(r)
                            .iter()
                            .zip(a_val.row(r).iter())
                            .map(|(&g, &av)| g * av)
                            .sum();
                        ds.set(r, 0, dot);
                    }
                    self.accumulate(a, &da);
                    self.accumulate(s, &ds);
                }
                Op::MeanRows(a) => {
                    let rows = self.nodes[a].value.rows().max(1);
                    let scale = 1.0 / rows as f32;
                    let mut da =
                        Matrix::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    for r in 0..da.rows() {
                        for c in 0..da.cols() {
                            da.set(r, c, grad_out.get(0, c) * scale);
                        }
                    }
                    self.accumulate(a, &da);
                }
                Op::SumAll(a) => {
                    let g = grad_out.get(0, 0);
                    let da =
                        Matrix::filled(self.nodes[a].value.rows(), self.nodes[a].value.cols(), g);
                    self.accumulate(a, &da);
                }
                Op::MseLoss { pred, target } => {
                    let g = grad_out.get(0, 0);
                    let p = self.nodes[pred].value.clone();
                    let n = target.len().max(1) as f32;
                    let mut dp = Matrix::zeros(p.rows(), p.cols());
                    for (idx, (&pv, &tv)) in p.as_slice().iter().zip(target.iter()).enumerate() {
                        dp.as_mut_slice()[idx] = g * 2.0 * (pv - tv) / n;
                    }
                    self.accumulate(pred, &dp);
                }
            }
        }
    }
}

/// Forward computation of the segment softmax with priors, shared by the tape
/// op and (potentially) inference-only paths.
fn segment_softmax_forward(logits: &Matrix, segments: &[usize], priors: &[f32]) -> Matrix {
    let e = logits.rows();
    let mut out = Matrix::zeros(e, 1);
    if e == 0 {
        return out;
    }
    // Per-segment max for numerical stability.
    let mut seg_max: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();
    for (i, &seg) in segments.iter().enumerate().take(e) {
        let entry = seg_max.entry(seg).or_insert(f32::NEG_INFINITY);
        *entry = entry.max(logits.get(i, 0));
    }
    let mut seg_sum: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();
    let mut numerators = vec![0.0f32; e];
    for i in 0..e {
        let m = seg_max[&segments[i]];
        let w = priors[i].max(1e-12);
        let num = w * (logits.get(i, 0) - m).exp();
        numerators[i] = num;
        *seg_sum.entry(segments[i]).or_insert(0.0) += num;
    }
    for i in 0..e {
        let denom = seg_sum[&segments[i]].max(1e-20);
        out.set(i, 0, numerators[i] / denom);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically estimate d(loss)/d(x[i][j]) by central differences and
    /// compare against the analytic gradient from the tape.
    fn check_gradient<F>(x: &Matrix, analytic: &Matrix, mut loss_fn: F, tol: f32)
    where
        F: FnMut(&Matrix) -> f32,
    {
        let eps = 1e-3_f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.get(r, c) + eps);
                let mut minus = x.clone();
                minus.set(r, c, x.get(r, c) - eps);
                let numeric = (loss_fn(&plus) - loss_fn(&minus)) / (2.0 * eps);
                let got = analytic.get(r, c);
                assert!(
                    (numeric - got).abs() < tol,
                    "gradient mismatch at ({r},{c}): numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    fn input(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Simple deterministic pseudo-random fill without pulling rand here.
        Matrix::from_fn(rows, cols, |r, c| {
            let v = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * 31 + c * 7) as u64 * 2654435761))
                % 1000;
            (v as f32 / 500.0) - 1.0
        })
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let a0 = input(3, 4, 1);
        let b0 = input(4, 2, 2);
        let loss = |a: &Matrix, b: &Matrix| -> f32 {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vb = t.leaf(b.clone());
            let c = t.matmul(va, vb);
            let s = t.sum_all(c);
            t.value(s).get(0, 0)
        };
        let mut t = Tape::new();
        let va = t.leaf(a0.clone());
        let vb = t.leaf(b0.clone());
        let c = t.matmul(va, vb);
        let s = t.sum_all(c);
        t.backward(s);
        check_gradient(&a0, &t.grad(va), |a| loss(a, &b0), 1e-2);
        check_gradient(&b0, &t.grad(vb), |b| loss(&a0, b), 1e-2);
    }

    #[test]
    fn activation_gradients_match_finite_differences() {
        let x0 = input(2, 3, 5);
        for act in ["relu", "leaky", "tanh", "sigmoid"] {
            let run = |x: &Matrix| -> (f32, Matrix) {
                let mut t = Tape::new();
                let vx = t.leaf(x.clone());
                let y = match act {
                    "relu" => t.relu(vx),
                    "leaky" => t.leaky_relu(vx, 0.2),
                    "tanh" => t.tanh(vx),
                    _ => t.sigmoid(vx),
                };
                let s = t.sum_all(y);
                t.backward(s);
                (t.value(s).get(0, 0), t.grad(vx))
            };
            let (_, g) = run(&x0);
            check_gradient(&x0, &g, |x| run(x).0, 2e-2);
        }
    }

    #[test]
    fn broadcast_and_concat_gradients() {
        let a0 = input(3, 2, 7);
        let bias0 = input(1, 2, 8);
        let b0 = input(3, 3, 9);
        let run = |a: &Matrix, bias: &Matrix, b: &Matrix| -> (f32, Matrix, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vbias = t.leaf(bias.clone());
            let vb = t.leaf(b.clone());
            let ab = t.add_row_broadcast(va, vbias);
            let cat = t.concat_cols(ab, vb);
            let act = t.tanh(cat);
            let s = t.sum_all(act);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(va), t.grad(vbias), t.grad(vb))
        };
        let (_, ga, gbias, gb) = run(&a0, &bias0, &b0);
        check_gradient(&a0, &ga, |a| run(a, &bias0, &b0).0, 2e-2);
        check_gradient(&bias0, &gbias, |bias| run(&a0, bias, &b0).0, 2e-2);
        check_gradient(&b0, &gb, |b| run(&a0, &bias0, b).0, 2e-2);
    }

    #[test]
    fn gather_scatter_gradients() {
        let x0 = input(4, 3, 11);
        let indices = vec![0usize, 2, 2, 3, 1];
        let dst = vec![1usize, 0, 1, 1, 0];
        let run = |x: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let g = t.gather_rows(vx, &indices);
            let sc = t.scatter_add_rows(g, &dst, 2);
            let act = t.sigmoid(sc);
            let s = t.sum_all(act);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(vx))
        };
        let (_, grad) = run(&x0);
        check_gradient(&x0, &grad, |x| run(x).0, 2e-2);
    }

    #[test]
    fn segment_softmax_is_normalised_per_segment() {
        let logits = Matrix::col_vector(&[0.3, -0.2, 1.5, 0.0, 0.7]);
        let segments = vec![0usize, 0, 1, 1, 1];
        let priors = vec![1.0, 2.0, 1.0, 0.5, 1.0];
        let mut t = Tape::new();
        let vl = t.leaf(logits);
        let alpha = t.segment_softmax(vl, &segments, &priors);
        let a = t.value(alpha);
        let seg0: f32 = a.get(0, 0) + a.get(1, 0);
        let seg1: f32 = a.get(2, 0) + a.get(3, 0) + a.get(4, 0);
        assert!((seg0 - 1.0).abs() < 1e-5);
        assert!((seg1 - 1.0).abs() < 1e-5);
        assert!(a.as_slice().iter().all(|&v| v > 0.0));
        // Larger prior should increase the share for equal logits.
        assert!(a.get(1, 0) > 0.0);
    }

    #[test]
    fn segment_softmax_gradients_match_finite_differences() {
        let logits0 = Matrix::col_vector(&[0.2, -0.4, 0.9, 0.1]);
        let segments = vec![0usize, 0, 1, 1];
        let priors = vec![1.0, 3.0, 0.5, 1.0];
        // Weight the alphas so the loss is not constant (softmax sums to 1).
        let mix = Matrix::col_vector(&[0.7, -1.3, 2.0, 0.4]);
        let run = |l: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vl = t.leaf(l.clone());
            let vmix = t.leaf(mix.clone());
            let alpha = t.segment_softmax(vl, &segments, &priors);
            let weighted = t.hadamard(alpha, vmix);
            let s = t.sum_all(weighted);
            t.backward(s);
            (t.value(s).get(0, 0), t.grad(vl))
        };
        let (_, g) = run(&logits0);
        check_gradient(&logits0, &g, |l| run(l).0, 2e-2);
    }

    #[test]
    fn mul_col_broadcast_gradients() {
        let a0 = input(4, 3, 21);
        let s0 = input(4, 1, 22);
        let run = |a: &Matrix, s: &Matrix| -> (f32, Matrix, Matrix) {
            let mut t = Tape::new();
            let va = t.leaf(a.clone());
            let vs = t.leaf(s.clone());
            let prod = t.mul_col_broadcast(va, vs);
            let act = t.tanh(prod);
            let l = t.sum_all(act);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(va), t.grad(vs))
        };
        let (_, ga, gs) = run(&a0, &s0);
        check_gradient(&a0, &ga, |a| run(a, &s0).0, 2e-2);
        check_gradient(&s0, &gs, |s| run(&a0, s).0, 2e-2);
    }

    #[test]
    fn mean_rows_and_mse_gradients() {
        let x0 = input(5, 3, 31);
        let target = vec![0.3f32, -0.2, 0.8];
        let run = |x: &Matrix| -> (f32, Matrix) {
            let mut t = Tape::new();
            let vx = t.leaf(x.clone());
            let pooled = t.mean_rows(vx);
            let loss = t.mse_loss(pooled, &target);
            t.backward(loss);
            (t.value(loss).get(0, 0), t.grad(vx))
        };
        let (_, g) = run(&x0);
        check_gradient(&x0, &g, |x| run(x).0, 2e-2);
    }

    #[test]
    fn composite_model_like_graph_gradients() {
        // A miniature RGAT-style pass: gather, project, attention, scatter,
        // readout, MLP, MSE — exercising every op end to end.
        let h0 = input(5, 4, 41);
        let w0 = input(4, 3, 42).scale(0.5);
        let attn0 = input(6, 1, 43).scale(0.3);
        let src = vec![0usize, 1, 2, 3, 4, 0];
        let dst = vec![1usize, 2, 2, 4, 0, 3];
        let priors = vec![1.0f32, 2.0, 0.5, 1.0, 4.0, 1.0];
        let target = vec![0.25f32];

        let run = |h: &Matrix, w: &Matrix, attn: &Matrix| -> (f32, Matrix, Matrix, Matrix) {
            let mut t = Tape::new();
            let vh = t.leaf(h.clone());
            let vw = t.leaf(w.clone());
            let vattn = t.leaf(attn.clone());
            let hs = t.gather_rows(vh, &src);
            let hd = t.gather_rows(vh, &dst);
            let ms = t.matmul(hs, vw);
            let md = t.matmul(hd, vw);
            let cat = t.concat_cols(ms, md);
            let logits_raw = t.matmul(cat, vattn);
            let logits = t.leaky_relu(logits_raw, 0.2);
            let alpha = t.segment_softmax(logits, &dst, &priors);
            let msg = t.mul_col_broadcast(ms, alpha);
            let agg = t.scatter_add_rows(msg, &dst, 5);
            let act = t.relu(agg);
            let pooled = t.mean_rows(act);
            let s = t.sum_all(pooled);
            let loss = t.mse_loss(s, &target);
            t.backward(loss);
            (
                t.value(loss).get(0, 0),
                t.grad(vh),
                t.grad(vw),
                t.grad(vattn),
            )
        };
        let (_, gh, gw, gattn) = run(&h0, &w0, &attn0);
        check_gradient(&h0, &gh, |h| run(h, &w0, &attn0).0, 3e-2);
        check_gradient(&w0, &gw, |w| run(&h0, w, &attn0).0, 3e-2);
        check_gradient(&attn0, &gattn, |a| run(&h0, &w0, a).0, 3e-2);
    }

    #[test]
    #[should_panic(expected = "scalar node")]
    fn backward_from_non_scalar_panics() {
        let mut t = Tape::new();
        let v = t.leaf(Matrix::zeros(2, 2));
        t.backward(v);
    }

    #[test]
    fn grad_of_unused_leaf_is_zero() {
        let mut t = Tape::new();
        let used = t.leaf(Matrix::filled(1, 1, 2.0));
        let unused = t.leaf(Matrix::filled(3, 3, 1.0));
        let s = t.sum_all(used);
        t.backward(s);
        assert_eq!(t.grad(unused).sum(), 0.0);
        assert_eq!(t.grad(used).get(0, 0), 1.0);
    }
}
