//! # pg-kernels
//!
//! The benchmark applications of the ParaGraph evaluation (Table I): nine
//! applications, seventeen OpenMP kernels, spanning statistics, probability
//! theory, linear algebra, data mining, numerical analysis and medical
//! imaging. Each kernel is a parameterised C source template that the
//! OpenMP-Advisor substitute (`pg-advisor`) instantiates into the six
//! transformation variants at many problem sizes.
//!
//! ```
//! use pg_kernels::{catalog, find_kernel};
//!
//! assert_eq!(catalog().len(), 9);
//! let mm = find_kernel("MM/matmul").unwrap();
//! let src = mm.instantiate(&mm.default_sizes(), "#pragma omp parallel for");
//! assert!(src.contains("#pragma omp parallel for"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod sources;

pub use catalog::{
    all_kernels, catalog, find_kernel, Application, ArraySpec, Domain, Extent, KernelTemplate,
    SizeParam, TransferDirection,
};
