//! Catalogue of the benchmark applications of Table I.
//!
//! Nine applications, seventeen kernels. Every kernel is stored as a
//! parameterised C source template: `{{PRAGMA}}` marks the spot where the
//! OpenMP directive of a variant is inserted and `{{NAME}}` placeholders are
//! replaced by concrete problem sizes. Templates are written in the C subset
//! accepted by [`pg_frontend`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Application domains, as listed in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Statistics (Correlation Coefficient).
    Statistics,
    /// Probability Theory (Covariance).
    ProbabilityTheory,
    /// Linear Algebra (Gauss-Seidel, MM, MV, Transpose).
    LinearAlgebra,
    /// Data Mining (K-nearest neighbours).
    DataMining,
    /// Numerical Analysis (Laplace's equation).
    NumericalAnalysis,
    /// Medical Imaging (Particle Filter).
    MedicalImaging,
}

impl Domain {
    /// Display name used in Table I.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Statistics => "Statistics",
            Domain::ProbabilityTheory => "Probability Theory",
            Domain::LinearAlgebra => "Linear Algebra",
            Domain::DataMining => "Data Mining",
            Domain::NumericalAnalysis => "Numerical Analysis",
            Domain::MedicalImaging => "Medical Imaging",
        }
    }
}

/// Direction of a data transfer for the `_mem` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferDirection {
    /// Host → device (`map(to: ...)`).
    ToDevice,
    /// Device → host (`map(from: ...)`).
    FromDevice,
    /// Both directions (`map(tofrom: ...)`).
    Both,
}

/// Number of elements of an array as a function of the size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// A single size parameter, e.g. `N`.
    Param(&'static str),
    /// Product of two size parameters, e.g. `N * M`.
    Product(&'static str, &'static str),
    /// A fixed element count.
    Fixed(i64),
}

impl Extent {
    /// Evaluate the extent under concrete size bindings.
    pub fn eval(&self, sizes: &HashMap<String, i64>) -> i64 {
        match self {
            Extent::Param(p) => *sizes.get(*p).unwrap_or(&0),
            Extent::Product(a, b) => {
                sizes.get(*a).copied().unwrap_or(0) * sizes.get(*b).copied().unwrap_or(0)
            }
            Extent::Fixed(v) => *v,
        }
    }

    /// Source spelling of the extent (used in `map` array sections).
    pub fn spelling(&self, sizes: &HashMap<String, i64>) -> String {
        self.eval(sizes).to_string()
    }
}

/// One array the kernel reads or writes, for data-transfer modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpec {
    /// Parameter name of the array in the kernel signature.
    pub name: &'static str,
    /// Transfer direction for the `_mem` variants.
    pub direction: TransferDirection,
    /// Element count.
    pub extent: Extent,
    /// Bytes per element (4 for `float`, 8 for `double`).
    pub element_size: usize,
}

impl ArraySpec {
    /// Total bytes transferred for this array under concrete sizes.
    pub fn bytes(&self, sizes: &HashMap<String, i64>) -> u64 {
        (self.extent.eval(sizes).max(0) as u64) * self.element_size as u64
    }
}

/// One size parameter and the values it sweeps over during dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeParam {
    /// Placeholder name (e.g. `N`).
    pub name: &'static str,
    /// Sweep values used when generating the dataset.
    pub sweep: &'static [i64],
}

/// A parameterised kernel template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTemplate {
    /// Application this kernel belongs to (Table I row).
    pub application: &'static str,
    /// Kernel name (unique within the application).
    pub kernel: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// C source template with `{{PRAGMA}}` and `{{SIZE}}` placeholders.
    pub source: &'static str,
    /// Size parameters and their sweeps.
    pub sizes: &'static [SizeParam],
    /// Arrays involved in host↔device transfers.
    pub arrays: &'static [ArraySpec],
    /// Whether the main loop nest has a second, perfectly nested loop that
    /// `collapse(2)` can legally merge.
    pub collapsible: bool,
}

impl KernelTemplate {
    /// Fully qualified name `application/kernel`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.application, self.kernel)
    }

    /// Default size bindings: the middle value of every sweep.
    pub fn default_sizes(&self) -> HashMap<String, i64> {
        self.sizes
            .iter()
            .map(|p| (p.name.to_string(), p.sweep[p.sweep.len() / 2]))
            .collect()
    }

    /// Instantiate the template: substitute concrete sizes and the pragma
    /// line. An empty `pragma` removes the placeholder line entirely
    /// (producing a serial kernel).
    pub fn instantiate(&self, sizes: &HashMap<String, i64>, pragma: &str) -> String {
        let mut out = String::with_capacity(self.source.len() + 128);
        for line in self.source.lines() {
            if line.trim() == "{{PRAGMA}}" {
                if !pragma.is_empty() {
                    let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
                    out.push_str(&indent);
                    out.push_str(pragma);
                    out.push('\n');
                }
                continue;
            }
            out.push_str(line);
            out.push('\n');
        }
        for param in self.sizes {
            let placeholder = format!("{{{{{}}}}}", param.name);
            let value = sizes
                .get(param.name)
                .copied()
                .unwrap_or_else(|| param.sweep[0]);
            out = out.replace(&placeholder, &value.to_string());
        }
        out
    }

    /// Total bytes moved to the device (`map(to:)` + `map(tofrom:)`).
    pub fn bytes_to_device(&self, sizes: &HashMap<String, i64>) -> u64 {
        self.arrays
            .iter()
            .filter(|a| {
                matches!(
                    a.direction,
                    TransferDirection::ToDevice | TransferDirection::Both
                )
            })
            .map(|a| a.bytes(sizes))
            .sum()
    }

    /// Total bytes moved back to the host (`map(from:)` + `map(tofrom:)`).
    pub fn bytes_from_device(&self, sizes: &HashMap<String, i64>) -> u64 {
        self.arrays
            .iter()
            .filter(|a| {
                matches!(
                    a.direction,
                    TransferDirection::FromDevice | TransferDirection::Both
                )
            })
            .map(|a| a.bytes(sizes))
            .sum()
    }

    /// All combinations of sweep values (Cartesian product).
    pub fn size_sweep(&self) -> Vec<HashMap<String, i64>> {
        let mut combos: Vec<HashMap<String, i64>> = vec![HashMap::new()];
        for param in self.sizes {
            let mut next = Vec::with_capacity(combos.len() * param.sweep.len());
            for combo in &combos {
                for &value in param.sweep {
                    let mut c = combo.clone();
                    c.insert(param.name.to_string(), value);
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
    }
}

/// One application: a Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct Application {
    /// Application name.
    pub name: &'static str,
    /// Domain column of Table I.
    pub domain: Domain,
    /// The application's kernels.
    pub kernels: Vec<KernelTemplate>,
}

impl Application {
    /// Number of kernels (the "Num Kernels" column of Table I).
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }
}

/// The full benchmark catalogue (Table I).
pub fn catalog() -> Vec<Application> {
    use crate::sources;
    vec![
        Application {
            name: "Correlation",
            domain: Domain::Statistics,
            kernels: vec![sources::correlation_kernel()],
        },
        Application {
            name: "Covariance",
            domain: Domain::ProbabilityTheory,
            kernels: vec![
                sources::covariance_mean_kernel(),
                sources::covariance_kernel(),
            ],
        },
        Application {
            name: "Gauss Seidel",
            domain: Domain::LinearAlgebra,
            kernels: vec![sources::gauss_seidel_kernel()],
        },
        Application {
            name: "KNN",
            domain: Domain::DataMining,
            kernels: vec![sources::knn_kernel()],
        },
        Application {
            name: "Laplace",
            domain: Domain::NumericalAnalysis,
            kernels: vec![
                sources::laplace_jacobi_kernel(),
                sources::laplace_copy_kernel(),
            ],
        },
        Application {
            name: "MM",
            domain: Domain::LinearAlgebra,
            kernels: vec![sources::matmul_kernel()],
        },
        Application {
            name: "MV",
            domain: Domain::LinearAlgebra,
            kernels: vec![sources::matvec_kernel()],
        },
        Application {
            name: "Transpose",
            domain: Domain::LinearAlgebra,
            kernels: vec![sources::transpose_kernel()],
        },
        Application {
            name: "ParticleFilter",
            domain: Domain::MedicalImaging,
            kernels: vec![
                sources::pf_init_weights_kernel(),
                sources::pf_likelihood_kernel(),
                sources::pf_update_weights_kernel(),
                sources::pf_sum_weights_kernel(),
                sources::pf_normalize_weights_kernel(),
                sources::pf_find_index_kernel(),
                sources::pf_move_particles_kernel(),
            ],
        },
    ]
}

/// All kernels of the catalogue, flattened.
pub fn all_kernels() -> Vec<KernelTemplate> {
    catalog().into_iter().flat_map(|app| app.kernels).collect()
}

/// Look up one kernel by `application/kernel` name.
pub fn find_kernel(full_name: &str) -> Option<KernelTemplate> {
    all_kernels()
        .into_iter()
        .find(|k| k.full_name() == full_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_applications_and_seventeen_kernels() {
        let apps = catalog();
        assert_eq!(apps.len(), 9, "Table I lists nine applications");
        let total: usize = apps.iter().map(Application::kernel_count).sum();
        assert_eq!(total, 17, "Table I lists seventeen kernels in total");
        // Per-application counts from Table I.
        let counts: HashMap<&str, usize> =
            apps.iter().map(|a| (a.name, a.kernel_count())).collect();
        assert_eq!(counts["Correlation"], 1);
        assert_eq!(counts["Covariance"], 2);
        assert_eq!(counts["Gauss Seidel"], 1);
        assert_eq!(counts["KNN"], 1);
        assert_eq!(counts["Laplace"], 2);
        assert_eq!(counts["MM"], 1);
        assert_eq!(counts["MV"], 1);
        assert_eq!(counts["Transpose"], 1);
        assert_eq!(counts["ParticleFilter"], 7);
    }

    #[test]
    fn kernel_names_are_unique() {
        let kernels = all_kernels();
        let mut names: Vec<String> = kernels.iter().map(|k| k.full_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kernels.len());
    }

    #[test]
    fn find_kernel_by_name() {
        assert!(find_kernel("MM/matmul").is_some());
        assert!(find_kernel("ParticleFilter/likelihood").is_some());
        assert!(find_kernel("Nope/missing").is_none());
    }

    #[test]
    fn extent_evaluation() {
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), 10i64);
        sizes.insert("M".to_string(), 20i64);
        assert_eq!(Extent::Param("N").eval(&sizes), 10);
        assert_eq!(Extent::Product("N", "M").eval(&sizes), 200);
        assert_eq!(Extent::Fixed(7).eval(&sizes), 7);
        assert_eq!(Extent::Param("missing").eval(&sizes), 0);
    }

    #[test]
    fn size_sweep_is_cartesian_product() {
        let k = find_kernel("Correlation/correlation").unwrap();
        let combos = k.size_sweep();
        let expected: usize = k.sizes.iter().map(|p| p.sweep.len()).product();
        assert_eq!(combos.len(), expected);
    }

    #[test]
    fn instantiate_replaces_pragma_and_sizes() {
        let k = find_kernel("MM/matmul").unwrap();
        let mut sizes = HashMap::new();
        for p in k.sizes {
            sizes.insert(p.name.to_string(), 64i64);
        }
        let src = k.instantiate(&sizes, "#pragma omp parallel for");
        assert!(src.contains("#pragma omp parallel for"));
        assert!(!src.contains("{{PRAGMA}}"));
        assert!(!src.contains("{{N}}"));
        assert!(src.contains("64"));
        // Empty pragma removes the line.
        let serial = k.instantiate(&sizes, "");
        assert!(!serial.contains("#pragma"));
    }

    #[test]
    fn transfer_byte_accounting() {
        let k = find_kernel("MM/matmul").unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("N".to_string(), 100i64);
        // a and b go to the device (2 * N*N floats), c comes back (N*N floats).
        assert_eq!(k.bytes_to_device(&sizes), 2 * 100 * 100 * 4);
        assert_eq!(k.bytes_from_device(&sizes), 100 * 100 * 4);
    }
}
