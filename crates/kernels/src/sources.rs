//! The seventeen kernel source templates of the nine benchmark applications
//! (Table I of the paper).
//!
//! Every template is written in the C subset understood by `pg_frontend`;
//! `{{PRAGMA}}` marks the insertion point of the OpenMP directive and the
//! upper-case placeholders (`{{N}}`, `{{M}}`, ...) are replaced by concrete
//! problem sizes during variant generation.

use crate::catalog::{ArraySpec, Domain, Extent, KernelTemplate, SizeParam, TransferDirection};

// ---------------------------------------------------------------------------
// Correlation Coefficient (Statistics) — 1 kernel
// ---------------------------------------------------------------------------

/// Correlation-coefficient matrix kernel: `corr[i][j]` over `M` features and
/// `N` observations.
pub fn correlation_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void correlation(float *data, float *mean, float *stddev, float *corr) {
    {{PRAGMA}}
    for (int i = 0; i < {{M}}; i++) {
        for (int j = 0; j < {{M}}; j++) {
            float acc = 0.0;
            for (int k = 0; k < {{N}}; k++) {
                acc += (data[k * {{M}} + i] - mean[i]) * (data[k * {{M}} + j] - mean[j]);
            }
            corr[i * {{M}} + j] = acc / (stddev[i] * stddev[j] * {{N}});
        }
    }
}
"#;
    KernelTemplate {
        application: "Correlation",
        kernel: "correlation",
        domain: Domain::Statistics,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "N",
                sweep: &[256, 512, 1024, 2048, 4096],
            },
            SizeParam {
                name: "M",
                sweep: &[32, 64, 96, 128],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "data",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "M"),
                element_size: 4,
            },
            ArraySpec {
                name: "mean",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("M"),
                element_size: 4,
            },
            ArraySpec {
                name: "stddev",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("M"),
                element_size: 4,
            },
            ArraySpec {
                name: "corr",
                direction: TransferDirection::FromDevice,
                extent: Extent::Product("M", "M"),
                element_size: 4,
            },
        ],
        collapsible: true,
    }
}

// ---------------------------------------------------------------------------
// Covariance (Probability Theory) — 2 kernels
// ---------------------------------------------------------------------------

/// Covariance kernel 1: per-feature mean over `N` observations.
pub fn covariance_mean_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void covariance_mean(float *data, float *mean) {
    {{PRAGMA}}
    for (int j = 0; j < {{M}}; j++) {
        float acc = 0.0;
        for (int k = 0; k < {{N}}; k++) {
            acc += data[k * {{M}} + j];
        }
        mean[j] = acc / {{N}};
    }
}
"#;
    KernelTemplate {
        application: "Covariance",
        kernel: "mean",
        domain: Domain::ProbabilityTheory,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "N",
                sweep: &[1024, 4096, 16384, 65536],
            },
            SizeParam {
                name: "M",
                sweep: &[32, 64, 128],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "data",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "M"),
                element_size: 4,
            },
            ArraySpec {
                name: "mean",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("M"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

/// Covariance kernel 2: the covariance matrix itself.
pub fn covariance_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void covariance(float *data, float *mean, float *cov) {
    {{PRAGMA}}
    for (int i = 0; i < {{M}}; i++) {
        for (int j = 0; j < {{M}}; j++) {
            float acc = 0.0;
            for (int k = 0; k < {{N}}; k++) {
                acc += (data[k * {{M}} + i] - mean[i]) * (data[k * {{M}} + j] - mean[j]);
            }
            cov[i * {{M}} + j] = acc / ({{N}} - 1);
        }
    }
}
"#;
    KernelTemplate {
        application: "Covariance",
        kernel: "covariance",
        domain: Domain::ProbabilityTheory,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "N",
                sweep: &[256, 512, 1024, 2048, 4096],
            },
            SizeParam {
                name: "M",
                sweep: &[32, 64, 96, 128],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "data",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "M"),
                element_size: 4,
            },
            ArraySpec {
                name: "mean",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("M"),
                element_size: 4,
            },
            ArraySpec {
                name: "cov",
                direction: TransferDirection::FromDevice,
                extent: Extent::Product("M", "M"),
                element_size: 4,
            },
        ],
        collapsible: true,
    }
}

// ---------------------------------------------------------------------------
// Gauss-Seidel (Linear Algebra) — 1 kernel
// ---------------------------------------------------------------------------

/// One red-black style Gauss-Seidel sweep over an `N x N` grid.
pub fn gauss_seidel_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void gauss_seidel(float *grid, float *rhs) {
    {{PRAGMA}}
    for (int i = 1; i < {{N}} - 1; i++) {
        for (int j = 1; j < {{N}} - 1; j++) {
            grid[i * {{N}} + j] = 0.25 * (grid[(i - 1) * {{N}} + j] + grid[(i + 1) * {{N}} + j] + grid[i * {{N}} + j - 1] + grid[i * {{N}} + j + 1] - rhs[i * {{N}} + j]);
        }
    }
}
"#;
    KernelTemplate {
        application: "Gauss Seidel",
        kernel: "sweep",
        domain: Domain::LinearAlgebra,
        source: SRC,
        sizes: &[SizeParam {
            name: "N",
            sweep: &[256, 512, 1024, 2048, 4096],
        }],
        arrays: &[
            ArraySpec {
                name: "grid",
                direction: TransferDirection::Both,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
            ArraySpec {
                name: "rhs",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
        ],
        collapsible: true,
    }
}

// ---------------------------------------------------------------------------
// K-nearest neighbours (Data Mining) — 1 kernel
// ---------------------------------------------------------------------------

/// KNN distance kernel: Euclidean distance of every record to the query.
pub fn knn_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void knn_distances(float *records, float *query, float *distances) {
    {{PRAGMA}}
    for (int i = 0; i < {{N}}; i++) {
        float acc = 0.0;
        for (int f = 0; f < {{F}}; f++) {
            float diff = records[i * {{F}} + f] - query[f];
            acc += diff * diff;
        }
        distances[i] = sqrt(acc);
    }
}
"#;
    KernelTemplate {
        application: "KNN",
        kernel: "distances",
        domain: Domain::DataMining,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "N",
                sweep: &[4096, 16384, 65536, 262144, 1048576],
            },
            SizeParam {
                name: "F",
                sweep: &[8, 16, 32, 64],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "records",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "F"),
                element_size: 4,
            },
            ArraySpec {
                name: "query",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("F"),
                element_size: 4,
            },
            ArraySpec {
                name: "distances",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("N"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

// ---------------------------------------------------------------------------
// Laplace's equation (Numerical Analysis) — 2 kernels
// ---------------------------------------------------------------------------

/// Laplace kernel 1: one Jacobi iteration of the finite-difference stencil.
pub fn laplace_jacobi_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void laplace_jacobi(float *u, float *unew) {
    {{PRAGMA}}
    for (int i = 1; i < {{N}} - 1; i++) {
        for (int j = 1; j < {{N}} - 1; j++) {
            unew[i * {{N}} + j] = 0.25 * (u[(i - 1) * {{N}} + j] + u[(i + 1) * {{N}} + j] + u[i * {{N}} + j - 1] + u[i * {{N}} + j + 1]);
        }
    }
}
"#;
    KernelTemplate {
        application: "Laplace",
        kernel: "jacobi",
        domain: Domain::NumericalAnalysis,
        source: SRC,
        sizes: &[SizeParam {
            name: "N",
            sweep: &[256, 512, 1024, 2048, 4096],
        }],
        arrays: &[
            ArraySpec {
                name: "u",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
            ArraySpec {
                name: "unew",
                direction: TransferDirection::FromDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
        ],
        collapsible: true,
    }
}

/// Laplace kernel 2: copy the updated grid back and accumulate the residual.
pub fn laplace_copy_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void laplace_copy(float *u, float *unew, float *residual) {
    {{PRAGMA}}
    for (int i = 0; i < {{T}}; i++) {
        float diff = unew[i] - u[i];
        if (diff < 0.0) {
            diff = -diff;
        }
        residual[i] = diff;
        u[i] = unew[i];
    }
}
"#;
    KernelTemplate {
        application: "Laplace",
        kernel: "copy",
        domain: Domain::NumericalAnalysis,
        source: SRC,
        sizes: &[SizeParam {
            name: "T",
            sweep: &[65536, 262144, 1048576, 4194304, 16777216],
        }],
        arrays: &[
            ArraySpec {
                name: "u",
                direction: TransferDirection::Both,
                extent: Extent::Param("T"),
                element_size: 4,
            },
            ArraySpec {
                name: "unew",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("T"),
                element_size: 4,
            },
            ArraySpec {
                name: "residual",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("T"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

// ---------------------------------------------------------------------------
// Matrix-Matrix multiplication (Linear Algebra) — 1 kernel
// ---------------------------------------------------------------------------

/// Dense `N x N` matrix-matrix multiplication.
pub fn matmul_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void matmul(float *a, float *b, float *c) {
    {{PRAGMA}}
    for (int i = 0; i < {{N}}; i++) {
        for (int j = 0; j < {{N}}; j++) {
            float sum = 0.0;
            for (int k = 0; k < {{N}}; k++) {
                sum += a[i * {{N}} + k] * b[k * {{N}} + j];
            }
            c[i * {{N}} + j] = sum;
        }
    }
}
"#;
    KernelTemplate {
        application: "MM",
        kernel: "matmul",
        domain: Domain::LinearAlgebra,
        source: SRC,
        sizes: &[SizeParam {
            name: "N",
            sweep: &[128, 256, 384, 512, 768, 1024],
        }],
        arrays: &[
            ArraySpec {
                name: "a",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
            ArraySpec {
                name: "b",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
            ArraySpec {
                name: "c",
                direction: TransferDirection::FromDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
        ],
        collapsible: true,
    }
}

// ---------------------------------------------------------------------------
// Matrix-Vector multiplication (Linear Algebra) — 1 kernel
// ---------------------------------------------------------------------------

/// Dense `N x M` matrix-vector multiplication.
pub fn matvec_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void matvec(float *a, float *x, float *y) {
    {{PRAGMA}}
    for (int i = 0; i < {{N}}; i++) {
        float sum = 0.0;
        for (int j = 0; j < {{M}}; j++) {
            sum += a[i * {{M}} + j] * x[j];
        }
        y[i] = sum;
    }
}
"#;
    KernelTemplate {
        application: "MV",
        kernel: "matvec",
        domain: Domain::LinearAlgebra,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "N",
                sweep: &[1024, 2048, 4096, 8192, 16384],
            },
            SizeParam {
                name: "M",
                sweep: &[1024, 2048, 4096],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "a",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "M"),
                element_size: 4,
            },
            ArraySpec {
                name: "x",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("M"),
                element_size: 4,
            },
            ArraySpec {
                name: "y",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("N"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

// ---------------------------------------------------------------------------
// Matrix Transpose (Linear Algebra) — 1 kernel
// ---------------------------------------------------------------------------

/// Out-of-place `N x N` matrix transpose.
pub fn transpose_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void transpose(float *in, float *out) {
    {{PRAGMA}}
    for (int i = 0; i < {{N}}; i++) {
        for (int j = 0; j < {{N}}; j++) {
            out[j * {{N}} + i] = in[i * {{N}} + j];
        }
    }
}
"#;
    KernelTemplate {
        application: "Transpose",
        kernel: "transpose",
        domain: Domain::LinearAlgebra,
        source: SRC,
        sizes: &[SizeParam {
            name: "N",
            sweep: &[512, 1024, 2048, 4096, 8192],
        }],
        arrays: &[
            ArraySpec {
                name: "in",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
            ArraySpec {
                name: "out",
                direction: TransferDirection::FromDevice,
                extent: Extent::Product("N", "N"),
                element_size: 4,
            },
        ],
        collapsible: true,
    }
}

// ---------------------------------------------------------------------------
// Particle Filter (Medical Imaging) — 7 kernels, modelled on the Rodinia
// particle-filter structure.
// ---------------------------------------------------------------------------

/// Particle-filter kernel 1: initialise the particle weights uniformly.
pub fn pf_init_weights_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_init_weights(float *weights) {
    {{PRAGMA}}
    for (int i = 0; i < {{P}}; i++) {
        weights[i] = 1.0 / {{P}};
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "init_weights",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[SizeParam {
            name: "P",
            sweep: &[16384, 65536, 262144, 1048576, 4194304],
        }],
        arrays: &[ArraySpec {
            name: "weights",
            direction: TransferDirection::Both,
            extent: Extent::Param("P"),
            element_size: 4,
        }],
        collapsible: false,
    }
}

/// Particle-filter kernel 2: per-particle likelihood over the observation
/// window.
pub fn pf_likelihood_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_likelihood(float *particles_x, float *particles_y, float *frame, float *likelihood) {
    {{PRAGMA}}
    for (int i = 0; i < {{P}}; i++) {
        float acc = 0.0;
        for (int k = 0; k < {{W}}; k++) {
            int idx = i * {{W}} + k;
            float fg = frame[idx % ({{W}} * 128)] - 100.0;
            float bg = frame[idx % ({{W}} * 128)] - 228.0;
            acc += (fg * fg - bg * bg) / 50.0;
        }
        likelihood[i] = acc / {{W}} + particles_x[i] * 0.0 + particles_y[i] * 0.0;
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "likelihood",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "P",
                sweep: &[16384, 65536, 262144, 1048576],
            },
            SizeParam {
                name: "W",
                sweep: &[16, 32, 64],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "particles_x",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "particles_y",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "frame",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("W", "P"),
                element_size: 4,
            },
            ArraySpec {
                name: "likelihood",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

/// Particle-filter kernel 3: multiply weights by the likelihood.
pub fn pf_update_weights_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_update_weights(float *weights, float *likelihood) {
    {{PRAGMA}}
    for (int i = 0; i < {{P}}; i++) {
        weights[i] = weights[i] * exp(likelihood[i]);
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "update_weights",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[SizeParam {
            name: "P",
            sweep: &[16384, 65536, 262144, 1048576, 4194304],
        }],
        arrays: &[
            ArraySpec {
                name: "weights",
                direction: TransferDirection::Both,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "likelihood",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

/// Particle-filter kernel 4: reduce the weights to their sum (per-block
/// partial sums).
pub fn pf_sum_weights_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_sum_weights(float *weights, float *partial_sums) {
    {{PRAGMA}}
    for (int b = 0; b < {{B}}; b++) {
        float acc = 0.0;
        for (int i = 0; i < {{C}}; i++) {
            acc += weights[b * {{C}} + i];
        }
        partial_sums[b] = acc;
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "sum_weights",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[
            SizeParam {
                name: "B",
                sweep: &[256, 1024, 4096],
            },
            SizeParam {
                name: "C",
                sweep: &[256, 1024, 4096],
            },
        ],
        arrays: &[
            ArraySpec {
                name: "weights",
                direction: TransferDirection::ToDevice,
                extent: Extent::Product("B", "C"),
                element_size: 4,
            },
            ArraySpec {
                name: "partial_sums",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("B"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

/// Particle-filter kernel 5: normalise the weights by the total sum.
pub fn pf_normalize_weights_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_normalize_weights(float *weights, float *sum) {
    {{PRAGMA}}
    for (int i = 0; i < {{P}}; i++) {
        weights[i] = weights[i] / sum[0];
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "normalize_weights",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[SizeParam {
            name: "P",
            sweep: &[16384, 65536, 262144, 1048576, 4194304],
        }],
        arrays: &[
            ArraySpec {
                name: "weights",
                direction: TransferDirection::Both,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "sum",
                direction: TransferDirection::ToDevice,
                extent: Extent::Fixed(1),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

/// Particle-filter kernel 6: systematic resampling — find, for every
/// resampling position, the first particle whose CDF exceeds it.
pub fn pf_find_index_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_find_index(float *cdf, float *u, int *indices) {
    {{PRAGMA}}
    for (int j = 0; j < {{P}}; j++) {
        int found = -1;
        for (int i = 0; i < {{P}}; i++) {
            if (cdf[i] >= u[j]) {
                if (found < 0) {
                    found = i;
                }
            }
        }
        if (found < 0) {
            found = {{P}} - 1;
        }
        indices[j] = found;
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "find_index",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[SizeParam {
            name: "P",
            sweep: &[1024, 2048, 4096, 8192, 16384],
        }],
        arrays: &[
            ArraySpec {
                name: "cdf",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "u",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "indices",
                direction: TransferDirection::FromDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

/// Particle-filter kernel 7: propagate the resampled particles with the
/// motion model.
pub fn pf_move_particles_kernel() -> KernelTemplate {
    const SRC: &str = r#"
void pf_move_particles(float *particles_x, float *particles_y, int *indices, float *noise_x, float *noise_y) {
    {{PRAGMA}}
    for (int i = 0; i < {{P}}; i++) {
        int src = indices[i];
        particles_x[i] = particles_x[src] + 1.0 + 5.0 * noise_x[i];
        particles_y[i] = particles_y[src] - 2.0 + 2.0 * noise_y[i];
    }
}
"#;
    KernelTemplate {
        application: "ParticleFilter",
        kernel: "move_particles",
        domain: Domain::MedicalImaging,
        source: SRC,
        sizes: &[SizeParam {
            name: "P",
            sweep: &[16384, 65536, 262144, 1048576, 4194304],
        }],
        arrays: &[
            ArraySpec {
                name: "particles_x",
                direction: TransferDirection::Both,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "particles_y",
                direction: TransferDirection::Both,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "indices",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "noise_x",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
            ArraySpec {
                name: "noise_y",
                direction: TransferDirection::ToDevice,
                extent: Extent::Param("P"),
                element_size: 4,
            },
        ],
        collapsible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_kernels;
    use pg_frontend::{analysis, parse, AstKind};

    /// Every template must parse (with every placeholder filled in) and
    /// contain at least one canonical for-loop with a computable trip count.
    #[test]
    fn all_templates_parse_and_have_canonical_loops() {
        for kernel in all_kernels() {
            let sizes = kernel.default_sizes();
            let src = kernel.instantiate(&sizes, "#pragma omp parallel for");
            let ast = parse(&src)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}\n{src}", kernel.full_name()));
            ast.validate().unwrap();
            let fors = ast.find_all(AstKind::ForStmt);
            assert!(!fors.is_empty(), "{} has no loops", kernel.full_name());
            let outer = fors[0];
            let tc = analysis::trip_count(&ast, outer, &Default::default());
            assert!(
                tc.is_some() && tc.unwrap() > 0,
                "{}: outer loop trip count not statically computable",
                kernel.full_name()
            );
        }
    }

    /// The `collapsible` flag must agree with the structural analysis of the
    /// instantiated source.
    #[test]
    fn collapsible_flags_match_structure() {
        for kernel in all_kernels() {
            let sizes = kernel.default_sizes();
            let src = kernel.instantiate(&sizes, "");
            let ast = parse(&src).unwrap();
            let outer = ast.find_first(AstKind::ForStmt).unwrap();
            assert_eq!(
                analysis::is_collapsible(&ast, outer),
                kernel.collapsible,
                "{}: collapsible flag does not match loop structure",
                kernel.full_name()
            );
        }
    }

    /// Work must grow with the problem size for every kernel (sanity check of
    /// the templates and the sweeps).
    #[test]
    fn work_scales_with_problem_size() {
        for kernel in all_kernels() {
            let smallest: std::collections::HashMap<String, i64> = kernel
                .sizes
                .iter()
                .map(|p| (p.name.to_string(), p.sweep[0]))
                .collect();
            let largest: std::collections::HashMap<String, i64> = kernel
                .sizes
                .iter()
                .map(|p| (p.name.to_string(), *p.sweep.last().unwrap()))
                .collect();
            let src_small = kernel.instantiate(&smallest, "");
            let src_large = kernel.instantiate(&largest, "");
            let ast_small = parse(&src_small).unwrap();
            let ast_large = parse(&src_large).unwrap();
            let w_small =
                analysis::estimate_work(&ast_small, ast_small.root(), &Default::default());
            let w_large =
                analysis::estimate_work(&ast_large, ast_large.root(), &Default::default());
            assert!(
                w_large.arithmetic_ops() + w_large.memory_ops()
                    > w_small.arithmetic_ops() + w_small.memory_ops(),
                "{}: work does not grow with size",
                kernel.full_name()
            );
        }
    }

    /// Every kernel moves some data to the device and some back.
    #[test]
    fn every_kernel_has_transfers_in_both_directions() {
        for kernel in all_kernels() {
            let sizes = kernel.default_sizes();
            assert!(
                kernel.bytes_to_device(&sizes) > 0,
                "{} transfers nothing to the device",
                kernel.full_name()
            );
            assert!(
                kernel.bytes_from_device(&sizes) > 0,
                "{} transfers nothing back",
                kernel.full_name()
            );
        }
    }

    /// Particle-filter kernels exist in the expected seven flavours.
    #[test]
    fn particle_filter_has_seven_kernels() {
        let names: Vec<String> = all_kernels()
            .into_iter()
            .filter(|k| k.application == "ParticleFilter")
            .map(|k| k.kernel.to_string())
            .collect();
        assert_eq!(names.len(), 7);
        for expected in [
            "init_weights",
            "likelihood",
            "update_weights",
            "sum_weights",
            "normalize_weights",
            "find_index",
            "move_particles",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    /// Instantiating with a GPU pragma and map clauses must still parse.
    #[test]
    fn gpu_mem_instantiation_parses() {
        let kernel = matmul_kernel();
        let sizes = kernel.default_sizes();
        let pragma = "#pragma omp target teams distribute parallel for collapse(2) map(to: a[0:65536], b[0:65536]) map(from: c[0:65536])";
        let src = kernel.instantiate(&sizes, pragma);
        let ast = parse(&src).unwrap();
        assert!(ast
            .find_first(AstKind::OmpTargetTeamsDistributeParallelForDirective)
            .is_some());
    }
}
