//! One labelled sample of the dataset: a kernel variant, the platform it ran
//! on, its launch configuration and its (simulated) runtime.

use paragraph_core::{BuilderConfig, ParaGraph, RelationalGraph, Representation};
use pg_advisor::Variant;
use pg_perfsim::Platform;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One data point of the runtime-prediction dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Unique id within its platform dataset.
    pub id: usize,
    /// Application name (Table I row).
    pub application: String,
    /// Kernel name within the application.
    pub kernel: String,
    /// Transformation variant.
    pub variant: Variant,
    /// Platform the runtime was collected on.
    pub platform: Platform,
    /// Concrete problem sizes.
    pub sizes: HashMap<String, i64>,
    /// Number of teams used for execution (side feature of the model).
    pub teams: u64,
    /// Number of threads used for execution (side feature of the model).
    pub threads: u64,
    /// Measured (simulated) runtime in milliseconds — the label.
    pub runtime_ms: f64,
    /// The kernel's OpenMP C source.
    pub source: String,
}

impl DataPoint {
    /// Fully qualified kernel name.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.application, self.kernel)
    }

    /// Build the graph representation of this data point's kernel.
    ///
    /// The launch configuration stored in the data point is used for the
    /// static-scheduling thread division of the edge weights, exactly as in
    /// the paper's pipeline.
    pub fn build_graph(&self, representation: Representation) -> ParaGraph {
        let ast = pg_frontend::parse(&self.source)
            .expect("data point sources are generated and always parse");
        let config =
            BuilderConfig::for_representation(representation).with_launch(self.teams, self.threads);
        paragraph_core::build(&ast, &config)
    }

    /// Build the GNN-ready relational form of this data point's graph.
    pub fn build_relational(&self, representation: Representation) -> RelationalGraph {
        paragraph_core::to_relational(&self.build_graph(representation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_core::EdgeType;
    use pg_advisor::{instantiate, LaunchConfig};
    use pg_kernels::find_kernel;

    fn sample_point() -> DataPoint {
        let mm = find_kernel("MM/matmul").unwrap();
        let sizes = mm.default_sizes();
        let launch = LaunchConfig {
            teams: 1,
            threads: 8,
        };
        let inst = instantiate(&mm, Variant::Cpu, &sizes, launch);
        DataPoint {
            id: 0,
            application: inst.application.clone(),
            kernel: inst.kernel.clone(),
            variant: inst.variant,
            platform: Platform::SummitPower9,
            sizes: inst.sizes.clone(),
            teams: launch.teams,
            threads: launch.threads,
            runtime_ms: 12.5,
            source: inst.source,
        }
    }

    #[test]
    fn graph_construction_uses_the_stored_launch() {
        let point = sample_point();
        let graph = point.build_graph(Representation::ParaGraph);
        graph.validate().unwrap();
        // N=384 (default middle of the sweep) divided by 8 threads on the
        // outer loop -> maximum child weight is N/8 * N * N? The innermost
        // weight is (N/8) * N * N which is large; just confirm weights exceed 1
        // and the graph has all edge types.
        assert!(graph.stats().max_edge_weight > 1.0);
        assert!(graph.edges_of_type(EdgeType::ForExec).count() > 0);
    }

    #[test]
    fn ablation_representations_differ() {
        let point = sample_point();
        let raw = point.build_graph(Representation::RawAst);
        let full = point.build_graph(Representation::ParaGraph);
        assert!(full.edge_count() > raw.edge_count());
        assert_eq!(raw.stats().max_edge_weight, 1.0);
    }

    #[test]
    fn relational_form_matches_graph() {
        let point = sample_point();
        let graph = point.build_graph(Representation::ParaGraph);
        let rel = point.build_relational(Representation::ParaGraph);
        assert_eq!(rel.node_count, graph.node_count());
        assert_eq!(rel.edge_count(), graph.edge_count());
    }

    #[test]
    fn serialization_round_trip() {
        let point = sample_point();
        let json = serde_json::to_string(&point).unwrap();
        let back: DataPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(point, back);
    }
}
