//! The data-collection pipeline of Figure 3: variant generation → runtime
//! measurement (simulated) → labelled data points, per platform.
//!
//! Since the sharded rewrite, generation is partitioned into deterministic
//! per-kernel [shards](crate::shard) that fan out across threads, route
//! measurement through a shared [`pg_engine::Engine`] (one frontend cache
//! per process, not one parse per instance), and persist completed shards
//! in the [`ShardStore`](crate::store::ShardStore) so interrupted or
//! repeated runs resume instead of recompute. The merge is a stable sort
//! over a total per-point key plus the seeded subsample applied at plan
//! time, so the output is bit-identical to the pre-shard pipeline (kept as
//! [`collect_platform_unsharded`] and test-enforced) regardless of shard
//! completion order.

use crate::datapoint::DataPoint;
use crate::shard::{Shard, ShardPlan};
use crate::stats::PlatformStats;
use crate::store::ShardStore;
use pg_advisor::{generate_instances, GeneratorConfig, KernelInstance, ParallelismBudget};
use pg_engine::{CacheCounters, Engine, FrontendCache, SimulatorBackend};
use pg_kernels::all_kernels;
use pg_perfsim::{measure, NoiseModel, Platform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// How large a dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DatasetScale {
    /// Very small: for unit tests and CI smoke runs.
    Fast,
    /// Medium: the default for `cargo bench` on a laptop-class machine.
    #[default]
    Default,
    /// Approaches the paper's ~26 000-point scale: 29 250 GPU instances
    /// and 5 265 CPU instances per platform (hours of training on a
    /// laptop; use on a larger machine). The counts come from densifying
    /// the `Default` sweep 2× along sizes and launch axes (geometric
    /// midpoints); see `DatasetScale::generator_config`.
    Full,
}

impl DatasetScale {
    /// Read the scale from the `PARAGRAPH_FAST` / `PARAGRAPH_FULL_DATASET`
    /// environment variables, falling back to the default.
    pub fn from_env() -> Self {
        Self::from_vars(
            std::env::var("PARAGRAPH_FAST").ok().as_deref(),
            std::env::var("PARAGRAPH_FULL_DATASET").ok().as_deref(),
        )
    }

    /// Resolve the scale from the raw values of the two environment
    /// variables (`PARAGRAPH_FAST`, `PARAGRAPH_FULL_DATASET`). Pure —
    /// testable without mutating process state, which would race with
    /// parallel tests reading the same variables.
    pub fn from_vars(fast: Option<&str>, full: Option<&str>) -> Self {
        if fast.is_some_and(|v| v != "0") {
            DatasetScale::Fast
        } else if full.is_some_and(|v| v != "0") {
            DatasetScale::Full
        } else {
            DatasetScale::Default
        }
    }

    /// The generator configuration of each scale.
    ///
    /// `Full` used to silently reuse `GeneratorConfig::default()` — the
    /// same sweep as `Default` scale, whose GPU platforms top out at 3 960
    /// instances — while claiming to approach the paper's Table II counts.
    /// It now densifies the size sweeps and the launch axes 2× each
    /// (geometric midpoints; see [`GeneratorConfig::size_densify`]),
    /// producing **29 250 GPU** and **5 265 CPU** instances per platform
    /// against the paper's ~26 000 GPU / ~13 000–17 700 CPU — the GPU
    /// datasets (the ones every model in the paper trains on) land at
    /// paper scale, the CPU datasets at roughly a third (two CPU variants
    /// vs four GPU variants, and a single socket's worth of thread
    /// sweeps, bound the CPU combinatorics).
    fn generator_config(self) -> GeneratorConfig {
        match self {
            DatasetScale::Fast => GeneratorConfig {
                size_stride: 4,
                launch_stride: 3,
                ..GeneratorConfig::default()
            },
            DatasetScale::Default => GeneratorConfig::default(),
            DatasetScale::Full => GeneratorConfig {
                size_densify: 2,
                launch_densify: 2,
                ..GeneratorConfig::default()
            },
        }
    }

    /// Maximum number of points kept per platform (deterministic subsample).
    pub(crate) fn max_points(self) -> usize {
        match self {
            DatasetScale::Fast => 220,
            DatasetScale::Default => 1100,
            DatasetScale::Full => usize::MAX,
        }
    }
}

/// Configuration of a dataset-generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Seed for measurement noise and subsampling.
    pub seed: u64,
    /// Noise level (log-normal sigma) of the simulated measurements.
    pub noise_sigma: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Default,
            seed: 42,
            noise_sigma: 0.04,
        }
    }
}

/// The labelled dataset collected on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformDataset {
    /// Platform the runtimes were collected on.
    pub platform: Platform,
    /// All labelled data points.
    pub points: Vec<DataPoint>,
}

impl PlatformDataset {
    /// Number of data points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runtime labels in milliseconds.
    pub fn runtimes(&self) -> Vec<f32> {
        self.points.iter().map(|p| p.runtime_ms as f32).collect()
    }

    /// Table II statistics for this platform.
    pub fn stats(&self) -> PlatformStats {
        PlatformStats::from_dataset(self)
    }

    /// Deterministic train/validation split with the paper's 9:1 ratio.
    /// Returns `(train_indices, validation_indices)`.
    pub fn split(&self, seed: u64) -> (Vec<usize>, Vec<usize>) {
        self.split_with_ratio(seed, 0.9)
    }

    /// Deterministic split with an arbitrary train fraction.
    pub fn split_with_ratio(&self, seed: u64, train_fraction: f64) -> (Vec<usize>, Vec<usize>) {
        let mut indices: Vec<usize> = (0..self.points.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let train_len = ((self.points.len() as f64) * train_fraction).round() as usize;
        let train_len = train_len.min(self.points.len());
        let train = indices[..train_len].to_vec();
        let val = indices[train_len..].to_vec();
        (train, val)
    }
}

/// The launch-configuration budget matching a platform's hardware.
pub fn budget_for(platform: Platform) -> ParallelismBudget {
    match platform {
        Platform::SummitPower9 => ParallelismBudget::for_cpu_cores(22),
        Platform::CoronaEpyc7401 => ParallelismBudget::for_cpu_cores(24),
        Platform::SummitV100 => ParallelismBudget::for_gpu(80),
        Platform::CoronaMi50 => ParallelismBudget::for_gpu(60),
    }
}

/// Generate the kernel instances that run on a given platform: CPU platforms
/// execute the `cpu*` variants, GPU platforms the `gpu*` variants.
pub fn instances_for(platform: Platform, scale: DatasetScale) -> Vec<KernelInstance> {
    let kernels = all_kernels();
    let budget = budget_for(platform);
    let config = GeneratorConfig {
        include_cpu: !platform.is_gpu(),
        include_gpu: platform.is_gpu(),
        ..scale.generator_config()
    };
    generate_instances(&kernels, &budget, &config)
}

/// What one sharded generation run did: shard-store effectiveness, frontend
/// cache activity and wall time — the "run summary" of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationSummary {
    /// Platform generated for.
    pub platform: Platform,
    /// Shards the run was partitioned into.
    pub shards_total: usize,
    /// Shards served from the store (resumed, not recomputed).
    pub shard_hits: usize,
    /// Shards that had to be measured this run.
    pub shard_misses: usize,
    /// Instances actually measured (in missed shards only).
    pub instances_measured: usize,
    /// Labelled points in the merged dataset.
    pub points: usize,
    /// Frontend-cache activity of the measured shards.
    pub cache: CacheCounters,
    /// Wall-clock time of the run in milliseconds.
    pub wall_ms: f64,
}

impl std::fmt::Display for GenerationSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} points from {} shards ({} store hits, {} measured: {} instances; \
             frontend cache {} hits / {} misses) in {:.0} ms",
            self.platform.name(),
            self.points,
            self.shards_total,
            self.shard_hits,
            self.shard_misses,
            self.instances_measured,
            self.cache.hits,
            self.cache.misses,
            self.wall_ms
        )
    }
}

/// A merged dataset plus the summary of the run that produced it.
#[derive(Debug, Clone)]
pub struct GenerationOutcome {
    /// The merged per-platform dataset.
    pub dataset: PlatformDataset,
    /// What the run did (shard hits, cache activity, wall time).
    pub summary: GenerationSummary,
}

/// Merge completed shards' points into the final dataset: stable sort over
/// a total per-point key, then dense id assignment. Because the key is
/// unique per point (instance descriptions are unique) the result is
/// independent of shard completion order and of how points were batched.
pub fn merge_shard_points(platform: Platform, mut points: Vec<DataPoint>) -> PlatformDataset {
    // HashMap iteration order is not deterministic, so the size component
    // of the key is built from sorted pairs. The key allocates (name
    // strings + size pairs), so it is computed once per point via
    // `sort_by_cached_key` instead of twice per comparison.
    points.sort_by_cached_key(|p| {
        let mut pairs: Vec<(String, i64)> = p.sizes.iter().map(|(k, v)| (k.clone(), *v)).collect();
        pairs.sort();
        (p.full_name(), p.variant.name(), p.teams, p.threads, pairs)
    });
    for (i, p) in points.iter_mut().enumerate() {
        p.id = i;
    }
    PlatformDataset { platform, points }
}

/// The engine a generation run measures through: the run's platform, the
/// noisy simulator backend (bit-identical to [`pg_perfsim::measure`]) and a
/// frontend cache — shared across shards, and across platforms when the
/// caller passes the same handle to several runs.
fn measurement_engine(
    platform: Platform,
    config: &PipelineConfig,
    cache: Arc<FrontendCache>,
) -> Engine {
    Engine::builder()
        .platform(platform)
        .backend(SimulatorBackend::new(NoiseModel {
            sigma: config.noise_sigma,
            seed: config.seed,
        }))
        .shared_cache(cache)
        .build()
}

/// Capacity of the per-run frontend cache, deliberately far below a
/// `Full`-scale sweep's distinct-source count. Instance sources embed
/// their launch pragma, so within one platform run every source is parsed
/// at most once no matter what the cache holds — LRU churn costs nothing
/// here. The capacity only bounds how much *cross-run* reuse (a second
/// platform sharing CPU sources, warm advise traffic on the same cache)
/// can hit, and bounding it keeps a 29k-instance `Full` run from pinning
/// tens of thousands of ASTs in memory for a ~30 µs-per-parse saving.
const GENERATION_CACHE_CAPACITY: usize = 512;

/// Sharded generation for one platform: plan deterministic per-kernel
/// shards, serve completed ones from `store`, measure the rest through a
/// shared engine (rayon fan-out across shards), persist them, and merge.
///
/// The merged dataset is bit-identical to [`collect_platform_unsharded`]
/// for the same configuration, regardless of which shards were resumed.
pub fn generate_platform(
    platform: Platform,
    config: &PipelineConfig,
    store: &ShardStore,
) -> GenerationOutcome {
    let cache = Arc::new(FrontendCache::new(GENERATION_CACHE_CAPACITY));
    generate_platform_with_cache(platform, config, store, cache)
}

/// [`generate_platform`] over a caller-supplied frontend cache, so several
/// runs (one per platform, say) parse each kernel source once per process.
pub fn generate_platform_with_cache(
    platform: Platform,
    config: &PipelineConfig,
    store: &ShardStore,
    cache: Arc<FrontendCache>,
) -> GenerationOutcome {
    let started = Instant::now();
    let plan = ShardPlan::plan(platform, config);
    let shards_total = plan.shards.len();
    let engine = measurement_engine(platform, config, cache);

    // Fan shards out across threads. Each shard is either resumed from the
    // store or measured through the shared engine and persisted. Only
    // labels hit the disk; points materialize from the in-memory plan.
    let results: Vec<(bool, usize, Vec<DataPoint>, CacheCounters)> = plan
        .shards
        .par_iter()
        .map(|shard: &Shard| {
            if let Some(labels) = store.load(shard) {
                (true, 0, shard.points(&labels), CacheCounters::default())
            } else {
                let (labels, cache_delta) = shard.measure(&engine);
                store.save(shard, &labels);
                (
                    false,
                    shard.instances.len(),
                    shard.points(&labels),
                    cache_delta,
                )
            }
        })
        .collect();

    let mut shard_hits = 0;
    let mut instances_measured = 0;
    let mut cache_totals = CacheCounters::default();
    let mut points = Vec::with_capacity(plan.instance_count());
    for (hit, measured, shard_points, cache_delta) in results {
        shard_hits += usize::from(hit);
        instances_measured += measured;
        cache_totals.hits += cache_delta.hits;
        cache_totals.misses += cache_delta.misses;
        points.extend(shard_points);
    }
    let dataset = merge_shard_points(platform, points);
    let summary = GenerationSummary {
        platform,
        shards_total,
        shard_hits,
        shard_misses: shards_total - shard_hits,
        instances_measured,
        points: dataset.len(),
        cache: cache_totals,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    };
    GenerationOutcome { dataset, summary }
}

/// Run the full pipeline for one platform: generate variants, "measure" each
/// one on the simulator, and return the labelled dataset.
///
/// This is the sharded, store-backed path ([`generate_platform`] against
/// the workspace-default [`ShardStore`]); a second run over the same
/// configuration resumes from the store instead of recomputing.
pub fn collect_platform(platform: Platform, config: &PipelineConfig) -> PlatformDataset {
    generate_platform(platform, config, &ShardStore::default_location()).dataset
}

/// The pre-shard reference pipeline: one flat rayon sweep over every
/// selected instance, measured directly on [`pg_perfsim::measure`] with no
/// engine, no store and no partitioning.
///
/// Kept (not deprecated) as the bit-identity oracle: `tests/pipeline.rs`
/// asserts the sharded path reproduces this output exactly, which is what
/// makes the shard store safe to trust.
pub fn collect_platform_unsharded(platform: Platform, config: &PipelineConfig) -> PlatformDataset {
    let mut instances = instances_for(platform, config.scale);

    // Deterministic subsample to the configured scale.
    let max_points = config.scale.max_points();
    if instances.len() > max_points {
        let mut rng = StdRng::seed_from_u64(config.seed ^ platform as u64);
        instances.shuffle(&mut rng);
        instances.truncate(max_points);
    }

    let noise = NoiseModel {
        sigma: config.noise_sigma,
        seed: config.seed,
    };

    let points: Vec<DataPoint> = instances
        .par_iter()
        .filter_map(|inst| {
            let measurement = measure(inst, platform, &noise).ok()?;
            Some(DataPoint {
                id: 0,
                application: inst.application.clone(),
                kernel: inst.kernel.clone(),
                variant: inst.variant,
                platform,
                sizes: inst.sizes.clone(),
                teams: inst.launch.teams,
                threads: inst.launch.threads,
                runtime_ms: measurement.runtime_ms,
                source: inst.source.clone(),
            })
        })
        .collect();

    merge_shard_points(platform, points)
}

/// Collect the datasets of all four platforms through one shared frontend
/// cache and the workspace-default shard store.
pub fn collect_all(config: &PipelineConfig) -> Vec<PlatformDataset> {
    generate_all(config, &ShardStore::default_location())
        .into_iter()
        .map(|outcome| outcome.dataset)
        .collect()
}

/// Sharded generation for all four platforms, sharing one frontend cache
/// so each kernel source is parsed once per process.
pub fn generate_all(config: &PipelineConfig, store: &ShardStore) -> Vec<GenerationOutcome> {
    let cache = Arc::new(FrontendCache::new(GENERATION_CACHE_CAPACITY));
    Platform::ALL
        .iter()
        .map(|&p| generate_platform_with_cache(p, config, store, Arc::clone(&cache)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_advisor::Variant;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 7,
            noise_sigma: 0.03,
        }
    }

    #[test]
    fn cpu_platform_only_gets_cpu_variants() {
        let ds = collect_platform(Platform::SummitPower9, &fast_config());
        assert!(!ds.is_empty());
        assert!(ds.points.iter().all(|p| !p.variant.is_gpu()));
        assert!(ds.points.iter().all(|p| p.teams == 1));
    }

    #[test]
    fn gpu_platform_only_gets_gpu_variants() {
        let ds = collect_platform(Platform::CoronaMi50, &fast_config());
        assert!(!ds.is_empty());
        assert!(ds.points.iter().all(|p| p.variant.is_gpu()));
        // All four GPU variants appear.
        for v in [
            Variant::Gpu,
            Variant::GpuCollapse,
            Variant::GpuMem,
            Variant::GpuCollapseMem,
        ] {
            assert!(
                ds.points.iter().any(|p| p.variant == v),
                "variant {} missing from the GPU dataset",
                v.name()
            );
        }
    }

    #[test]
    fn runtimes_are_positive_and_varied() {
        let ds = collect_platform(Platform::SummitV100, &fast_config());
        assert!(ds.points.iter().all(|p| p.runtime_ms > 0.0));
        let stats = ds.stats();
        assert!(
            stats.max_runtime_ms > 10.0 * stats.min_runtime_ms,
            "runtime range too narrow"
        );
    }

    #[test]
    fn collection_is_deterministic() {
        let a = collect_platform(Platform::SummitPower9, &fast_config());
        let b = collect_platform(Platform::SummitPower9, &fast_config());
        assert_eq!(a, b);
    }

    #[test]
    fn split_is_nine_to_one_and_disjoint() {
        let ds = collect_platform(Platform::SummitPower9, &fast_config());
        let (train, val) = ds.split(123);
        assert_eq!(train.len() + val.len(), ds.len());
        let expected_train = (ds.len() as f64 * 0.9).round() as usize;
        assert_eq!(train.len(), expected_train);
        let mut all: Vec<usize> = train.iter().chain(val.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            ds.len(),
            "split indices must be disjoint and exhaustive"
        );
        // Deterministic.
        let (train2, _) = ds.split(123);
        assert_eq!(train, train2);
        // Different seeds differ.
        let (train3, _) = ds.split(124);
        assert_ne!(train, train3);
    }

    #[test]
    fn every_application_is_represented() {
        let ds = collect_platform(Platform::SummitV100, &fast_config());
        let apps: std::collections::HashSet<&str> =
            ds.points.iter().map(|p| p.application.as_str()).collect();
        assert!(apps.len() >= 8, "expected most applications, got {apps:?}");
    }

    #[test]
    fn gpu_dataset_is_larger_than_cpu_dataset_at_full_stride() {
        // The paper's Table II shows roughly 2x more GPU points than CPU
        // points (four GPU variants vs two CPU variants).
        let cpu = instances_for(Platform::SummitPower9, DatasetScale::Default).len();
        let gpu = instances_for(Platform::SummitV100, DatasetScale::Default).len();
        assert!(
            gpu > cpu,
            "GPU instance count {gpu} must exceed CPU count {cpu}"
        );
    }

    #[test]
    fn scale_from_vars_resolution() {
        // Pure resolution — no process-global env mutation, which would race
        // with parallel tests that read the same variables.
        assert_eq!(DatasetScale::from_vars(None, None), DatasetScale::Default);
        assert_eq!(DatasetScale::from_vars(Some("1"), None), DatasetScale::Fast);
        assert_eq!(DatasetScale::from_vars(None, Some("1")), DatasetScale::Full);
        // Fast wins when both are set; "0" disables a flag.
        assert_eq!(
            DatasetScale::from_vars(Some("1"), Some("1")),
            DatasetScale::Fast
        );
        assert_eq!(
            DatasetScale::from_vars(Some("0"), None),
            DatasetScale::Default
        );
        assert_eq!(
            DatasetScale::from_vars(Some("0"), Some("1")),
            DatasetScale::Full
        );
    }
}
