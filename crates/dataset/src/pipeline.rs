//! The data-collection pipeline of Figure 3: variant generation → runtime
//! measurement (simulated) → labelled data points, per platform.

use crate::datapoint::DataPoint;
use crate::stats::PlatformStats;
use pg_advisor::{generate_instances, GeneratorConfig, KernelInstance, ParallelismBudget};
use pg_kernels::all_kernels;
use pg_perfsim::{measure, NoiseModel, Platform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How large a dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DatasetScale {
    /// Very small: for unit tests and CI smoke runs.
    Fast,
    /// Medium: the default for `cargo bench` on a laptop-class machine.
    #[default]
    Default,
    /// Approaches the paper's ~26 000-point scale (hours of training on a
    /// laptop; use on a larger machine).
    Full,
}

impl DatasetScale {
    /// Read the scale from the `PARAGRAPH_FAST` / `PARAGRAPH_FULL_DATASET`
    /// environment variables, falling back to the default.
    pub fn from_env() -> Self {
        Self::from_vars(
            std::env::var("PARAGRAPH_FAST").ok().as_deref(),
            std::env::var("PARAGRAPH_FULL_DATASET").ok().as_deref(),
        )
    }

    /// Resolve the scale from the raw values of the two environment
    /// variables (`PARAGRAPH_FAST`, `PARAGRAPH_FULL_DATASET`). Pure —
    /// testable without mutating process state, which would race with
    /// parallel tests reading the same variables.
    pub fn from_vars(fast: Option<&str>, full: Option<&str>) -> Self {
        if fast.is_some_and(|v| v != "0") {
            DatasetScale::Fast
        } else if full.is_some_and(|v| v != "0") {
            DatasetScale::Full
        } else {
            DatasetScale::Default
        }
    }

    fn generator_config(self) -> GeneratorConfig {
        match self {
            DatasetScale::Fast => GeneratorConfig {
                size_stride: 4,
                launch_stride: 3,
                ..GeneratorConfig::default()
            },
            DatasetScale::Default => GeneratorConfig::default(),
            DatasetScale::Full => GeneratorConfig::default(),
        }
    }

    /// Maximum number of points kept per platform (deterministic subsample).
    fn max_points(self) -> usize {
        match self {
            DatasetScale::Fast => 220,
            DatasetScale::Default => 1100,
            DatasetScale::Full => usize::MAX,
        }
    }
}

/// Configuration of a dataset-generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Seed for measurement noise and subsampling.
    pub seed: u64,
    /// Noise level (log-normal sigma) of the simulated measurements.
    pub noise_sigma: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Default,
            seed: 42,
            noise_sigma: 0.04,
        }
    }
}

/// The labelled dataset collected on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformDataset {
    /// Platform the runtimes were collected on.
    pub platform: Platform,
    /// All labelled data points.
    pub points: Vec<DataPoint>,
}

impl PlatformDataset {
    /// Number of data points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runtime labels in milliseconds.
    pub fn runtimes(&self) -> Vec<f32> {
        self.points.iter().map(|p| p.runtime_ms as f32).collect()
    }

    /// Table II statistics for this platform.
    pub fn stats(&self) -> PlatformStats {
        PlatformStats::from_dataset(self)
    }

    /// Deterministic train/validation split with the paper's 9:1 ratio.
    /// Returns `(train_indices, validation_indices)`.
    pub fn split(&self, seed: u64) -> (Vec<usize>, Vec<usize>) {
        self.split_with_ratio(seed, 0.9)
    }

    /// Deterministic split with an arbitrary train fraction.
    pub fn split_with_ratio(&self, seed: u64, train_fraction: f64) -> (Vec<usize>, Vec<usize>) {
        let mut indices: Vec<usize> = (0..self.points.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let train_len = ((self.points.len() as f64) * train_fraction).round() as usize;
        let train_len = train_len.min(self.points.len());
        let train = indices[..train_len].to_vec();
        let val = indices[train_len..].to_vec();
        (train, val)
    }
}

/// The launch-configuration budget matching a platform's hardware.
pub fn budget_for(platform: Platform) -> ParallelismBudget {
    match platform {
        Platform::SummitPower9 => ParallelismBudget::for_cpu_cores(22),
        Platform::CoronaEpyc7401 => ParallelismBudget::for_cpu_cores(24),
        Platform::SummitV100 => ParallelismBudget::for_gpu(80),
        Platform::CoronaMi50 => ParallelismBudget::for_gpu(60),
    }
}

/// Generate the kernel instances that run on a given platform: CPU platforms
/// execute the `cpu*` variants, GPU platforms the `gpu*` variants.
pub fn instances_for(platform: Platform, scale: DatasetScale) -> Vec<KernelInstance> {
    let kernels = all_kernels();
    let budget = budget_for(platform);
    let config = GeneratorConfig {
        include_cpu: !platform.is_gpu(),
        include_gpu: platform.is_gpu(),
        ..scale.generator_config()
    };
    generate_instances(&kernels, &budget, &config)
}

/// Run the full pipeline for one platform: generate variants, "measure" each
/// one on the simulator, and return the labelled dataset.
pub fn collect_platform(platform: Platform, config: &PipelineConfig) -> PlatformDataset {
    let mut instances = instances_for(platform, config.scale);

    // Deterministic subsample to the configured scale.
    let max_points = config.scale.max_points();
    if instances.len() > max_points {
        let mut rng = StdRng::seed_from_u64(config.seed ^ platform as u64);
        instances.shuffle(&mut rng);
        instances.truncate(max_points);
    }

    let noise = NoiseModel {
        sigma: config.noise_sigma,
        seed: config.seed,
    };

    let mut points: Vec<DataPoint> = instances
        .par_iter()
        .filter_map(|inst| {
            let measurement = measure(inst, platform, &noise).ok()?;
            Some(DataPoint {
                id: 0,
                application: inst.application.clone(),
                kernel: inst.kernel.clone(),
                variant: inst.variant,
                platform,
                sizes: inst.sizes.clone(),
                teams: inst.launch.teams,
                threads: inst.launch.threads,
                runtime_ms: measurement.runtime_ms,
                source: inst.source.clone(),
            })
        })
        .collect();

    // Stable ordering + ids. HashMap iteration order is not deterministic, so
    // the size component of the key is built from sorted pairs. The key
    // allocates (name strings + size pairs), so it is computed once per
    // point via `sort_by_cached_key` instead of twice per comparison.
    points.sort_by_cached_key(|p| {
        let mut pairs: Vec<(String, i64)> = p.sizes.iter().map(|(k, v)| (k.clone(), *v)).collect();
        pairs.sort();
        (p.full_name(), p.variant.name(), p.teams, p.threads, pairs)
    });
    for (i, p) in points.iter_mut().enumerate() {
        p.id = i;
    }
    PlatformDataset { platform, points }
}

/// Collect the datasets of all four platforms.
pub fn collect_all(config: &PipelineConfig) -> Vec<PlatformDataset> {
    Platform::ALL
        .iter()
        .map(|&p| collect_platform(p, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_advisor::Variant;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 7,
            noise_sigma: 0.03,
        }
    }

    #[test]
    fn cpu_platform_only_gets_cpu_variants() {
        let ds = collect_platform(Platform::SummitPower9, &fast_config());
        assert!(!ds.is_empty());
        assert!(ds.points.iter().all(|p| !p.variant.is_gpu()));
        assert!(ds.points.iter().all(|p| p.teams == 1));
    }

    #[test]
    fn gpu_platform_only_gets_gpu_variants() {
        let ds = collect_platform(Platform::CoronaMi50, &fast_config());
        assert!(!ds.is_empty());
        assert!(ds.points.iter().all(|p| p.variant.is_gpu()));
        // All four GPU variants appear.
        for v in [
            Variant::Gpu,
            Variant::GpuCollapse,
            Variant::GpuMem,
            Variant::GpuCollapseMem,
        ] {
            assert!(
                ds.points.iter().any(|p| p.variant == v),
                "variant {} missing from the GPU dataset",
                v.name()
            );
        }
    }

    #[test]
    fn runtimes_are_positive_and_varied() {
        let ds = collect_platform(Platform::SummitV100, &fast_config());
        assert!(ds.points.iter().all(|p| p.runtime_ms > 0.0));
        let stats = ds.stats();
        assert!(
            stats.max_runtime_ms > 10.0 * stats.min_runtime_ms,
            "runtime range too narrow"
        );
    }

    #[test]
    fn collection_is_deterministic() {
        let a = collect_platform(Platform::SummitPower9, &fast_config());
        let b = collect_platform(Platform::SummitPower9, &fast_config());
        assert_eq!(a, b);
    }

    #[test]
    fn split_is_nine_to_one_and_disjoint() {
        let ds = collect_platform(Platform::SummitPower9, &fast_config());
        let (train, val) = ds.split(123);
        assert_eq!(train.len() + val.len(), ds.len());
        let expected_train = (ds.len() as f64 * 0.9).round() as usize;
        assert_eq!(train.len(), expected_train);
        let mut all: Vec<usize> = train.iter().chain(val.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            ds.len(),
            "split indices must be disjoint and exhaustive"
        );
        // Deterministic.
        let (train2, _) = ds.split(123);
        assert_eq!(train, train2);
        // Different seeds differ.
        let (train3, _) = ds.split(124);
        assert_ne!(train, train3);
    }

    #[test]
    fn every_application_is_represented() {
        let ds = collect_platform(Platform::SummitV100, &fast_config());
        let apps: std::collections::HashSet<&str> =
            ds.points.iter().map(|p| p.application.as_str()).collect();
        assert!(apps.len() >= 8, "expected most applications, got {apps:?}");
    }

    #[test]
    fn gpu_dataset_is_larger_than_cpu_dataset_at_full_stride() {
        // The paper's Table II shows roughly 2x more GPU points than CPU
        // points (four GPU variants vs two CPU variants).
        let cpu = instances_for(Platform::SummitPower9, DatasetScale::Default).len();
        let gpu = instances_for(Platform::SummitV100, DatasetScale::Default).len();
        assert!(
            gpu > cpu,
            "GPU instance count {gpu} must exceed CPU count {cpu}"
        );
    }

    #[test]
    fn scale_from_vars_resolution() {
        // Pure resolution — no process-global env mutation, which would race
        // with parallel tests that read the same variables.
        assert_eq!(DatasetScale::from_vars(None, None), DatasetScale::Default);
        assert_eq!(DatasetScale::from_vars(Some("1"), None), DatasetScale::Fast);
        assert_eq!(DatasetScale::from_vars(None, Some("1")), DatasetScale::Full);
        // Fast wins when both are set; "0" disables a flag.
        assert_eq!(
            DatasetScale::from_vars(Some("1"), Some("1")),
            DatasetScale::Fast
        );
        assert_eq!(
            DatasetScale::from_vars(Some("0"), None),
            DatasetScale::Default
        );
        assert_eq!(
            DatasetScale::from_vars(Some("0"), Some("1")),
            DatasetScale::Full
        );
    }
}
