//! The on-disk shard store: content-hash-addressed generation artifacts
//! under `target/paragraph-cache/shards`.
//!
//! Completed shards are persisted as JSON artifacts named by the shard's
//! [fingerprint](crate::shard::Shard::fingerprint), so an interrupted or
//! repeated run resumes from whatever already completed instead of
//! recomputing. An artifact stores only the shard's
//! [labels](crate::shard::ShardLabel) — `(instance index, runtime)` pairs —
//! because the deterministic plan already holds every instance: warm loads
//! parse a few hundred bytes instead of re-serialized kernel sources, which
//! is what makes resuming decisively cheaper than re-measuring. Loads
//! verify the stored fingerprint string against the requesting shard (a
//! hash collision or stale artifact degrades to a miss), and writes go
//! through a temp-file + atomic rename so concurrent generators — parallel
//! tests, overlapping bench runs — can never observe a torn artifact.
//!
//! Environment overrides:
//! * `PARAGRAPH_SHARD_DIR=<path>` — relocate the store;
//! * `PARAGRAPH_SHARD_STORE=0` — disable persistence entirely (every load
//!   misses, every save is dropped).

use crate::shard::{Shard, ShardLabel, SHARD_FORMAT_VERSION};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One persisted shard: its identity and its measurement labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardArtifact {
    format_version: u32,
    fingerprint: String,
    labels: Vec<ShardLabel>,
}

/// A content-addressed store of completed shards.
#[derive(Debug)]
pub struct ShardStore {
    /// `None` disables persistence.
    dir: Option<PathBuf>,
    /// Unique suffix source for temp files within this store handle.
    tmp_counter: AtomicU64,
}

impl ShardStore {
    /// The workspace-default store under `target/paragraph-cache/shards`,
    /// honouring the `PARAGRAPH_SHARD_DIR` / `PARAGRAPH_SHARD_STORE`
    /// overrides.
    pub fn default_location() -> Self {
        if std::env::var("PARAGRAPH_SHARD_STORE").is_ok_and(|v| v == "0") {
            return Self::disabled();
        }
        if let Ok(dir) = std::env::var("PARAGRAPH_SHARD_DIR") {
            if !dir.is_empty() {
                return Self::at(PathBuf::from(dir));
            }
        }
        // crates/dataset/../../target/paragraph-cache/shards
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let dir = manifest
            .parent()
            .and_then(Path::parent)
            .map(|root| root.join("target"))
            .unwrap_or_else(|| PathBuf::from("target"))
            .join("paragraph-cache")
            .join("shards");
        Self::at(dir)
    }

    /// A store rooted at an explicit directory (created lazily on first
    /// save).
    pub fn at(dir: PathBuf) -> Self {
        Self {
            dir: Some(dir),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// A store that never persists anything: loads always miss, saves are
    /// dropped. Used to force cold runs in tests and benches.
    pub fn disabled() -> Self {
        Self {
            dir: None,
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// Whether this store persists artifacts at all.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Directory the store writes to, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn artifact_path(&self, shard: &Shard) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        Some(dir.join(format!(
            "{}-{:016x}.json",
            shard.key.slug(),
            shard.content_hash()
        )))
    }

    /// Load the labels of a completed shard, or `None` on a miss (absent,
    /// unreadable, torn, stale version, fingerprint mismatch, or labels
    /// that do not fit the shard).
    pub fn load(&self, shard: &Shard) -> Option<Vec<ShardLabel>> {
        let path = self.artifact_path(shard)?;
        let text = std::fs::read_to_string(path).ok()?;
        let artifact: ShardArtifact = serde_json::from_str(&text).ok()?;
        if artifact.format_version != SHARD_FORMAT_VERSION
            || artifact.fingerprint != shard.fingerprint()
            || artifact
                .labels
                .iter()
                .any(|l| l.index >= shard.instances.len())
        {
            return None;
        }
        Some(artifact.labels)
    }

    /// Persist a completed shard's labels. Failures are silently dropped —
    /// the store is a cache; generation must succeed without it (read-only
    /// file systems, full disks).
    pub fn save(&self, shard: &Shard, labels: &[ShardLabel]) {
        let Some(path) = self.artifact_path(shard) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let artifact = ShardArtifact {
            format_version: SHARD_FORMAT_VERSION,
            fingerprint: shard.fingerprint(),
            labels: labels.to_vec(),
        };
        let Ok(text) = serde_json::to_string(&artifact) else {
            return;
        };
        // Atomic publish: write a unique temp file in the same directory,
        // then rename over the final name. Concurrent writers of the same
        // shard race benignly (identical contents).
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("shard")
        ));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DatasetScale, PipelineConfig};
    use crate::shard::ShardPlan;
    use pg_perfsim::Platform;

    fn temp_store(tag: &str) -> ShardStore {
        let dir =
            std::env::temp_dir().join(format!("pg-shard-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ShardStore::at(dir)
    }

    fn tiny_shard() -> Shard {
        let plan = ShardPlan::plan(
            Platform::SummitPower9,
            &PipelineConfig {
                scale: DatasetScale::Fast,
                seed: 5,
                noise_sigma: 0.02,
            },
        );
        plan.shards.into_iter().next().unwrap()
    }

    #[test]
    fn save_then_load_round_trips_exactly() {
        let store = temp_store("roundtrip");
        let shard = tiny_shard();
        let engine = pg_engine::Engine::builder()
            .platform(Platform::SummitPower9)
            .backend(pg_engine::SimulatorBackend::new(pg_perfsim::NoiseModel {
                sigma: 0.02,
                seed: 5,
            }))
            .build();
        let (labels, _) = shard.measure(&engine);
        assert!(!labels.is_empty());
        assert!(store.load(&shard).is_none(), "store must start cold");
        store.save(&shard, &labels);
        let loaded = store.load(&shard).expect("artifact must load");
        // Bit-exact: the f64 runtimes survive the JSON round trip, so the
        // materialized points do too.
        assert_eq!(labels, loaded);
        assert_eq!(shard.points(&labels), shard.points(&loaded));
        let _ = std::fs::remove_dir_all(store.dir().unwrap());
    }

    #[test]
    fn out_of_range_labels_are_a_miss() {
        let store = temp_store("oob");
        let shard = tiny_shard();
        store.save(
            &shard,
            &[ShardLabel {
                index: shard.instances.len(),
                runtime_ms: 1.0,
            }],
        );
        assert!(store.load(&shard).is_none());
        let _ = std::fs::remove_dir_all(store.dir().unwrap());
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let store = temp_store("mismatch");
        let shard = tiny_shard();
        store.save(&shard, &[]);
        assert!(store.load(&shard).is_some());
        // A shard with different content hashes to a different artifact
        // path; simulate a collision by renaming the artifact onto the
        // other shard's address and confirm the fingerprint check rejects.
        let mut other = shard.clone();
        other.instances.pop();
        let from = store.artifact_path(&shard).unwrap();
        let to = store.artifact_path(&other).unwrap();
        std::fs::rename(from, to).unwrap();
        assert!(
            store.load(&other).is_none(),
            "foreign fingerprint must be rejected"
        );
        let _ = std::fs::remove_dir_all(store.dir().unwrap());
    }

    #[test]
    fn disabled_store_never_hits() {
        let store = ShardStore::disabled();
        let shard = tiny_shard();
        store.save(&shard, &[]);
        assert!(store.load(&shard).is_none());
        assert!(!store.is_enabled());
    }
}
