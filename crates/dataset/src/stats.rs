//! Dataset statistics (Table II of the paper): number of data points,
//! runtime range and standard deviation per accelerator.

use crate::pipeline::PlatformDataset;
use serde::{Deserialize, Serialize};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Accelerator name.
    pub platform_name: String,
    /// Cluster the accelerator belongs to.
    pub cluster: String,
    /// Number of data points collected.
    pub data_points: usize,
    /// Smallest runtime in the dataset (ms).
    pub min_runtime_ms: f64,
    /// Largest runtime in the dataset (ms).
    pub max_runtime_ms: f64,
    /// Population standard deviation of the runtimes (ms).
    pub std_dev_ms: f64,
    /// Mean runtime (ms) — not in the paper's table but useful context.
    pub mean_runtime_ms: f64,
}

impl PlatformStats {
    /// Compute the statistics of a platform dataset.
    pub fn from_dataset(dataset: &PlatformDataset) -> Self {
        let runtimes: Vec<f64> = dataset.points.iter().map(|p| p.runtime_ms).collect();
        let n = runtimes.len().max(1) as f64;
        let mean = runtimes.iter().sum::<f64>() / n;
        let variance = runtimes
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / n;
        Self {
            platform_name: dataset.platform.name().to_string(),
            cluster: dataset.platform.cluster().to_string(),
            data_points: dataset.points.len(),
            min_runtime_ms: runtimes.iter().copied().fold(f64::INFINITY, f64::min),
            max_runtime_ms: runtimes.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std_dev_ms: variance.sqrt(),
            mean_runtime_ms: mean,
        }
    }

    /// Runtime range `[min - max]` formatted like the paper's table.
    pub fn range_string(&self) -> String {
        format!("[{:.3} - {:.0}]", self.min_runtime_ms, self.max_runtime_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapoint::DataPoint;
    use pg_advisor::Variant;
    use pg_perfsim::Platform;
    use std::collections::HashMap;

    fn dataset_with_runtimes(runtimes: &[f64]) -> PlatformDataset {
        let points = runtimes
            .iter()
            .enumerate()
            .map(|(i, &r)| DataPoint {
                id: i,
                application: "MM".into(),
                kernel: "matmul".into(),
                variant: Variant::Cpu,
                platform: Platform::SummitPower9,
                sizes: HashMap::new(),
                teams: 1,
                threads: 4,
                runtime_ms: r,
                source: String::new(),
            })
            .collect();
        PlatformDataset {
            platform: Platform::SummitPower9,
            points,
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let ds = dataset_with_runtimes(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let stats = ds.stats();
        assert_eq!(stats.data_points, 8);
        assert_eq!(stats.min_runtime_ms, 2.0);
        assert_eq!(stats.max_runtime_ms, 9.0);
        assert!((stats.mean_runtime_ms - 5.0).abs() < 1e-12);
        assert!((stats.std_dev_ms - 2.0).abs() < 1e-12);
        assert_eq!(stats.cluster, "Summit");
        assert!(stats.range_string().starts_with("[2.000"));
    }

    #[test]
    fn single_point_has_zero_std_dev() {
        let ds = dataset_with_runtimes(&[10.0]);
        let stats = ds.stats();
        assert_eq!(stats.std_dev_ms, 0.0);
        assert_eq!(stats.min_runtime_ms, stats.max_runtime_ms);
    }
}
