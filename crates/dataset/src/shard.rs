//! Shard planning and execution for the partitioned dataset pipeline.
//!
//! A *shard* is the unit of generation work and of resumability: all
//! selected instances of one kernel on one platform at one `(scale, seed,
//! noise)` configuration. Shards are planned deterministically — the
//! instance sweep and the seeded subsample are computed exactly as the
//! unsharded pipeline computed them, then grouped by kernel — so the union
//! of all shards is always the same instance set regardless of how many
//! shards already sit in the store, and the merged dataset is bit-identical
//! to an unsharded sweep no matter in which order (or across how many
//! interrupted runs) the shards complete.
//!
//! Each shard carries a content fingerprint covering everything that
//! determines its points: the key fields, the noise configuration, the
//! full identity (description + source) of every instance in the shard,
//! and a behavioural probe of the label function itself (see
//! `model_signature`). The [`ShardStore`](crate::store::ShardStore)
//! addresses artifacts by this fingerprint, so a change to the generator,
//! the kernel catalogue, the sweep configuration or the simulator's cost
//! model can never resurrect stale points.

use crate::datapoint::DataPoint;
use crate::pipeline::{instances_for, DatasetScale, PipelineConfig};
use pg_advisor::KernelInstance;
use pg_engine::{CacheCounters, Engine, EngineError};
use pg_perfsim::Platform;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Bump when the artifact *schema* changes (field layout, label encoding):
/// stale artifacts under `target/paragraph-cache` are then ignored instead
/// of silently reused. Label-function changes (cost model, noise, parser)
/// need no bump — the behavioural probe folded into every fingerprint
/// (see `model_signature`) invalidates old artifacts automatically.
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Identity of one generation shard: platform × kernel × scale × seed
/// (plus the noise sigma, which is part of the label function).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardKey {
    /// Platform the shard's runtimes are "measured" on.
    pub platform: Platform,
    /// Fully qualified kernel name (`application/kernel`).
    pub kernel: String,
    /// Dataset scale the run was planned at.
    pub scale: DatasetScale,
    /// Global pipeline seed (subsampling and measurement noise).
    pub seed: u64,
    /// Bit pattern of the noise sigma (hashable/comparable exactly).
    pub noise_sigma_bits: u64,
}

impl ShardKey {
    /// Filesystem-safe slug naming this shard's artifact.
    pub fn slug(&self) -> String {
        format!(
            "{}-{}-{:?}-s{}",
            self.platform.name().replace([' ', '(', ')', '/'], "-"),
            self.kernel.replace([' ', '(', ')', '/'], "-"),
            self.scale,
            self.seed
        )
        .to_lowercase()
    }
}

/// One unit of generation work: a key plus the concrete instances to
/// measure, in deterministic plan order.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The shard's identity.
    pub key: ShardKey,
    /// Instances of this shard, in plan order.
    pub instances: Vec<KernelInstance>,
}

/// 64-bit FNV-1a, used for shard fingerprints: stable across processes and
/// Rust versions (unlike `DefaultHasher`, whose algorithm is unspecified),
/// which matters because fingerprints address on-disk artifacts.
fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= u64::from(b);
        *state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// A behavioural signature of the whole label function, folded into every
/// shard fingerprint: the bit patterns of two canonical probe measurements
/// (one CPU, one GPU-with-transfers, both noisy). Any change to the
/// frontend, the cost analysis, the execution model, the accelerator specs
/// or the noise stream changes a probe label, so artifacts persisted under
/// `target/paragraph-cache` by an older code revision degrade to cache
/// misses automatically instead of being served stale — no manual
/// [`SHARD_FORMAT_VERSION`] bump needed for label-affecting changes.
/// Computed once per process (two measurements, microseconds).
fn model_signature() -> u64 {
    use std::sync::OnceLock;
    static SIGNATURE: OnceLock<u64> = OnceLock::new();
    *SIGNATURE.get_or_init(|| {
        let mm = pg_kernels::find_kernel("MM/matmul").expect("catalogue always has MM/matmul");
        let probe_noise = pg_perfsim::NoiseModel {
            sigma: 0.05,
            seed: 0x7061_7261_6772_6170, // fixed probe seed, independent of runs
        };
        let probes = [
            (
                Platform::SummitPower9,
                pg_advisor::Variant::Cpu,
                pg_advisor::LaunchConfig {
                    teams: 1,
                    threads: 16,
                },
            ),
            (
                Platform::SummitV100,
                pg_advisor::Variant::GpuCollapseMem,
                pg_advisor::LaunchConfig {
                    teams: 80,
                    threads: 128,
                },
            ),
        ];
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (platform, variant, launch) in probes {
            let instance = pg_advisor::instantiate(&mm, variant, &mm.default_sizes(), launch);
            let measurement = pg_perfsim::measure(&instance, platform, &probe_noise)
                .expect("canonical probe instance always measures");
            fnv1a(&mut h, &measurement.runtime_ms.to_bits().to_le_bytes());
        }
        h
    })
}

impl Shard {
    /// Content hash over the shard's identity, every instance in it, and
    /// the behavioural [`model_signature`] of the label function.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h, &SHARD_FORMAT_VERSION.to_le_bytes());
        fnv1a(&mut h, &model_signature().to_le_bytes());
        fnv1a(&mut h, self.key.platform.name().as_bytes());
        fnv1a(&mut h, self.key.kernel.as_bytes());
        fnv1a(&mut h, format!("{:?}", self.key.scale).as_bytes());
        fnv1a(&mut h, &self.key.seed.to_le_bytes());
        fnv1a(&mut h, &self.key.noise_sigma_bits.to_le_bytes());
        for instance in &self.instances {
            fnv1a(&mut h, instance.describe().as_bytes());
            fnv1a(&mut h, instance.source.as_bytes());
        }
        h
    }

    /// Canonical fingerprint string stored inside (and compared against)
    /// the shard's artifact, so a hash collision degrades to a cache miss
    /// instead of serving another shard's points.
    pub fn fingerprint(&self) -> String {
        format!(
            "v{}|{}|{}|{:?}|seed={}|sigma_bits={:016x}|n={}|model={:016x}|content={:016x}",
            SHARD_FORMAT_VERSION,
            self.key.platform.name(),
            self.key.kernel,
            self.key.scale,
            self.key.seed,
            self.key.noise_sigma_bits,
            self.instances.len(),
            model_signature(),
            self.content_hash()
        )
    }

    /// Measure every instance of this shard through an engine (which must
    /// serve this shard's platform and carry the run's noisy simulator
    /// backend), returning one [`ShardLabel`] per *successful* measurement
    /// (instances whose measurement fails are skipped, exactly as in the
    /// unsharded pipeline) plus the frontend-cache activity the shard
    /// caused. Labels — not full points — are what the store persists: the
    /// plan already holds every instance, so an artifact only needs to
    /// carry `(index, runtime)` pairs, keeping warm loads far cheaper than
    /// re-measuring.
    pub fn measure(&self, engine: &Engine) -> (Vec<ShardLabel>, CacheCounters) {
        assert_eq!(
            engine.platform(),
            self.key.platform,
            "shard for {} executed on an engine serving {}",
            self.key.platform.name(),
            engine.platform().name()
        );
        let (predictions, cache) = engine.predict_instances_counted(&self.instances);
        let labels = predictions
            .into_iter()
            .enumerate()
            .filter_map(|(index, prediction): (_, Result<f64, EngineError>)| {
                Some(ShardLabel {
                    index,
                    runtime_ms: prediction.ok()?,
                })
            })
            .collect();
        (labels, cache)
    }

    /// Materialize labelled data points from this shard's instances and a
    /// set of labels (freshly measured or resumed from the store). Labels
    /// with out-of-range indices are skipped — the store's fingerprint
    /// check makes them impossible in practice, but a corrupt artifact must
    /// not panic the pipeline.
    ///
    /// Point ids are left at 0; ids are assigned by the deterministic merge
    /// ([`merge_shard_points`](crate::pipeline::merge_shard_points)), never
    /// per shard, so they are independent of shard completion order.
    pub fn points(&self, labels: &[ShardLabel]) -> Vec<DataPoint> {
        labels
            .iter()
            .filter_map(|label| {
                let inst = self.instances.get(label.index)?;
                Some(DataPoint {
                    id: 0,
                    application: inst.application.clone(),
                    kernel: inst.kernel.clone(),
                    variant: inst.variant,
                    platform: self.key.platform,
                    sizes: inst.sizes.clone(),
                    teams: inst.launch.teams,
                    threads: inst.launch.threads,
                    runtime_ms: label.runtime_ms,
                    source: inst.source.clone(),
                })
            })
            .collect()
    }
}

/// One successful measurement within a shard: the instance's index in plan
/// order plus its runtime label. This is the unit the
/// [`ShardStore`](crate::store::ShardStore) persists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardLabel {
    /// Index into [`Shard::instances`].
    pub index: usize,
    /// Measured (simulated) runtime in milliseconds.
    pub runtime_ms: f64,
}

/// The deterministic work partition of one platform's generation run.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Platform the plan generates for.
    pub platform: Platform,
    /// Shards in deterministic order (sorted by kernel name).
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plan the shards of one platform run. The instance sweep and the
    /// seeded subsample are computed exactly as the unsharded pipeline
    /// computes them (same RNG, same truncation), then the selected
    /// instances are grouped by kernel — so the union over shards is the
    /// same instance set the unsharded pipeline would measure.
    pub fn plan(platform: Platform, config: &PipelineConfig) -> ShardPlan {
        let mut instances = instances_for(platform, config.scale);

        // Deterministic subsample to the configured scale (identical to the
        // pre-shard pipeline: shuffle under the platform-mixed seed, then
        // truncate).
        let max_points = config.scale.max_points();
        if instances.len() > max_points {
            let mut rng = StdRng::seed_from_u64(config.seed ^ platform as u64);
            instances.shuffle(&mut rng);
            instances.truncate(max_points);
        }

        // Group by kernel, preserving selection order within each shard.
        // BTreeMap so shard order is deterministic (sorted by kernel name)
        // rather than first-appearance order of a shuffled list.
        let mut by_kernel: std::collections::BTreeMap<String, Vec<KernelInstance>> =
            std::collections::BTreeMap::new();
        for instance in instances {
            by_kernel
                .entry(instance.full_name())
                .or_default()
                .push(instance);
        }
        let shards = by_kernel
            .into_iter()
            .map(|(kernel, instances)| Shard {
                key: ShardKey {
                    platform,
                    kernel,
                    scale: config.scale,
                    seed: config.seed,
                    noise_sigma_bits: config.noise_sigma.to_bits(),
                },
                instances,
            })
            .collect();
        ShardPlan { platform, shards }
    }

    /// Total instances across all shards.
    pub fn instance_count(&self) -> usize {
        self.shards.iter().map(|s| s.instances.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            scale: DatasetScale::Fast,
            seed: 7,
            noise_sigma: 0.03,
        }
    }

    #[test]
    fn plan_is_deterministic_and_partitions_by_kernel() {
        let a = ShardPlan::plan(Platform::SummitV100, &fast_config());
        let b = ShardPlan::plan(Platform::SummitV100, &fast_config());
        assert!(
            a.shards.len() > 5,
            "expected many shards, got {}",
            a.shards.len()
        );
        assert_eq!(a.shards.len(), b.shards.len());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.instances, y.instances);
            assert_eq!(x.content_hash(), y.content_hash());
        }
        // Every shard holds exactly one kernel, and shards are sorted.
        for shard in &a.shards {
            assert!(shard
                .instances
                .iter()
                .all(|i| i.full_name() == shard.key.kernel));
        }
        let kernels: Vec<&str> = a.shards.iter().map(|s| s.key.kernel.as_str()).collect();
        let mut sorted = kernels.clone();
        sorted.sort_unstable();
        assert_eq!(kernels, sorted);
    }

    #[test]
    fn fingerprint_tracks_configuration() {
        let base = ShardPlan::plan(Platform::SummitV100, &fast_config());
        let other_seed = ShardPlan::plan(
            Platform::SummitV100,
            &PipelineConfig {
                seed: 8,
                ..fast_config()
            },
        );
        let other_sigma = ShardPlan::plan(
            Platform::SummitV100,
            &PipelineConfig {
                noise_sigma: 0.04,
                ..fast_config()
            },
        );
        assert_ne!(
            base.shards[0].fingerprint(),
            other_seed.shards[0].fingerprint()
        );
        assert_ne!(
            base.shards[0].fingerprint(),
            other_sigma.shards[0].fingerprint()
        );
        // Tampering with an instance changes the content hash.
        let mut tampered = base.shards[0].clone();
        tampered.instances[0].source.push(' ');
        assert_ne!(tampered.content_hash(), base.shards[0].content_hash());
    }

    #[test]
    fn plan_union_matches_the_unsharded_selection() {
        let config = fast_config();
        let plan = ShardPlan::plan(Platform::CoronaMi50, &config);
        // Reconstruct the unsharded selection.
        let mut instances = instances_for(Platform::CoronaMi50, config.scale);
        let max_points = 220; // DatasetScale::Fast::max_points()
        let mut rng = StdRng::seed_from_u64(config.seed ^ Platform::CoronaMi50 as u64);
        instances.shuffle(&mut rng);
        instances.truncate(max_points);
        assert_eq!(plan.instance_count(), instances.len());
        let mut expected: Vec<String> = instances.iter().map(|i| i.describe()).collect();
        let mut planned: Vec<String> = plan
            .shards
            .iter()
            .flat_map(|s| s.instances.iter().map(|i| i.describe()))
            .collect();
        expected.sort_unstable();
        planned.sort_unstable();
        assert_eq!(expected, planned);
    }
}
