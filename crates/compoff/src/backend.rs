//! The COMPOFF MLP as a `pg-engine` backend.
//!
//! Lives here (not in `pg-engine`) so the engine facade stays below every
//! model crate in the dependency graph — see `pg_gnn::backend` for the
//! full rationale.

use crate::CompoffModel;
use pg_advisor::KernelInstance;
use pg_engine::{EngineError, PredictionContext, RuntimePredictor};

/// The COMPOFF MLP baseline as a backend. GPU-only, as in the paper.
pub struct CompoffBackend {
    model: CompoffModel,
}

impl CompoffBackend {
    /// Serve predictions from a trained COMPOFF model.
    pub fn new(model: CompoffModel) -> Self {
        Self { model }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CompoffModel {
        &self.model
    }
}

impl RuntimePredictor for CompoffBackend {
    fn name(&self) -> &str {
        "compoff"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError> {
        if !ctx.platform().is_gpu() {
            return Err(EngineError::BackendUnavailable(format!(
                "COMPOFF models GPU offloading only (paper Section V-D); engine serves {}",
                ctx.platform().name()
            )));
        }
        let ast = ctx.ast(&instance.source)?;
        Ok(f64::from(self.model.predict_ast(
            &ast,
            instance.launch.teams,
            instance.launch.threads,
        )))
    }
}
