//! # pg-compoff
//!
//! The COMPOFF baseline of the paper's comparison (Section V-D): a portable
//! cost model that statically predicts the runtime of OpenMP GPU offloading
//! from hand-engineered kernel features fed into a multi-layer perceptron.
//! As in the paper, COMPOFF is GPU-only — it is trained and evaluated on the
//! GPU platforms' data points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod features;
pub mod mlp;

pub use backend::CompoffBackend;
pub use features::{extract, extract_from_ast, CompoffFeatures, COMPOFF_FEATURE_DIM};
pub use mlp::Mlp;

use pg_dataset::PlatformDataset;
use pg_tensor::{metrics, Adam, AdamConfig, Matrix, MinMaxScaler, TargetTransform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Training configuration for the COMPOFF baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompoffConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for initialisation, shuffling and splitting.
    pub seed: u64,
    /// Hidden layer sizes of the MLP.
    pub hidden: [usize; 2],
}

impl Default for CompoffConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 16,
            learning_rate: 3e-3,
            seed: 42,
            hidden: [32, 16],
        }
    }
}

impl CompoffConfig {
    /// A reduced configuration for tests.
    pub fn fast() -> Self {
        Self {
            epochs: 15,
            ..Self::default()
        }
    }
}

/// One validation prediction of the COMPOFF model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompoffPrediction {
    /// Data-point id.
    pub id: usize,
    /// Application name.
    pub application: String,
    /// Ground-truth runtime (ms).
    pub actual_ms: f32,
    /// Predicted runtime (ms).
    pub predicted_ms: f32,
}

/// Result of training the baseline on one platform dataset.
#[derive(Debug, Clone)]
pub struct CompoffOutcome {
    /// The trained model.
    pub model: CompoffModel,
    /// Validation-set predictions.
    pub validation: Vec<CompoffPrediction>,
    /// Validation RMSE (ms).
    pub rmse_ms: f32,
    /// Validation RMSE normalised by the runtime range.
    pub norm_rmse: f32,
}

/// The full COMPOFF cost model: feature scaler + target transform + MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompoffModel {
    scaler: MinMaxScaler,
    target: TargetTransform,
    mlp: Mlp,
}

impl CompoffModel {
    /// Predict the runtime (ms) of a kernel given its source and launch
    /// configuration.
    pub fn predict(&self, source: &str, teams: u64, threads: u64) -> Option<f32> {
        let features = features::extract(source, teams, threads).ok()?;
        Some(self.predict_features(&features))
    }

    /// Predict the runtime (ms) from an already-parsed kernel AST — the
    /// entry point for callers (such as the `pg-engine` backend) that cache
    /// parsed frontends across predictions.
    pub fn predict_ast(&self, ast: &pg_frontend::Ast, teams: u64, threads: u64) -> f32 {
        self.predict_features(&features::extract_from_ast(ast, teams, threads))
    }

    /// Predict the runtime (ms) from an already-extracted feature vector.
    pub fn predict_features(&self, features: &CompoffFeatures) -> f32 {
        let scaled = self.scaler.transform(&features.to_vector());
        let encoded = self.mlp.predict(&scaled);
        self.target.decode(encoded).max(0.0)
    }
}

/// Train the COMPOFF baseline and keep only the deployable model bundle
/// (feature scaler + target transform + MLP), discarding the validation
/// bookkeeping of [`train`].
pub fn train_model(dataset: &PlatformDataset, config: &CompoffConfig) -> CompoffModel {
    train(dataset, config).model
}

/// Train the COMPOFF baseline on one (GPU) platform dataset, using the same
/// 9:1 split seed as the ParaGraph model so both see identical validation
/// points.
pub fn train(dataset: &PlatformDataset, config: &CompoffConfig) -> CompoffOutcome {
    let (train_idx, val_idx) = dataset.split(config.seed);

    // Feature extraction for every point (parallel).
    let features: Vec<CompoffFeatures> = dataset
        .points
        .par_iter()
        .map(|p| {
            features::extract(&p.source, p.teams, p.threads)
                .expect("generated kernel sources always parse")
        })
        .collect();
    let vectors: Vec<Vec<f32>> = features.iter().map(CompoffFeatures::to_vector).collect();

    // Scalers fitted on the training split.
    let train_vectors: Vec<Vec<f32>> = train_idx.iter().map(|&i| vectors[i].clone()).collect();
    let scaler = MinMaxScaler::fit(&train_vectors);
    let train_runtimes: Vec<f32> = train_idx
        .iter()
        .map(|&i| dataset.points[i].runtime_ms as f32)
        .collect();
    let target = TargetTransform::fit_log1p(&train_runtimes);

    let scaled: Vec<Vec<f32>> = vectors.iter().map(|v| scaler.transform(v)).collect();
    let encoded: Vec<f32> = dataset
        .points
        .iter()
        .map(|p| target.encode(p.runtime_ms as f32))
        .collect();

    // Train the MLP.
    let mut mlp = Mlp::new(
        &[COMPOFF_FEATURE_DIM, config.hidden[0], config.hidden[1], 1],
        config.seed,
    );
    let mut adam = Adam::new(AdamConfig {
        learning_rate: config.learning_rate,
        ..AdamConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc0ff);
    let mut order = train_idx.clone();
    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        for batch in order.chunks(config.batch_size.max(1)) {
            let results: Vec<(f32, Vec<Matrix>)> = batch
                .iter()
                .map(|&i| mlp.loss_and_gradients(&scaled[i], encoded[i]))
                .collect();
            let batch_len = results.len().max(1) as f32;
            let mut mean_grads = results[0].1.clone();
            for (_, grads) in results.iter().skip(1) {
                for (acc, g) in mean_grads.iter_mut().zip(grads.iter()) {
                    acc.add_assign(g);
                }
            }
            for g in &mut mean_grads {
                *g = g.scale(1.0 / batch_len);
            }
            adam.begin_step();
            for (key, (p, g)) in mlp
                .parameters_mut()
                .into_iter()
                .zip(mean_grads.iter())
                .enumerate()
            {
                adam.step(key, p, g);
            }
        }
    }

    let model = CompoffModel {
        scaler,
        target,
        mlp,
    };

    // Validation predictions.
    let validation: Vec<CompoffPrediction> = val_idx
        .iter()
        .map(|&i| {
            let p = &dataset.points[i];
            CompoffPrediction {
                id: p.id,
                application: p.application.clone(),
                actual_ms: p.runtime_ms as f32,
                predicted_ms: model.predict_features(&features[i]),
            }
        })
        .collect();
    let predicted: Vec<f32> = validation.iter().map(|v| v.predicted_ms).collect();
    let actual: Vec<f32> = validation.iter().map(|v| v.actual_ms).collect();
    let rmse_ms = metrics::rmse(&predicted, &actual);
    let range = metrics::value_range(&actual);
    let norm_rmse = if range > 0.0 { rmse_ms / range } else { 0.0 };

    CompoffOutcome {
        model,
        validation,
        rmse_ms,
        norm_rmse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};
    use pg_perfsim::Platform;

    fn gpu_dataset() -> PlatformDataset {
        collect_platform(
            Platform::SummitV100,
            &PipelineConfig {
                scale: DatasetScale::Fast,
                seed: 11,
                noise_sigma: 0.02,
            },
        )
    }

    #[test]
    fn compoff_trains_and_produces_reasonable_error() {
        let ds = gpu_dataset();
        let outcome = train(&ds, &CompoffConfig::fast());
        assert!(!outcome.validation.is_empty());
        assert!(outcome.rmse_ms.is_finite());
        assert!(
            outcome.norm_rmse < 0.6,
            "COMPOFF normalised RMSE {} is unreasonably high",
            outcome.norm_rmse
        );
        // Predictions must be non-negative runtimes.
        assert!(outcome.validation.iter().all(|v| v.predicted_ms >= 0.0));
    }

    #[test]
    fn training_is_deterministic() {
        let ds = gpu_dataset();
        let a = train(&ds, &CompoffConfig::fast());
        let b = train(&ds, &CompoffConfig::fast());
        assert_eq!(a.rmse_ms, b.rmse_ms);
        assert_eq!(a.validation, b.validation);
    }

    #[test]
    fn model_predicts_from_raw_source() {
        let ds = gpu_dataset();
        let outcome = train(&ds, &CompoffConfig::fast());
        let point = &ds.points[0];
        let prediction = outcome
            .model
            .predict(&point.source, point.teams, point.threads)
            .unwrap();
        assert!(prediction.is_finite() && prediction >= 0.0);
        assert!(outcome.model.predict("not a kernel", 1, 1).is_none());
    }
}
