//! The COMPOFF regressor: a fully connected feed-forward network
//! (multi-layer perceptron), as described in the COMPOFF paper and in
//! Section II-C of the ParaGraph paper ("effectively stacked layers of
//! linear regression").

use pg_tensor::{init, Matrix, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A feed-forward network with ReLU activations between layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    weights: Vec<Matrix>,
    biases: Vec<Matrix>,
}

impl Mlp {
    /// Create an MLP with the given layer sizes, e.g. `[12, 32, 16, 1]`.
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for pair in layer_sizes.windows(2) {
            weights.push(init::he_uniform(&mut rng, pair[0], pair[1]));
            biases.push(Matrix::zeros(1, pair[1]));
        }
        Self { weights, biases }
    }

    /// Number of layers (weight matrices).
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights[0].rows()
    }

    /// Borrow all parameters in a stable order (w0, b0, w1, b1, ...).
    pub fn parameters(&self) -> Vec<&Matrix> {
        self.weights
            .iter()
            .zip(self.biases.iter())
            .flat_map(|(w, b)| [w, b])
            .collect()
    }

    /// Mutably borrow all parameters in the same order.
    pub fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        self.weights
            .iter_mut()
            .zip(self.biases.iter_mut())
            .flat_map(|(w, b)| [w as &mut Matrix, b as &mut Matrix])
            .collect()
    }

    /// Predict the scalar output for one input vector.
    pub fn predict(&self, input: &[f32]) -> f32 {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let mut x = Matrix::row_vector(input);
        for (i, (w, b)) in self.weights.iter().zip(self.biases.iter()).enumerate() {
            x = x.matmul(w).add_row_broadcast(b);
            if i + 1 < self.weights.len() {
                x.map_inplace(|v| v.max(0.0));
            }
        }
        x.get(0, 0)
    }

    /// Compute the MSE loss and parameter gradients for one training sample.
    /// Gradients are aligned with [`Mlp::parameters`].
    pub fn loss_and_gradients(&self, input: &[f32], target: f32) -> (f32, Vec<Matrix>) {
        let mut tape = Tape::new();
        let param_vars: Vec<_> = self
            .parameters()
            .iter()
            .map(|p| tape.leaf((*p).clone()))
            .collect();
        let mut x = tape.leaf(Matrix::row_vector(input));
        for layer in 0..self.weights.len() {
            let w = param_vars[2 * layer];
            let b = param_vars[2 * layer + 1];
            x = tape.matmul(x, w);
            x = tape.add_row_broadcast(x, b);
            if layer + 1 < self.weights.len() {
                x = tape.relu(x);
            }
        }
        let loss = tape.mse_loss(x, &[target]);
        tape.backward(loss);
        let grads = param_vars.iter().map(|&v| tape.grad(v)).collect();
        (tape.value(loss).get(0, 0), grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_tensor::{Adam, AdamConfig};
    use rand::Rng;

    #[test]
    fn mlp_shapes_and_parameters() {
        let mlp = Mlp::new(&[12, 32, 16, 1], 1);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.input_dim(), 12);
        assert_eq!(mlp.parameters().len(), 6);
        let mut mlp2 = mlp.clone();
        assert_eq!(mlp2.parameters_mut().len(), 6);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn predict_checks_input_length() {
        let mlp = Mlp::new(&[4, 8, 1], 1);
        mlp.predict(&[1.0, 2.0]);
    }

    #[test]
    fn gradients_match_parameter_shapes() {
        let mlp = Mlp::new(&[5, 8, 1], 3);
        let (loss, grads) = mlp.loss_and_gradients(&[0.1, 0.2, 0.3, 0.4, 0.5], 0.7);
        assert!(loss.is_finite());
        assert_eq!(grads.len(), mlp.parameters().len());
        for (g, p) in grads.iter().zip(mlp.parameters()) {
            assert_eq!(g.shape(), p.shape());
        }
    }

    #[test]
    fn mlp_learns_a_nonlinear_function() {
        // y = x0^2 + 0.5*x1 — learnable by a small MLP.
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&[2, 16, 8, 1], 5);
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 5e-3,
            ..AdamConfig::default()
        });
        let mut last_loss = f32::MAX;
        for _ in 0..3000 {
            let x0: f32 = rng.gen_range(-1.0..1.0);
            let x1: f32 = rng.gen_range(-1.0..1.0);
            let y = x0 * x0 + 0.5 * x1;
            let (loss, grads) = mlp.loss_and_gradients(&[x0, x1], y);
            last_loss = loss;
            adam.begin_step();
            for (key, (p, g)) in mlp
                .parameters_mut()
                .into_iter()
                .zip(grads.iter())
                .enumerate()
            {
                adam.step(key, p, g);
            }
        }
        assert!(
            last_loss < 0.05,
            "MLP failed to fit, final loss {last_loss}"
        );
        // Spot-check a prediction.
        let pred = mlp.predict(&[0.5, 0.5]);
        assert!(
            (pred - 0.5).abs() < 0.2,
            "prediction {pred} too far from 0.5"
        );
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
