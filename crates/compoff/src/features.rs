//! COMPOFF-style hand-engineered kernel features.
//!
//! COMPOFF (Mishra et al., IPDPSW'22) predicts the cost of OpenMP offloading
//! from manually counted kernel characteristics — numbers of operations,
//! loop structure, transferred data — fed into a multi-layer perceptron.
//! This module extracts the equivalent feature vector from a kernel's source
//! using the `pg-frontend` analyses.

use pg_frontend::analysis::{self, ConstEnv};
use pg_frontend::{parse, Ast, AstKind, FrontendError};
use serde::{Deserialize, Serialize};

/// Number of features in the COMPOFF vector.
pub const COMPOFF_FEATURE_DIM: usize = 12;

/// The hand-engineered feature vector of one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompoffFeatures {
    /// Floating-point operations per kernel execution.
    pub flops: f64,
    /// Integer/address operations per kernel execution.
    pub int_ops: f64,
    /// Array loads per kernel execution.
    pub loads: f64,
    /// Array stores per kernel execution.
    pub stores: f64,
    /// Intrinsic / function calls.
    pub calls: f64,
    /// Total loop iterations.
    pub iterations: f64,
    /// Iterations of the distributed (parallel) loop space.
    pub parallel_iterations: f64,
    /// Maximum loop nest depth.
    pub loop_depth: f64,
    /// Bytes transferred host→device.
    pub bytes_to_device: f64,
    /// Bytes transferred device→host.
    pub bytes_from_device: f64,
    /// Number of teams in the launch configuration.
    pub teams: f64,
    /// Number of threads in the launch configuration.
    pub threads: f64,
}

impl CompoffFeatures {
    /// The raw feature vector (before scaling), log-compressed where the
    /// quantity spans many orders of magnitude.
    pub fn to_vector(&self) -> Vec<f32> {
        let log = |v: f64| ((1.0 + v.max(0.0)).ln()) as f32;
        vec![
            log(self.flops),
            log(self.int_ops),
            log(self.loads),
            log(self.stores),
            log(self.calls),
            log(self.iterations),
            log(self.parallel_iterations),
            self.loop_depth as f32,
            log(self.bytes_to_device),
            log(self.bytes_from_device),
            log(self.teams),
            log(self.threads),
        ]
    }
}

/// Extract COMPOFF features from a kernel source plus its launch
/// configuration.
pub fn extract(source: &str, teams: u64, threads: u64) -> Result<CompoffFeatures, FrontendError> {
    let ast = parse(source)?;
    Ok(extract_from_ast(&ast, teams, threads))
}

/// Extract COMPOFF features from an already-parsed kernel.
pub fn extract_from_ast(ast: &Ast, teams: u64, threads: u64) -> CompoffFeatures {
    let env = ConstEnv::new();
    let work = analysis::estimate_work(ast, ast.root(), &env);
    let (bytes_to, bytes_from) = transfer_bytes(ast);
    let parallel_iterations = distributed_iterations(ast, &env);
    CompoffFeatures {
        flops: work.flops,
        int_ops: work.int_ops,
        loads: work.loads,
        stores: work.stores,
        calls: work.calls,
        iterations: work.iterations,
        parallel_iterations,
        loop_depth: work.max_loop_depth as f64,
        bytes_to_device: bytes_to,
        bytes_from_device: bytes_from,
        teams: teams as f64,
        threads: threads as f64,
    }
}

/// Sum the data-transfer bytes declared by the `map` clauses of the kernel's
/// OpenMP directive. Array sections are of the form `name[0:extent]` with a
/// literal extent (problem sizes are substituted before parsing); each
/// element is a 4-byte float.
fn transfer_bytes(ast: &Ast) -> (f64, f64) {
    let mut to_device = 0.0;
    let mut from_device = 0.0;
    for (_, node) in ast.iter() {
        let Some(omp) = &node.data.omp else { continue };
        for (direction, item) in omp.map_items() {
            let elements = parse_section_extent(item).unwrap_or(0.0);
            let bytes = elements * 4.0;
            match direction {
                pg_frontend::MapDirection::To => to_device += bytes,
                pg_frontend::MapDirection::From => from_device += bytes,
                pg_frontend::MapDirection::ToFrom => {
                    to_device += bytes;
                    from_device += bytes;
                }
                pg_frontend::MapDirection::Alloc => {}
            }
        }
    }
    (to_device, from_device)
}

/// Parse the element count out of an array section `name[lo:extent]`.
fn parse_section_extent(item: &str) -> Option<f64> {
    let open = item.find('[')?;
    let close = item.rfind(']')?;
    let section = &item[open + 1..close];
    let extent = section.split(':').nth(1)?.trim();
    extent.parse::<f64>().ok()
}

/// Trip count of the distributed loop space (outer loop, times the second
/// level when the directive collapses the nest).
fn distributed_iterations(ast: &Ast, env: &ConstEnv) -> f64 {
    let directive = ast
        .preorder()
        .into_iter()
        .find(|&id| ast.kind(id).is_omp_directive());
    let (loop_node, collapse) = match directive {
        Some(d) => {
            let collapse = ast
                .node(d)
                .data
                .omp
                .as_ref()
                .map(|o| o.collapse_depth())
                .unwrap_or(1);
            (
                ast.preorder_from(d)
                    .into_iter()
                    .find(|&id| ast.kind(id) == AstKind::ForStmt),
                collapse,
            )
        }
        None => (ast.find_first(AstKind::ForStmt), 1),
    };
    let Some(outer) = loop_node else { return 1.0 };
    analysis::loop_nest(ast, outer, env)
        .iter()
        .take(collapse as usize)
        .map(|level| {
            level
                .info
                .as_ref()
                .and_then(|i| i.trip_count)
                .unwrap_or(analysis::DEFAULT_UNKNOWN_TRIP_COUNT) as f64
        })
        .product::<f64>()
        .max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GPU_MEM_KERNEL: &str = r#"
        void k(float *a, float *b, float *c) {
            #pragma omp target teams distribute parallel for collapse(2) num_teams(80) thread_limit(128) map(to: a[0:16384], b[0:16384]) map(from: c[0:16384])
            for (int i = 0; i < 128; i++) {
                for (int j = 0; j < 128; j++) {
                    float sum = 0.0;
                    for (int k2 = 0; k2 < 128; k2++) {
                        sum += a[i * 128 + k2] * b[k2 * 128 + j];
                    }
                    c[i * 128 + j] = sum;
                }
            }
        }
    "#;

    #[test]
    fn feature_vector_has_fixed_dimension() {
        let f = extract(GPU_MEM_KERNEL, 80, 128).unwrap();
        assert_eq!(f.to_vector().len(), COMPOFF_FEATURE_DIM);
        assert!(f.to_vector().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_capture_work_and_transfers() {
        let f = extract(GPU_MEM_KERNEL, 80, 128).unwrap();
        assert!(
            f.flops > 1e6,
            "matmul 128^3 must have millions of flops, got {}",
            f.flops
        );
        assert_eq!(f.loop_depth, 3.0);
        assert_eq!(f.bytes_to_device, 2.0 * 16384.0 * 4.0);
        assert_eq!(f.bytes_from_device, 16384.0 * 4.0);
        assert_eq!(f.parallel_iterations, 128.0 * 128.0);
        assert_eq!(f.teams, 80.0);
        assert_eq!(f.threads, 128.0);
    }

    #[test]
    fn kernel_without_map_clauses_has_zero_transfer() {
        let src = r#"
            void k(float *a) {
                #pragma omp target teams distribute parallel for
                for (int i = 0; i < 1024; i++) { a[i] = 0.0; }
            }
        "#;
        let f = extract(src, 40, 64).unwrap();
        assert_eq!(f.bytes_to_device, 0.0);
        assert_eq!(f.bytes_from_device, 0.0);
        assert_eq!(f.parallel_iterations, 1024.0);
    }

    #[test]
    fn section_extent_parsing() {
        assert_eq!(parse_section_extent("a[0:1024]"), Some(1024.0));
        assert_eq!(parse_section_extent("data[0:65536]"), Some(65536.0));
        assert_eq!(parse_section_extent("scalar"), None);
    }

    #[test]
    fn larger_kernels_have_larger_features() {
        let small = extract(
            "void k(float *a) {\n#pragma omp target teams distribute parallel for\nfor (int i = 0; i < 64; i++) { a[i] = a[i] * 2.0; } }",
            40,
            64,
        )
        .unwrap();
        let large = extract(
            "void k(float *a) {\n#pragma omp target teams distribute parallel for\nfor (int i = 0; i < 65536; i++) { a[i] = a[i] * 2.0; } }",
            40,
            64,
        )
        .unwrap();
        assert!(large.flops > small.flops);
        assert!(large.to_vector()[0] > small.to_vector()[0]);
    }

    #[test]
    fn invalid_source_is_an_error() {
        assert!(extract("definitely not C", 1, 1).is_err());
    }
}
