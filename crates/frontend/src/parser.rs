//! Recursive-descent parser for the C subset used by the benchmark kernels.
//!
//! The parser produces the Clang-style [`Ast`] defined in [`crate::ast`]. It
//! supports exactly the constructs that appear in the nine benchmark
//! applications of the paper (Table I): function definitions, scalar and
//! array declarations, `for`/`while`/`if`/`return` statements, the usual
//! C expression grammar, and OpenMP pragmas attached to the statement that
//! follows them.
//!
//! The parser treats its input as untrusted: every recursive production is
//! depth-gated against [`ParseOptions::max_nesting_depth`] (so a
//! parenthesis or brace bomb yields a typed error instead of a stack
//! overflow), node creation goes through an arena budget check
//! ([`ParseOptions::max_ast_nodes`]), and nodes live in the flat `Vec`
//! arena of [`Ast`] — ids, not per-node boxes, following the arena/slot
//! discipline of parser combinator libraries.

use crate::ast::{Ast, AstKind, NodeData, NodeId};
use crate::error::{FrontendError, FrontendErrorKind};
use crate::lexer::tokenize_with_options;
use crate::limits::ParseOptions;
use crate::omp::{self, OmpDirectiveKind};
use crate::token::{Keyword, Punct, SourceLocation, Token, TokenKind};

/// Parse a full translation unit with the default resource budget.
pub fn parse(source: &str) -> Result<Ast, FrontendError> {
    parse_with_options(source, ParseOptions::default())
}

/// Parse a full translation unit under an explicit [`ParseOptions`] budget.
///
/// Exceeding any cap returns a [`FrontendError`] whose
/// [`kind`](FrontendError::kind) is one of the limit variants
/// (`SourceTooLarge`, `TooManyTokens`, `NestingTooDeep`, `TooManyNodes`);
/// the function never panics or overflows the stack, whatever the input.
pub fn parse_with_options(source: &str, options: ParseOptions) -> Result<Ast, FrontendError> {
    if source.len() > options.max_source_bytes {
        return Err(FrontendError::lex(
            SourceLocation { line: 1, column: 1 },
            format!(
                "source of {} bytes exceeds the {}-byte budget",
                source.len(),
                options.max_source_bytes
            ),
        )
        .with_kind(FrontendErrorKind::SourceTooLarge {
            actual: source.len(),
            limit: options.max_source_bytes,
        }));
    }
    let tokens = tokenize_with_options(source, options)?;
    Parser::new(tokens, options).parse_translation_unit()
}

/// Parser state.
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ast: Ast,
    options: ParseOptions,
    /// Current combined statement/expression nesting depth (gated against
    /// `options.max_nesting_depth`).
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>, options: ParseOptions) -> Self {
        Self {
            tokens,
            pos: 0,
            ast: Ast::new(),
            options,
            depth: 0,
        }
    }

    // -- budget guards -------------------------------------------------------

    /// Enter one nesting level of the grammar; paired with [`Self::leave`].
    /// Every mutually-recursive production passes through here, so the
    /// parser's stack usage is bounded by `max_nesting_depth` times a small
    /// constant number of frames.
    fn enter(&mut self) -> Result<(), FrontendError> {
        self.depth += 1;
        if self.depth > self.options.max_nesting_depth {
            self.depth -= 1;
            return Err(FrontendError::parse(
                self.location(),
                format!(
                    "nesting exceeds the {}-level budget",
                    self.options.max_nesting_depth
                ),
            )
            .with_kind(FrontendErrorKind::NestingTooDeep {
                limit: self.options.max_nesting_depth,
            }));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Create an AST node, enforcing the arena budget.
    fn add_node(&mut self, kind: AstKind, data: NodeData) -> Result<NodeId, FrontendError> {
        if self.ast.len() >= self.options.max_ast_nodes {
            return Err(FrontendError::parse(
                self.location(),
                format!("AST exceeds the {}-node budget", self.options.max_ast_nodes),
            )
            .with_kind(FrontendErrorKind::TooManyNodes {
                limit: self.options.max_ast_nodes,
            }));
        }
        Ok(self.ast.add_node(kind, data))
    }

    /// [`Self::add_node`] with default data.
    fn add_simple(&mut self, kind: AstKind) -> Result<NodeId, FrontendError> {
        self.add_node(kind, NodeData::default())
    }

    // -- token helpers -------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn location(&self) -> SourceLocation {
        self.tokens[self.pos.min(self.tokens.len() - 1)].location
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Record `loc` as the source location of node `id`.
    fn stamp(&mut self, id: NodeId, loc: SourceLocation) {
        self.ast.node_mut(id).data.loc = Some(loc);
    }

    fn check_punct(&self, p: Punct) -> bool {
        matches!(self.peek(), TokenKind::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.check_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), FrontendError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(FrontendError::parse(
                self.location(),
                format!("expected '{}', found {:?}", p.spelling(), self.peek()),
            ))
        }
    }

    fn check_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.check_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_identifier(&mut self) -> Result<String, FrontendError> {
        match self.bump() {
            TokenKind::Identifier(name) => Ok(name),
            other => Err(FrontendError::parse(
                self.location(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// True when the upcoming tokens start a type specifier.
    fn at_type_specifier(&self) -> bool {
        matches!(self.peek(), TokenKind::Keyword(kw) if kw.is_type_specifier())
    }

    // -- top level ------------------------------------------------------------

    fn parse_translation_unit(mut self) -> Result<Ast, FrontendError> {
        while !self.at_eof() {
            // Stray semicolons at the top level are tolerated.
            if self.eat_punct(Punct::Semicolon) {
                continue;
            }
            let root = self.ast.root();
            self.parse_external_declaration(root)?;
        }
        debug_assert!(
            self.ast.validate().is_ok(),
            "parser produced an invalid AST"
        );
        Ok(self.ast)
    }

    fn parse_external_declaration(&mut self, parent: NodeId) -> Result<(), FrontendError> {
        if !self.at_type_specifier() {
            return Err(FrontendError::parse(
                self.location(),
                format!("expected a declaration, found {:?}", self.peek()),
            ));
        }
        let ty = self.parse_type_specifier()?;
        let name = self.expect_identifier()?;

        if self.check_punct(Punct::LParen) {
            self.parse_function_definition(parent, ty, name)
        } else {
            // Global variable declaration(s).
            let decl_stmt = self.add_simple(AstKind::DeclStmt)?;
            self.ast.attach(parent, decl_stmt);
            self.parse_declarator_rest(decl_stmt, &ty, name)?;
            while self.eat_punct(Punct::Comma) {
                let next_name = self.expect_identifier()?;
                self.parse_declarator_rest(decl_stmt, &ty, next_name)?;
            }
            self.expect_punct(Punct::Semicolon)?;
            Ok(())
        }
    }

    fn parse_function_definition(
        &mut self,
        parent: NodeId,
        return_ty: String,
        name: String,
    ) -> Result<(), FrontendError> {
        let loc = self.location();
        let func = self.add_node(
            AstKind::FunctionDecl,
            NodeData {
                name: Some(name),
                ty: Some(return_ty),
                ..NodeData::default()
            },
        )?;
        self.stamp(func, loc);
        self.ast.attach(parent, func);
        self.expect_punct(Punct::LParen)?;
        if !self.check_punct(Punct::RParen) {
            // `(void)` parameter list.
            if self.check_keyword(Keyword::Void)
                && matches!(self.peek_ahead(1), TokenKind::Punct(Punct::RParen))
            {
                self.bump();
            } else {
                loop {
                    let pty = self.parse_type_specifier()?;
                    let pname = if matches!(self.peek(), TokenKind::Identifier(_)) {
                        self.expect_identifier()?
                    } else {
                        String::new()
                    };
                    let mut dims = Vec::new();
                    while self.eat_punct(Punct::LBracket) {
                        if self.check_punct(Punct::RBracket) {
                            dims.push(None);
                        } else {
                            let dim_expr = self.parse_expression(func)?;
                            dims.push(self.ast.node(dim_expr).data.int_value);
                            // Detach dimension expressions from the function;
                            // they live only as the recorded constant.
                            self.detach_last_child(func, dim_expr);
                        }
                        self.expect_punct(Punct::RBracket)?;
                    }
                    let parm_loc = self.location();
                    let parm = self.add_node(
                        AstKind::ParmVarDecl,
                        NodeData {
                            name: Some(pname),
                            ty: Some(pty),
                            array_dims: dims,
                            ..NodeData::default()
                        },
                    )?;
                    self.stamp(parm, parm_loc);
                    self.ast.attach(func, parm);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        if self.eat_punct(Punct::Semicolon) {
            // Prototype without a body.
            return Ok(());
        }
        self.parse_compound_statement(func)?;
        Ok(())
    }

    /// Remove a node that was temporarily attached while parsing a
    /// sub-expression that should not remain in the tree (array dimension
    /// expressions of parameters). Only valid for the most recent child.
    fn detach_last_child(&mut self, parent: NodeId, child: NodeId) {
        let children = &mut self.ast.node_mut(parent).children;
        if children.last() == Some(&child) {
            children.pop();
            self.ast.node_mut(child).parent = None;
        }
    }

    fn parse_type_specifier(&mut self) -> Result<String, FrontendError> {
        let mut parts: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Keyword(kw) if kw.is_type_specifier() => {
                    let kw = *kw;
                    self.bump();
                    if kw == Keyword::Struct {
                        let name = self.expect_identifier()?;
                        parts.push(format!("struct {name}"));
                    } else {
                        parts.push(kw.spelling().to_string());
                    }
                }
                TokenKind::Punct(Punct::Star) => {
                    self.bump();
                    parts.push("*".to_string());
                }
                _ => break,
            }
        }
        if parts.is_empty() {
            return Err(FrontendError::parse(
                self.location(),
                "expected type specifier",
            ));
        }
        Ok(parts.join(" "))
    }

    // -- statements -----------------------------------------------------------

    fn parse_compound_statement(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.expect_punct(Punct::LBrace)?;
        let compound = self.add_simple(AstKind::CompoundStmt)?;
        self.ast.attach(parent, compound);
        while !self.check_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(FrontendError::parse(self.location(), "unterminated block"));
            }
            self.parse_statement(compound)?;
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(compound)
    }

    fn parse_statement(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        let loc = self.location();
        let id = self.parse_statement_inner(parent)?;
        if self.ast.node(id).data.loc.is_none() {
            self.stamp(id, loc);
        }
        Ok(id)
    }

    fn parse_statement_inner(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.enter()?;
        let result = self.parse_statement_variants(parent);
        self.leave();
        result
    }

    fn parse_statement_variants(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        match self.peek().clone() {
            TokenKind::OmpPragma(text) => {
                self.bump();
                self.parse_omp_directive(parent, &text)
            }
            TokenKind::Punct(Punct::LBrace) => self.parse_compound_statement(parent),
            TokenKind::Punct(Punct::Semicolon) => {
                self.bump();
                let null = self.add_simple(AstKind::NullStmt)?;
                self.ast.attach(parent, null);
                Ok(null)
            }
            TokenKind::Keyword(Keyword::For) => self.parse_for_statement(parent),
            TokenKind::Keyword(Keyword::While) => self.parse_while_statement(parent),
            TokenKind::Keyword(Keyword::If) => self.parse_if_statement(parent),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let ret = self.add_simple(AstKind::ReturnStmt)?;
                self.ast.attach(parent, ret);
                if !self.check_punct(Punct::Semicolon) {
                    let value = self.parse_expression(ret)?;
                    let _ = value;
                }
                self.expect_punct(Punct::Semicolon)?;
                Ok(ret)
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                let node = self.add_simple(AstKind::BreakStmt)?;
                self.ast.attach(parent, node);
                Ok(node)
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                let node = self.add_simple(AstKind::ContinueStmt)?;
                self.ast.attach(parent, node);
                Ok(node)
            }
            TokenKind::Keyword(kw) if kw.is_type_specifier() => {
                self.parse_declaration_statement(parent)
            }
            _ => {
                let expr = self.parse_expression(parent)?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(expr)
            }
        }
    }

    fn parse_omp_directive(&mut self, parent: NodeId, text: &str) -> Result<NodeId, FrontendError> {
        let directive = omp::parse_pragma(text);
        let kind = match directive.kind {
            OmpDirectiveKind::ParallelFor => AstKind::OmpParallelForDirective,
            OmpDirectiveKind::TargetTeamsDistributeParallelFor => {
                AstKind::OmpTargetTeamsDistributeParallelForDirective
            }
            OmpDirectiveKind::TargetData => AstKind::OmpTargetDataDirective,
            OmpDirectiveKind::Simd => AstKind::OmpSimdDirective,
            OmpDirectiveKind::Other => AstKind::OmpUnknownDirective,
        };
        let node = self.add_node(
            kind,
            NodeData {
                omp: Some(directive),
                ..NodeData::default()
            },
        )?;
        self.ast.attach(parent, node);
        // The associated statement (for loop-bound directives: the loop).
        self.parse_statement(node)?;
        Ok(node)
    }

    fn parse_declaration_statement(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        let decl_stmt = self.add_simple(AstKind::DeclStmt)?;
        self.ast.attach(parent, decl_stmt);
        let ty = self.parse_type_specifier()?;
        let name = self.expect_identifier()?;
        self.parse_declarator_rest(decl_stmt, &ty, name)?;
        while self.eat_punct(Punct::Comma) {
            let name = self.expect_identifier()?;
            self.parse_declarator_rest(decl_stmt, &ty, name)?;
        }
        self.expect_punct(Punct::Semicolon)?;
        Ok(decl_stmt)
    }

    /// Parse the part of a declarator after the identifier: optional array
    /// dimensions and an optional initialiser. Attaches a `VarDecl` to
    /// `decl_stmt`.
    fn parse_declarator_rest(
        &mut self,
        decl_stmt: NodeId,
        ty: &str,
        name: String,
    ) -> Result<NodeId, FrontendError> {
        let loc = self.location();
        let var = self.add_node(
            AstKind::VarDecl,
            NodeData {
                name: Some(name),
                ty: Some(ty.to_string()),
                ..NodeData::default()
            },
        )?;
        self.stamp(var, loc);
        self.ast.attach(decl_stmt, var);
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            if self.check_punct(Punct::RBracket) {
                dims.push(None);
            } else {
                let dim_expr = self.parse_expression(var)?;
                dims.push(self.ast.node(dim_expr).data.int_value);
                // Keep the dimension expression in the tree: it is part of
                // the declaration's syntax and contributes AST nodes exactly
                // like Clang's ConstantArrayType size expressions do not —
                // but keeping it preserves token order for NextToken edges.
            }
            self.expect_punct(Punct::RBracket)?;
        }
        self.ast.node_mut(var).data.array_dims = dims;
        if self.eat_punct(Punct::Assign) {
            if self.check_punct(Punct::LBrace) {
                self.parse_init_list(var)?;
            } else {
                self.parse_assignment_expression(var)?;
            }
        }
        Ok(var)
    }

    fn parse_init_list(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.enter()?;
        let result = self.parse_init_list_unguarded(parent);
        self.leave();
        result
    }

    fn parse_init_list_unguarded(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.expect_punct(Punct::LBrace)?;
        let list = self.add_simple(AstKind::InitListExpr)?;
        self.ast.attach(parent, list);
        if !self.check_punct(Punct::RBrace) {
            loop {
                if self.check_punct(Punct::LBrace) {
                    self.parse_init_list(list)?;
                } else {
                    self.parse_assignment_expression(list)?;
                }
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(list)
    }

    fn parse_for_statement(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.bump(); // for
        let for_stmt = self.add_simple(AstKind::ForStmt)?;
        self.ast.attach(parent, for_stmt);
        self.expect_punct(Punct::LParen)?;

        // Child 1: initialiser.
        if self.check_punct(Punct::Semicolon) {
            let null = self.add_simple(AstKind::NullStmt)?;
            self.ast.attach(for_stmt, null);
            self.bump();
        } else if self.at_type_specifier() {
            self.parse_declaration_statement(for_stmt)?;
        } else {
            self.parse_expression(for_stmt)?;
            self.expect_punct(Punct::Semicolon)?;
        }

        // Child 2: condition.
        if self.check_punct(Punct::Semicolon) {
            let null = self.add_simple(AstKind::NullStmt)?;
            self.ast.attach(for_stmt, null);
        } else {
            self.parse_expression(for_stmt)?;
        }
        self.expect_punct(Punct::Semicolon)?;

        // The increment is parsed now but attached *after* the body so the
        // child order matches the paper's convention [init, cond, body, inc].
        let increment = if self.check_punct(Punct::RParen) {
            None
        } else {
            Some(self.parse_expression_detached()?)
        };
        self.expect_punct(Punct::RParen)?;

        // Child 3: body.
        self.parse_statement(for_stmt)?;

        // Child 4: increment.
        match increment {
            Some(inc) => self.ast.attach(for_stmt, inc),
            None => {
                let null = self.add_simple(AstKind::NullStmt)?;
                self.ast.attach(for_stmt, null);
            }
        }
        Ok(for_stmt)
    }

    fn parse_while_statement(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.bump(); // while
        let while_stmt = self.add_simple(AstKind::WhileStmt)?;
        self.ast.attach(parent, while_stmt);
        self.expect_punct(Punct::LParen)?;
        self.parse_expression(while_stmt)?;
        self.expect_punct(Punct::RParen)?;
        self.parse_statement(while_stmt)?;
        Ok(while_stmt)
    }

    fn parse_if_statement(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        self.bump(); // if
        let if_stmt = self.add_simple(AstKind::IfStmt)?;
        self.ast.attach(parent, if_stmt);
        self.expect_punct(Punct::LParen)?;
        self.parse_expression(if_stmt)?;
        self.expect_punct(Punct::RParen)?;
        self.parse_statement(if_stmt)?;
        if self.eat_keyword(Keyword::Else) {
            self.parse_statement(if_stmt)?;
        }
        Ok(if_stmt)
    }

    // -- expressions ----------------------------------------------------------

    /// Parse an expression and attach it to `parent`.
    fn parse_expression(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        let expr = self.parse_expression_detached()?;
        self.ast.attach(parent, expr);
        Ok(expr)
    }

    /// Parse an expression without attaching it anywhere yet.
    fn parse_expression_detached(&mut self) -> Result<NodeId, FrontendError> {
        self.parse_assignment_detached()
    }

    /// Parse an assignment expression and attach it to `parent`.
    fn parse_assignment_expression(&mut self, parent: NodeId) -> Result<NodeId, FrontendError> {
        let expr = self.parse_assignment_detached()?;
        self.ast.attach(parent, expr);
        Ok(expr)
    }

    fn parse_assignment_detached(&mut self) -> Result<NodeId, FrontendError> {
        self.enter()?;
        let result = self.parse_assignment_unguarded();
        self.leave();
        result
    }

    fn parse_assignment_unguarded(&mut self) -> Result<NodeId, FrontendError> {
        let lhs = self.parse_conditional_detached()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(("=", AstKind::BinaryOperator)),
            TokenKind::Punct(Punct::PlusAssign) => Some(("+=", AstKind::CompoundAssignOperator)),
            TokenKind::Punct(Punct::MinusAssign) => Some(("-=", AstKind::CompoundAssignOperator)),
            TokenKind::Punct(Punct::StarAssign) => Some(("*=", AstKind::CompoundAssignOperator)),
            TokenKind::Punct(Punct::SlashAssign) => Some(("/=", AstKind::CompoundAssignOperator)),
            TokenKind::Punct(Punct::PercentAssign) => Some(("%=", AstKind::CompoundAssignOperator)),
            _ => None,
        };
        match op {
            Some((spelling, kind)) => {
                let loc = self.location();
                self.bump();
                let rhs = self.parse_assignment_detached()?;
                let node = self.add_node(kind, NodeData::op(spelling))?;
                self.stamp(node, loc);
                self.ast.attach(node, lhs);
                self.ast.attach(node, rhs);
                Ok(node)
            }
            None => Ok(lhs),
        }
    }

    fn parse_conditional_detached(&mut self) -> Result<NodeId, FrontendError> {
        self.enter()?;
        let result = self.parse_conditional_unguarded();
        self.leave();
        result
    }

    fn parse_conditional_unguarded(&mut self) -> Result<NodeId, FrontendError> {
        let cond = self.parse_binary_detached(1)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_expression_detached()?;
            self.expect_punct(Punct::Colon)?;
            let otherwise = self.parse_conditional_detached()?;
            let node = self.add_simple(AstKind::ConditionalOperator)?;
            self.ast.attach(node, cond);
            self.ast.attach(node, then);
            self.ast.attach(node, otherwise);
            Ok(node)
        } else {
            Ok(cond)
        }
    }

    fn binary_precedence(p: Punct) -> Option<(u8, &'static str)> {
        Some(match p {
            Punct::Star => (10, "*"),
            Punct::Slash => (10, "/"),
            Punct::Percent => (10, "%"),
            Punct::Plus => (9, "+"),
            Punct::Minus => (9, "-"),
            Punct::Shl => (8, "<<"),
            Punct::Shr => (8, ">>"),
            Punct::Lt => (7, "<"),
            Punct::Gt => (7, ">"),
            Punct::Le => (7, "<="),
            Punct::Ge => (7, ">="),
            Punct::Eq => (6, "=="),
            Punct::Ne => (6, "!="),
            Punct::Amp => (5, "&"),
            Punct::Caret => (4, "^"),
            Punct::Pipe => (3, "|"),
            Punct::AndAnd => (2, "&&"),
            Punct::OrOr => (1, "||"),
            _ => return None,
        })
    }

    fn parse_binary_detached(&mut self, min_prec: u8) -> Result<NodeId, FrontendError> {
        let mut lhs = self.parse_unary_detached()?;
        let next_op = |parser: &Self| match parser.peek() {
            TokenKind::Punct(p) => {
                Self::binary_precedence(*p).filter(|&(prec, _)| prec >= min_prec)
            }
            _ => None,
        };
        while let Some((prec, spelling)) = next_op(self) {
            let loc = self.location();
            self.bump();
            let rhs = self.parse_binary_detached(prec + 1)?;
            let node = self.add_node(AstKind::BinaryOperator, NodeData::op(spelling))?;
            self.stamp(node, loc);
            self.ast.attach(node, lhs);
            self.ast.attach(node, rhs);
            lhs = node;
        }
        Ok(lhs)
    }

    fn parse_unary_detached(&mut self) -> Result<NodeId, FrontendError> {
        self.enter()?;
        let result = self.parse_unary_unguarded();
        self.leave();
        result
    }

    fn parse_unary_unguarded(&mut self) -> Result<NodeId, FrontendError> {
        let prefix = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some("-"),
            TokenKind::Punct(Punct::Plus) => Some("+"),
            TokenKind::Punct(Punct::Not) => Some("!"),
            TokenKind::Punct(Punct::Tilde) => Some("~"),
            TokenKind::Punct(Punct::Star) => Some("*"),
            TokenKind::Punct(Punct::Amp) => Some("&"),
            TokenKind::Punct(Punct::PlusPlus) => Some("++"),
            TokenKind::Punct(Punct::MinusMinus) => Some("--"),
            _ => None,
        };
        if let Some(op) = prefix {
            let loc = self.location();
            self.bump();
            let operand = self.parse_unary_detached()?;
            let node = self.add_node(AstKind::UnaryOperator, NodeData::op(op))?;
            self.stamp(node, loc);
            self.ast.attach(node, operand);
            return Ok(node);
        }

        // sizeof(expr) / sizeof(type) — modelled as a UnaryOperator.
        if self.check_keyword(Keyword::Sizeof) {
            self.bump();
            let node = self.add_node(AstKind::UnaryOperator, NodeData::op("sizeof"))?;
            self.expect_punct(Punct::LParen)?;
            if self.at_type_specifier() {
                let ty = self.parse_type_specifier()?;
                self.ast.node_mut(node).data.ty = Some(ty);
            } else {
                let operand = self.parse_expression_detached()?;
                self.ast.attach(node, operand);
            }
            self.expect_punct(Punct::RParen)?;
            return Ok(node);
        }

        // C-style cast: '(' type ')' unary-expression.
        if self.check_punct(Punct::LParen) {
            if let TokenKind::Keyword(kw) = self.peek_ahead(1) {
                if kw.is_type_specifier() {
                    self.bump(); // (
                    let ty = self.parse_type_specifier()?;
                    self.expect_punct(Punct::RParen)?;
                    let operand = self.parse_unary_detached()?;
                    let node = self.add_node(
                        AstKind::CStyleCastExpr,
                        NodeData {
                            ty: Some(ty),
                            ..NodeData::default()
                        },
                    )?;
                    self.ast.attach(node, operand);
                    return Ok(node);
                }
            }
        }

        self.parse_postfix_detached()
    }

    fn parse_postfix_detached(&mut self) -> Result<NodeId, FrontendError> {
        let mut expr = self.parse_primary_detached()?;
        loop {
            let loc = self.location();
            match self.peek() {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let call = self.add_simple(AstKind::CallExpr)?;
                    self.stamp(call, loc);
                    self.ast.attach(call, expr);
                    if !self.check_punct(Punct::RParen) {
                        loop {
                            self.parse_assignment_expression(call)?;
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    expr = call;
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let subscript = self.add_simple(AstKind::ArraySubscriptExpr)?;
                    self.stamp(subscript, loc);
                    self.ast.attach(subscript, expr);
                    self.parse_expression(subscript)?;
                    self.expect_punct(Punct::RBracket)?;
                    expr = subscript;
                }
                TokenKind::Punct(Punct::Dot) | TokenKind::Punct(Punct::Arrow) => {
                    let arrow = matches!(self.peek(), TokenKind::Punct(Punct::Arrow));
                    self.bump();
                    let member = self.expect_identifier()?;
                    let node = self.add_node(
                        AstKind::MemberExpr,
                        NodeData {
                            name: Some(member),
                            opcode: Some(if arrow { "->".into() } else { ".".into() }),
                            ..NodeData::default()
                        },
                    )?;
                    self.ast.attach(node, expr);
                    expr = node;
                }
                TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                    let op = if matches!(self.peek(), TokenKind::Punct(Punct::PlusPlus)) {
                        "++"
                    } else {
                        "--"
                    };
                    self.bump();
                    let node = self.add_node(
                        AstKind::UnaryOperator,
                        NodeData {
                            opcode: Some(op.into()),
                            postfix: true,
                            ..NodeData::default()
                        },
                    )?;
                    self.stamp(node, loc);
                    self.ast.attach(node, expr);
                    expr = node;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary_detached(&mut self) -> Result<NodeId, FrontendError> {
        let loc = self.location();
        match self.bump() {
            TokenKind::Identifier(name) => {
                // As in Figure 2 of the paper, references to declared
                // variables appear as DeclRefExpr wrapped in an
                // ImplicitCastExpr.
                let dre = self.add_node(AstKind::DeclRefExpr, NodeData::named(name))?;
                self.stamp(dre, loc);
                let cast = self.add_simple(AstKind::ImplicitCastExpr)?;
                self.stamp(cast, loc);
                self.ast.attach(cast, dre);
                Ok(cast)
            }
            TokenKind::IntLiteral(value) => {
                let node = self.add_node(AstKind::IntegerLiteral, NodeData::int(value))?;
                self.stamp(node, loc);
                Ok(node)
            }
            TokenKind::FloatLiteral(value) => {
                let node = self.add_node(AstKind::FloatingLiteral, NodeData::float(value))?;
                self.stamp(node, loc);
                Ok(node)
            }
            TokenKind::StringLiteral(text) => Ok(self.add_node(
                AstKind::StringLiteral,
                NodeData {
                    literal: Some(text),
                    ..NodeData::default()
                },
            )?),
            TokenKind::CharLiteral(c) => Ok(self.add_node(
                AstKind::CharacterLiteral,
                NodeData {
                    literal: Some(c.to_string()),
                    int_value: Some(c as i64),
                    ..NodeData::default()
                },
            )?),
            TokenKind::Punct(Punct::LParen) => {
                let inner = self.parse_expression_detached()?;
                self.expect_punct(Punct::RParen)?;
                let paren = self.add_simple(AstKind::ParenExpr)?;
                self.ast.attach(paren, inner);
                Ok(paren)
            }
            other => Err(FrontendError::parse(
                self.location(),
                format!("unexpected token in expression: {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_of(ast: &Ast, kind: AstKind) -> usize {
        ast.find_all(kind).len()
    }

    #[test]
    fn source_byte_budget_is_enforced_before_lexing() {
        let src = "void f() { int x = 1; }";
        let opts = ParseOptions::default().with_max_source_bytes(8);
        let err = parse_with_options(src, opts).unwrap_err();
        assert!(err.is_limit());
        assert!(matches!(
            err.kind,
            FrontendErrorKind::SourceTooLarge { actual, limit }
                if actual == src.len() && limit == 8
        ));
        // At or under the cap it parses.
        parse_with_options(
            src,
            ParseOptions::default().with_max_source_bytes(src.len()),
        )
        .unwrap();
    }

    #[test]
    fn nesting_depth_budget_stops_paren_bombs() {
        let depth = 600;
        let mut src = String::from("void f() { int x = ");
        src.extend(std::iter::repeat_n('(', depth));
        src.push('1');
        src.extend(std::iter::repeat_n(')', depth));
        src.push_str("; }");
        let err = parse(&src).unwrap_err();
        assert!(matches!(
            err.kind,
            FrontendErrorKind::NestingTooDeep { limit } if limit == 128
        ));
        // A raised budget admits the same input.
        parse_with_options(&src, ParseOptions::default().with_max_nesting_depth(4096)).unwrap();
    }

    #[test]
    fn nesting_depth_budget_stops_brace_bombs() {
        let depth = 600;
        let mut src = String::from("void f() ");
        src.extend(std::iter::repeat_n('{', depth));
        src.extend(std::iter::repeat_n('}', depth));
        let err = parse(&src).unwrap_err();
        assert!(err.is_limit());
    }

    #[test]
    fn deep_else_and_assignment_chains_are_depth_gated() {
        // `a ? b : a ? b : ...` and `x = x = x = ...` both self-recurse.
        let mut cond = String::from("void f() { int a = 1; int r = ");
        for _ in 0..400 {
            cond.push_str("a ? a : ");
        }
        cond.push_str("a; }");
        assert!(parse(&cond).unwrap_err().is_limit());

        let mut chain = String::from("void f() { int x = 0; x ");
        for _ in 0..400 {
            chain.push_str("= x ");
        }
        chain.push_str("; }");
        assert!(parse(&chain).unwrap_err().is_limit());

        let mut unary = String::from("void f() { int x = ");
        unary.extend(std::iter::repeat_n('-', 800));
        unary.push_str("1; }");
        assert!(parse(&unary).unwrap_err().is_limit());
    }

    #[test]
    fn ast_node_budget_is_enforced() {
        let mut src = String::from("void f() { ");
        for i in 0..64 {
            src.push_str(&format!("int v{i} = {i}; "));
        }
        src.push('}');
        let err =
            parse_with_options(&src, ParseOptions::default().with_max_ast_nodes(16)).unwrap_err();
        assert!(matches!(
            err.kind,
            FrontendErrorKind::TooManyNodes { limit: 16 }
        ));
        parse(&src).unwrap();
    }

    #[test]
    fn catalogue_style_kernel_fits_defaults_with_headroom() {
        let src = r#"
            void stencil(float *in, float *out, int n) {
                #pragma omp parallel for collapse(2)
                for (int i = 1; i < n - 1; i++) {
                    for (int j = 1; j < n - 1; j++) {
                        out[i * n + j] = (in[(i - 1) * n + j] + in[(i + 1) * n + j]
                            + in[i * n + j - 1] + in[i * n + j + 1]) / 4.0;
                    }
                }
            }
        "#;
        parse_with_options(src, ParseOptions::default()).unwrap();
    }

    #[test]
    fn parses_figure2_declaration_snippet() {
        // The first snippet of Figure 2: a declaration and an assignment.
        let ast = parse("void f() { int x; x = 50; }").unwrap();
        ast.validate().unwrap();
        assert_eq!(kinds_of(&ast, AstKind::FunctionDecl), 1);
        assert_eq!(kinds_of(&ast, AstKind::CompoundStmt), 1);
        assert_eq!(kinds_of(&ast, AstKind::VarDecl), 1);
        assert_eq!(kinds_of(&ast, AstKind::BinaryOperator), 1);
        assert_eq!(kinds_of(&ast, AstKind::ImplicitCastExpr), 1);
        assert_eq!(kinds_of(&ast, AstKind::DeclRefExpr), 1);
        assert_eq!(kinds_of(&ast, AstKind::IntegerLiteral), 1);
    }

    #[test]
    fn parses_figure2_if_snippet() {
        let ast = parse("void f() { int x = 1; if (x > 50) { x = 1; } else { x = 2; } }").unwrap();
        let if_stmt = ast.find_first(AstKind::IfStmt).unwrap();
        let children = ast.children(if_stmt);
        assert_eq!(children.len(), 3, "if with else must have three children");
        assert_eq!(ast.kind(children[0]), AstKind::BinaryOperator);
        assert_eq!(ast.kind(children[1]), AstKind::CompoundStmt);
        assert_eq!(ast.kind(children[2]), AstKind::CompoundStmt);
    }

    #[test]
    fn parses_figure2_for_snippet_with_paper_child_order() {
        let ast = parse("void f() { for (int i = 0; i < 50; i++) { } }").unwrap();
        let for_stmt = ast.find_first(AstKind::ForStmt).unwrap();
        let children = ast.children(for_stmt);
        assert_eq!(children.len(), 4);
        assert_eq!(ast.kind(children[0]), AstKind::DeclStmt, "child 0 = init");
        assert_eq!(
            ast.kind(children[1]),
            AstKind::BinaryOperator,
            "child 1 = cond"
        );
        assert_eq!(
            ast.kind(children[2]),
            AstKind::CompoundStmt,
            "child 2 = body"
        );
        assert_eq!(
            ast.kind(children[3]),
            AstKind::UnaryOperator,
            "child 3 = inc"
        );
    }

    #[test]
    fn for_with_missing_parts_gets_null_stmts() {
        let ast = parse("void f() { for (;;) { break; } }").unwrap();
        let for_stmt = ast.find_first(AstKind::ForStmt).unwrap();
        let children = ast.children(for_stmt);
        assert_eq!(children.len(), 4);
        assert_eq!(ast.kind(children[0]), AstKind::NullStmt);
        assert_eq!(ast.kind(children[1]), AstKind::NullStmt);
        assert_eq!(ast.kind(children[3]), AstKind::NullStmt);
        assert_eq!(kinds_of(&ast, AstKind::BreakStmt), 1);
    }

    #[test]
    fn parses_nested_loops_and_array_accesses() {
        let src = r#"
            void mm(float *a, float *b, float *c, int n) {
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        float sum = 0.0;
                        for (int k = 0; k < n; k++) {
                            sum += a[i * n + k] * b[k * n + j];
                        }
                        c[i * n + j] = sum;
                    }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        ast.validate().unwrap();
        assert_eq!(kinds_of(&ast, AstKind::ForStmt), 3);
        assert_eq!(kinds_of(&ast, AstKind::ArraySubscriptExpr), 3);
        assert_eq!(kinds_of(&ast, AstKind::CompoundAssignOperator), 1);
        assert_eq!(kinds_of(&ast, AstKind::ParmVarDecl), 4);
    }

    #[test]
    fn parses_omp_parallel_for() {
        let src = r#"
            void axpy(float *x, float *y, int n) {
                #pragma omp parallel for
                for (int i = 0; i < n; i++) {
                    y[i] = y[i] + 2.0 * x[i];
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let directive = ast.find_first(AstKind::OmpParallelForDirective).unwrap();
        let children = ast.children(directive);
        assert_eq!(children.len(), 1);
        assert_eq!(ast.kind(children[0]), AstKind::ForStmt);
        let omp = ast.node(directive).data.omp.as_ref().unwrap();
        assert_eq!(omp.kind, OmpDirectiveKind::ParallelFor);
    }

    #[test]
    fn parses_omp_target_offload_with_map() {
        let src = r#"
            void axpy(float *x, float *y, int n) {
                #pragma omp target teams distribute parallel for collapse(2) map(to: x[0:n]) map(tofrom: y[0:n])
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        y[i] = y[i] + 2.0 * x[j];
                    }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let directive = ast
            .find_first(AstKind::OmpTargetTeamsDistributeParallelForDirective)
            .unwrap();
        let omp = ast.node(directive).data.omp.as_ref().unwrap();
        assert_eq!(omp.collapse_depth(), 2);
        assert!(omp.has_data_transfer());
        assert_eq!(omp.map_items().len(), 2);
    }

    #[test]
    fn parses_calls_casts_and_ternary() {
        let src = r#"
            float work(float v, int n) {
                float r = (float) n;
                r = sqrt(v) + fabs(r);
                r = v > 0.0 ? r : -r;
                return r;
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(kinds_of(&ast, AstKind::CStyleCastExpr), 1);
        assert_eq!(kinds_of(&ast, AstKind::CallExpr), 2);
        assert_eq!(kinds_of(&ast, AstKind::ConditionalOperator), 1);
        assert_eq!(kinds_of(&ast, AstKind::ReturnStmt), 1);
    }

    #[test]
    fn parses_while_and_if_else_chain() {
        let src = r#"
            int f(int n) {
                int i = 0;
                while (i < n) {
                    if (i % 2 == 0) { i = i + 1; }
                    else if (i % 3 == 0) { i = i + 3; }
                    else { i = i + 2; }
                }
                return i;
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(kinds_of(&ast, AstKind::WhileStmt), 1);
        assert_eq!(kinds_of(&ast, AstKind::IfStmt), 2);
    }

    #[test]
    fn parses_array_declarations_and_init_lists() {
        let src = "void f() { float a[128]; int b[4] = {1, 2, 3, 4}; double c[8][8]; }";
        let ast = parse(src).unwrap();
        let decls = ast.find_all(AstKind::VarDecl);
        assert_eq!(decls.len(), 3);
        assert_eq!(ast.node(decls[0]).data.array_dims, vec![Some(128)]);
        assert_eq!(ast.node(decls[2]).data.array_dims, vec![Some(8), Some(8)]);
        assert_eq!(kinds_of(&ast, AstKind::InitListExpr), 1);
    }

    #[test]
    fn parses_global_declarations_and_prototypes() {
        let src = "int size; float data[100]; void kernel(float *a, int n); void kernel(float *a, int n) { }";
        let ast = parse(src).unwrap();
        assert_eq!(kinds_of(&ast, AstKind::FunctionDecl), 2);
        assert!(kinds_of(&ast, AstKind::VarDecl) >= 2);
    }

    #[test]
    fn operator_precedence_shapes_the_tree() {
        let ast = parse("void f() { int x; x = 1 + 2 * 3; }").unwrap();
        // The root assignment's RHS must be `+` with a `*` child.
        let assigns = ast.find_all(AstKind::BinaryOperator);
        let assign = assigns
            .iter()
            .copied()
            .find(|&id| ast.node(id).data.opcode.as_deref() == Some("="))
            .unwrap();
        let rhs = ast.children(assign)[1];
        assert_eq!(ast.node(rhs).data.opcode.as_deref(), Some("+"));
        let mul = ast.children(rhs)[1];
        assert_eq!(ast.node(mul).data.opcode.as_deref(), Some("*"));
    }

    #[test]
    fn postfix_and_prefix_increment() {
        let ast = parse("void f() { int i = 0; i++; ++i; }").unwrap();
        let unaries = ast.find_all(AstKind::UnaryOperator);
        assert_eq!(unaries.len(), 2);
        let postfix_count = unaries
            .iter()
            .filter(|&&id| ast.node(id).data.postfix)
            .count();
        assert_eq!(postfix_count, 1);
    }

    #[test]
    fn member_access_and_pointers() {
        let ast = parse("void f(struct particle *p) { p->x = 1.0; (*p).y = 2.0; }").unwrap();
        assert_eq!(kinds_of(&ast, AstKind::MemberExpr), 2);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("void f() { int x = 1 }").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn error_on_garbage_top_level() {
        assert!(parse("42;").is_err());
        assert!(parse("+").is_err());
    }

    #[test]
    fn statements_and_writes_carry_source_locations() {
        let src = "void f(float *a, int n) {\n    for (int i = 0; i < n; i++) {\n        a[i] = a[i] + 1.0;\n    }\n}\n";
        let ast = parse(src).unwrap();
        let for_stmt = ast.find_first(AstKind::ForStmt).unwrap();
        let for_loc = ast.node(for_stmt).data.loc.unwrap();
        assert_eq!(for_loc.line, 2);
        let assign = ast
            .find_all(AstKind::BinaryOperator)
            .into_iter()
            .find(|&id| ast.node(id).data.opcode.as_deref() == Some("="))
            .unwrap();
        assert_eq!(ast.node(assign).data.loc.unwrap().line, 3);
        let subscript = ast.find_first(AstKind::ArraySubscriptExpr).unwrap();
        assert_eq!(ast.node(subscript).data.loc.unwrap().line, 3);
        let dre = ast.find_first(AstKind::DeclRefExpr).unwrap();
        assert!(ast.node(dre).data.loc.is_some());
    }

    #[test]
    fn sizeof_forms() {
        let ast = parse("void f(int n) { int a = sizeof(int); int b = sizeof(n); }").unwrap();
        let sizeofs: Vec<_> = ast
            .find_all(AstKind::UnaryOperator)
            .into_iter()
            .filter(|&id| ast.node(id).data.opcode.as_deref() == Some("sizeof"))
            .collect();
        assert_eq!(sizeofs.len(), 2);
    }
}
