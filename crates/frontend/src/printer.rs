//! Pretty-printer: emits compilable C source back out of the AST.
//!
//! The OpenMP Advisor substitute (`pg-advisor`) uses this to materialise
//! transformed kernel variants after rewriting pragmas at the AST level, and
//! round-trip tests (parse → print → parse) use it to validate the parser.

use crate::ast::{Ast, AstKind, NodeId};
use crate::omp::{OmpClause, OmpDirective, OmpDirectiveKind};

/// Print a whole translation unit as C source.
pub fn print(ast: &Ast) -> String {
    let mut printer = Printer {
        ast,
        out: String::new(),
        indent: 0,
    };
    for &child in ast.children(ast.root()) {
        printer.print_top_level(child);
    }
    printer.out
}

/// Print a single statement subtree (useful in tests and examples).
pub fn print_statement(ast: &Ast, stmt: NodeId) -> String {
    let mut printer = Printer {
        ast,
        out: String::new(),
        indent: 0,
    };
    printer.print_stmt(stmt);
    printer.out
}

/// Render an OpenMP directive back to its `#pragma omp ...` line.
pub fn print_pragma(directive: &OmpDirective) -> String {
    let head = match directive.kind {
        OmpDirectiveKind::ParallelFor => "parallel for",
        OmpDirectiveKind::TargetTeamsDistributeParallelFor => {
            "target teams distribute parallel for"
        }
        OmpDirectiveKind::TargetData => "target data",
        OmpDirectiveKind::Simd => "simd",
        OmpDirectiveKind::Other => return format!("#pragma omp {}", directive.raw),
    };
    let mut line = format!("#pragma omp {head}");
    for clause in &directive.clauses {
        line.push(' ');
        line.push_str(&print_clause(clause));
    }
    line
}

fn print_clause(clause: &OmpClause) -> String {
    match clause {
        OmpClause::Collapse(n) => format!("collapse({n})"),
        OmpClause::NumThreads(n) => format!("num_threads({n})"),
        OmpClause::NumTeams(n) => format!("num_teams({n})"),
        OmpClause::ThreadLimit(n) => format!("thread_limit({n})"),
        OmpClause::Schedule(kind, chunk) => {
            let kind = match kind {
                crate::omp::ScheduleKind::Static => "static",
                crate::omp::ScheduleKind::Dynamic => "dynamic",
                crate::omp::ScheduleKind::Guided => "guided",
                crate::omp::ScheduleKind::Auto => "auto",
            };
            match chunk {
                Some(c) => format!("schedule({kind}, {c})"),
                None => format!("schedule({kind})"),
            }
        }
        OmpClause::Map(dir, items) => format!("map({}: {})", dir.spelling(), items.join(", ")),
        OmpClause::Reduction(op, vars) => format!("reduction({op}: {})", vars.join(", ")),
        OmpClause::Private(vars) => format!("private({})", vars.join(", ")),
        OmpClause::FirstPrivate(vars) => format!("firstprivate({})", vars.join(", ")),
        OmpClause::Shared(vars) => format!("shared({})", vars.join(", ")),
        OmpClause::Other(text) | OmpClause::Unknown(text) => text.clone(),
    }
}

struct Printer<'a> {
    ast: &'a Ast,
    out: String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn write_indent(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn print_top_level(&mut self, id: NodeId) {
        match self.ast.kind(id) {
            AstKind::FunctionDecl => self.print_function(id),
            AstKind::DeclStmt => {
                self.print_stmt(id);
            }
            _ => self.print_stmt(id),
        }
        self.out.push('\n');
    }

    fn print_function(&mut self, id: NodeId) {
        let node = self.ast.node(id);
        let ret = node.data.ty.clone().unwrap_or_else(|| "void".into());
        let name = node.data.name.clone().unwrap_or_default();
        self.out.push_str(&format!("{ret} {name}("));
        let params: Vec<NodeId> = node
            .children
            .iter()
            .copied()
            .filter(|&c| self.ast.kind(c) == AstKind::ParmVarDecl)
            .collect();
        for (i, &p) in params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let pn = self.ast.node(p);
            let ty = pn.data.ty.clone().unwrap_or_default();
            let pname = pn.data.name.clone().unwrap_or_default();
            self.out.push_str(&format!("{ty} {pname}"));
            for dim in &pn.data.array_dims {
                match dim {
                    Some(d) => self.out.push_str(&format!("[{d}]")),
                    None => self.out.push_str("[]"),
                }
            }
        }
        self.out.push(')');
        let body = node
            .children
            .iter()
            .copied()
            .find(|&c| self.ast.kind(c) == AstKind::CompoundStmt);
        match body {
            Some(b) => {
                self.out.push(' ');
                self.print_stmt(b);
            }
            None => self.out.push_str(";\n"),
        }
    }

    fn print_stmt(&mut self, id: NodeId) {
        match self.ast.kind(id) {
            AstKind::CompoundStmt => {
                self.out.push_str("{\n");
                self.indent += 1;
                for &child in self.ast.children(id) {
                    self.write_indent();
                    self.print_stmt(child);
                }
                self.indent -= 1;
                self.write_indent();
                self.out.push_str("}\n");
            }
            AstKind::DeclStmt => {
                let children: Vec<NodeId> = self.ast.children(id).to_vec();
                for &var in &children {
                    self.print_var_decl(var);
                }
            }
            AstKind::ForStmt => {
                let children = self.ast.children(id).to_vec();
                self.out.push_str("for (");
                // init
                match children.first() {
                    Some(&init) if self.ast.kind(init) == AstKind::DeclStmt => {
                        self.print_decl_inline(init);
                    }
                    Some(&init) if self.ast.kind(init) != AstKind::NullStmt => {
                        self.print_expr(init);
                    }
                    _ => {}
                }
                self.out.push_str("; ");
                if let Some(&cond) = children.get(1) {
                    if self.ast.kind(cond) != AstKind::NullStmt {
                        self.print_expr(cond);
                    }
                }
                self.out.push_str("; ");
                if let Some(&inc) = children.get(3) {
                    if self.ast.kind(inc) != AstKind::NullStmt {
                        self.print_expr(inc);
                    }
                }
                self.out.push_str(") ");
                if let Some(&body) = children.get(2) {
                    if self.ast.kind(body) == AstKind::CompoundStmt {
                        self.print_stmt(body);
                    } else {
                        self.out.push_str("{\n");
                        self.indent += 1;
                        self.write_indent();
                        self.print_stmt(body);
                        self.indent -= 1;
                        self.write_indent();
                        self.out.push_str("}\n");
                    }
                }
            }
            AstKind::WhileStmt => {
                let children = self.ast.children(id).to_vec();
                self.out.push_str("while (");
                if let Some(&cond) = children.first() {
                    self.print_expr(cond);
                }
                self.out.push_str(") ");
                if let Some(&body) = children.get(1) {
                    self.print_stmt(body);
                }
            }
            AstKind::IfStmt => {
                let children = self.ast.children(id).to_vec();
                self.out.push_str("if (");
                if let Some(&cond) = children.first() {
                    self.print_expr(cond);
                }
                self.out.push_str(") ");
                if let Some(&then) = children.get(1) {
                    self.print_stmt(then);
                }
                if let Some(&otherwise) = children.get(2) {
                    self.write_indent();
                    self.out.push_str("else ");
                    self.print_stmt(otherwise);
                }
            }
            AstKind::ReturnStmt => {
                self.out.push_str("return");
                if let Some(&value) = self.ast.children(id).first() {
                    self.out.push(' ');
                    self.print_expr(value);
                }
                self.out.push_str(";\n");
            }
            AstKind::BreakStmt => self.out.push_str("break;\n"),
            AstKind::ContinueStmt => self.out.push_str("continue;\n"),
            AstKind::NullStmt => self.out.push_str(";\n"),
            kind if kind.is_omp_directive() => {
                if let Some(omp) = &self.ast.node(id).data.omp {
                    self.out.push_str(&print_pragma(omp));
                    self.out.push('\n');
                }
                self.write_indent();
                if let Some(&stmt) = self.ast.children(id).first() {
                    self.print_stmt(stmt);
                }
            }
            _ => {
                // Expression statement.
                self.print_expr(id);
                self.out.push_str(";\n");
            }
        }
    }

    fn print_var_decl(&mut self, var: NodeId) {
        self.print_decl_core(var);
        self.out.push_str(";\n");
    }

    /// Print a declaration without the trailing `;\n` (for `for` initialisers).
    fn print_decl_inline(&mut self, decl_stmt: NodeId) {
        let vars = self.ast.children(decl_stmt).to_vec();
        for (i, &var) in vars.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.print_decl_core(var);
        }
    }

    fn print_decl_core(&mut self, var: NodeId) {
        let node = self.ast.node(var);
        let ty = node.data.ty.clone().unwrap_or_else(|| "int".into());
        let name = node.data.name.clone().unwrap_or_default();
        self.out.push_str(&format!("{ty} {name}"));
        for dim in &node.data.array_dims {
            match dim {
                Some(d) => self.out.push_str(&format!("[{d}]")),
                None => self.out.push_str("[]"),
            }
        }
        // Initialiser: the first child that is an expression / init list.
        // (Array dimension expressions were kept as children too; they are
        // distinguished by being IntegerLiterals that match array_dims and
        // appear before any initialiser, so we print only the *last* child
        // when its count exceeds the number of dimension expressions.)
        let dims_with_exprs = node
            .children
            .iter()
            .filter(|&&c| {
                self.ast.kind(c) == AstKind::IntegerLiteral
                    && node
                        .data
                        .array_dims
                        .iter()
                        .any(|d| *d == self.ast.node(c).data.int_value)
            })
            .count();
        if node.children.len() > dims_with_exprs {
            if let Some(&init) = node.children.last() {
                self.out.push_str(" = ");
                self.print_expr(init);
            }
        }
    }

    fn print_expr(&mut self, id: NodeId) {
        let node = self.ast.node(id);
        match node.kind {
            AstKind::BinaryOperator | AstKind::CompoundAssignOperator => {
                let op = node.data.opcode.clone().unwrap_or_default();
                let children = node.children.clone();
                if let Some(&lhs) = children.first() {
                    self.print_operand(lhs);
                }
                self.out.push_str(&format!(" {op} "));
                if let Some(&rhs) = children.get(1) {
                    self.print_operand(rhs);
                }
            }
            AstKind::UnaryOperator => {
                let op = node.data.opcode.clone().unwrap_or_default();
                let children = node.children.clone();
                if op == "sizeof" {
                    if let Some(ty) = &node.data.ty {
                        self.out.push_str(&format!("sizeof({ty})"));
                    } else if let Some(&operand) = children.first() {
                        self.out.push_str("sizeof(");
                        self.print_expr(operand);
                        self.out.push(')');
                    }
                } else if node.data.postfix {
                    if let Some(&operand) = children.first() {
                        self.print_operand(operand);
                    }
                    self.out.push_str(&op);
                } else {
                    self.out.push_str(&op);
                    if let Some(&operand) = children.first() {
                        self.print_operand(operand);
                    }
                }
            }
            AstKind::ConditionalOperator => {
                let children = node.children.clone();
                self.print_operand(children[0]);
                self.out.push_str(" ? ");
                self.print_operand(children[1]);
                self.out.push_str(" : ");
                self.print_operand(children[2]);
            }
            AstKind::ImplicitCastExpr => {
                if let Some(&inner) = node.children.first() {
                    self.print_expr(inner);
                }
            }
            AstKind::CStyleCastExpr => {
                let ty = node.data.ty.clone().unwrap_or_default();
                self.out.push_str(&format!("({ty}) "));
                if let Some(&inner) = node.children.first() {
                    self.print_operand(inner);
                }
            }
            AstKind::ParenExpr => {
                self.out.push('(');
                if let Some(&inner) = node.children.first() {
                    self.print_expr(inner);
                }
                self.out.push(')');
            }
            AstKind::DeclRefExpr => {
                self.out.push_str(node.data.name.as_deref().unwrap_or(""));
            }
            AstKind::IntegerLiteral => {
                self.out
                    .push_str(&node.data.int_value.unwrap_or_default().to_string());
            }
            AstKind::FloatingLiteral => {
                let v = node.data.float_value.unwrap_or_default();
                if v.is_nan() {
                    // There is no NaN literal in the subset; 0.0 keeps the
                    // output parseable (NaN only arises from hostile input).
                    self.out.push_str("0.0");
                } else if v.is_infinite() {
                    // 1e999 overflows to infinity when re-lexed, so the
                    // round trip reproduces the value.
                    self.out.push_str(if v > 0.0 { "1e999" } else { "-1e999" });
                } else if v.fract() == 0.0 && v.abs() < 1e15 {
                    self.out.push_str(&format!("{v:.1}"));
                } else {
                    self.out.push_str(&format!("{v}"));
                }
            }
            AstKind::StringLiteral => {
                self.out.push_str(&format!(
                    "\"{}\"",
                    node.data.literal.as_deref().unwrap_or("")
                ));
            }
            AstKind::CharacterLiteral => {
                self.out
                    .push_str(&format!("'{}'", node.data.literal.as_deref().unwrap_or("")));
            }
            AstKind::ArraySubscriptExpr => {
                let children = node.children.clone();
                self.print_operand(children[0]);
                self.out.push('[');
                if let Some(&idx) = children.get(1) {
                    self.print_expr(idx);
                }
                self.out.push(']');
            }
            AstKind::CallExpr => {
                let children = node.children.clone();
                if let Some(&callee) = children.first() {
                    self.print_expr(callee);
                }
                self.out.push('(');
                for (i, &arg) in children.iter().skip(1).enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.print_expr(arg);
                }
                self.out.push(')');
            }
            AstKind::MemberExpr => {
                let children = node.children.clone();
                if let Some(&base) = children.first() {
                    self.print_operand(base);
                }
                self.out
                    .push_str(node.data.opcode.as_deref().unwrap_or("."));
                self.out.push_str(node.data.name.as_deref().unwrap_or(""));
            }
            AstKind::InitListExpr => {
                self.out.push('{');
                let children = node.children.clone();
                for (i, &item) in children.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.print_expr(item);
                }
                self.out.push('}');
            }
            _ => {
                // Statements appearing in expression position (should not
                // happen); print their children defensively.
                let children = node.children.clone();
                for &c in &children {
                    self.print_expr(c);
                }
            }
        }
    }

    /// Print an operand of a compound expression, adding parentheses around
    /// nested operators so precedence is preserved textually.
    fn print_operand(&mut self, id: NodeId) {
        let needs_parens = matches!(
            self.ast.kind(id),
            AstKind::BinaryOperator
                | AstKind::CompoundAssignOperator
                | AstKind::ConditionalOperator
        );
        if needs_parens {
            self.out.push('(');
            self.print_expr(id);
            self.out.push(')');
        } else {
            self.print_expr(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AstKind;
    use crate::parser::parse;

    /// Parse → print → parse and compare structural statistics.
    fn round_trip_preserves(src: &str, kinds: &[AstKind]) {
        let ast1 = parse(src).unwrap();
        let printed = print(&ast1);
        let ast2 =
            parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        for &kind in kinds {
            assert_eq!(
                ast1.find_all(kind).len(),
                ast2.find_all(kind).len(),
                "count of {kind:?} changed after round trip\n---\n{printed}"
            );
        }
    }

    #[test]
    fn round_trip_simple_kernel() {
        round_trip_preserves(
            "void axpy(float *x, float *y, int n) { for (int i = 0; i < n; i++) { y[i] = y[i] + 2.0 * x[i]; } }",
            &[
                AstKind::FunctionDecl,
                AstKind::ForStmt,
                AstKind::ArraySubscriptExpr,
                AstKind::BinaryOperator,
                AstKind::ParmVarDecl,
            ],
        );
    }

    #[test]
    fn round_trip_control_flow() {
        round_trip_preserves(
            r#"
            int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i += 2) {
                    if (i % 3 == 0) { acc += i; } else { acc -= 1; }
                    while (acc > 100) { acc = acc / 2; }
                }
                return acc;
            }
            "#,
            &[
                AstKind::ForStmt,
                AstKind::IfStmt,
                AstKind::WhileStmt,
                AstKind::ReturnStmt,
                AstKind::CompoundAssignOperator,
            ],
        );
    }

    #[test]
    fn round_trip_omp_directives() {
        let src = r#"
            void k(float *a, float *b, int n) {
                #pragma omp target teams distribute parallel for collapse(2) map(to: a[0:n]) map(from: b[0:n])
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        b[i * n + j] = a[j * n + i];
                    }
                }
            }
        "#;
        let ast1 = parse(src).unwrap();
        let printed = print(&ast1);
        assert!(printed.contains("#pragma omp target teams distribute parallel for"));
        assert!(printed.contains("collapse(2)"));
        assert!(printed.contains("map(to: a[0:n])"));
        let ast2 = parse(&printed).unwrap();
        assert_eq!(
            ast1.find_all(AstKind::OmpTargetTeamsDistributeParallelForDirective)
                .len(),
            ast2.find_all(AstKind::OmpTargetTeamsDistributeParallelForDirective)
                .len()
        );
        let d1 = ast1
            .find_first(AstKind::OmpTargetTeamsDistributeParallelForDirective)
            .unwrap();
        let d2 = ast2
            .find_first(AstKind::OmpTargetTeamsDistributeParallelForDirective)
            .unwrap();
        assert_eq!(
            ast1.node(d1).data.omp.as_ref().unwrap().collapse_depth(),
            ast2.node(d2).data.omp.as_ref().unwrap().collapse_depth()
        );
    }

    #[test]
    fn prints_operator_precedence_with_parentheses() {
        let ast = parse("void f() { int x; x = 1 + 2 * 3; }").unwrap();
        let printed = print(&ast);
        assert!(printed.contains("x = 1 + (2 * 3)") || printed.contains("x = (1 + (2 * 3))"));
        // And re-parsing preserves the value under constant evaluation.
        let ast2 = parse(&printed).unwrap();
        let assigns = ast2.find_all(AstKind::BinaryOperator);
        let assign = assigns
            .iter()
            .copied()
            .find(|&id| ast2.node(id).data.opcode.as_deref() == Some("="))
            .unwrap();
        let rhs = ast2.children(assign)[1];
        assert_eq!(
            crate::analysis::const_eval(&ast2, rhs, &Default::default()),
            Some(7)
        );
    }

    #[test]
    fn prints_pragma_for_cpu_variant() {
        let d = crate::omp::parse_pragma("parallel for collapse(2) num_threads(16)");
        let line = print_pragma(&d);
        assert_eq!(line, "#pragma omp parallel for collapse(2) num_threads(16)");
    }

    #[test]
    fn round_trip_declarations_with_arrays_and_casts() {
        round_trip_preserves(
            "void f() { float a[64]; double b[8][8]; int n = (int) 3.5; a[0] = (float) n; }",
            &[
                AstKind::VarDecl,
                AstKind::CStyleCastExpr,
                AstKind::ArraySubscriptExpr,
            ],
        );
    }

    #[test]
    fn round_trip_infinite_float_literal() {
        // 1e999 overflows f64 to infinity at lex time; the printer must
        // emit something that re-parses to the same value instead of the
        // unparseable "inf".
        let ast1 = parse("void f() { float x = 1e999; }").unwrap();
        let printed = print(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        let lit1 = ast1.find_first(AstKind::FloatingLiteral).unwrap();
        let lit2 = ast2.find_first(AstKind::FloatingLiteral).unwrap();
        let v1 = ast1.node(lit1).data.float_value.unwrap();
        let v2 = ast2.node(lit2).data.float_value.unwrap();
        assert!(v1.is_infinite() && v2.is_infinite() && v1 == v2);
    }

    #[test]
    fn round_trip_calls_and_member_access() {
        round_trip_preserves(
            "void f(struct p *q, float v) { q->x = sqrt(v); q->y = fabs(v) + pow(v, 2.0); }",
            &[AstKind::CallExpr, AstKind::MemberExpr],
        );
    }
}
