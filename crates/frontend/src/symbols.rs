//! Symbol resolution: connects each `DeclRefExpr` to the declaration it
//! refers to. ParaGraph's `Ref` edges (Section III-A2 of the paper) are built
//! directly from this table.

use crate::ast::{Ast, AstKind, NodeId};
use std::collections::HashMap;

/// Result of symbol resolution over one AST.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolTable {
    /// `DeclRefExpr` node -> declaration node (`VarDecl`, `ParmVarDecl` or
    /// `FunctionDecl`).
    resolved: HashMap<NodeId, NodeId>,
    /// References whose name could not be resolved (typically calls into the
    /// C library such as `sqrt` or `exp`).
    unresolved: Vec<NodeId>,
}

impl SymbolTable {
    /// Declaration node referenced by the given `DeclRefExpr`, if resolved.
    pub fn resolve(&self, decl_ref: NodeId) -> Option<NodeId> {
        self.resolved.get(&decl_ref).copied()
    }

    /// All `(DeclRefExpr, declaration)` pairs.
    pub fn references(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.resolved.iter().map(|(&r, &d)| (r, d))
    }

    /// Number of resolved references.
    pub fn resolved_count(&self) -> usize {
        self.resolved.len()
    }

    /// `DeclRefExpr` nodes that did not match any visible declaration.
    pub fn unresolved(&self) -> &[NodeId] {
        &self.unresolved
    }
}

/// Lexical scope stack used during resolution.
struct ScopeStack {
    scopes: Vec<HashMap<String, NodeId>>,
}

impl ScopeStack {
    fn new() -> Self {
        Self {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, node: NodeId) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), node);
        }
    }

    fn lookup(&self, name: &str) -> Option<NodeId> {
        for scope in self.scopes.iter().rev() {
            if let Some(&id) = scope.get(name) {
                return Some(id);
            }
        }
        None
    }
}

/// Resolve every `DeclRefExpr` in the AST to its declaration.
pub fn resolve(ast: &Ast) -> SymbolTable {
    let mut table = SymbolTable::default();
    let mut scopes = ScopeStack::new();
    visit(ast, ast.root(), &mut scopes, &mut table);
    table
}

fn declares_scope(kind: AstKind) -> bool {
    matches!(
        kind,
        AstKind::FunctionDecl | AstKind::CompoundStmt | AstKind::ForStmt | AstKind::WhileStmt
    )
}

fn visit(ast: &Ast, id: NodeId, scopes: &mut ScopeStack, table: &mut SymbolTable) {
    let node = ast.node(id);
    let opens_scope = declares_scope(node.kind);
    if opens_scope {
        scopes.push();
    }

    match node.kind {
        AstKind::FunctionDecl => {
            if let Some(name) = &node.data.name {
                // Declare the function in the *enclosing* scope so later
                // functions can call it; redeclare inside too for recursion.
                scopes.scopes[0].insert(name.clone(), id);
                scopes.declare(name, id);
            }
        }
        AstKind::VarDecl | AstKind::ParmVarDecl => {
            if let Some(name) = &node.data.name {
                scopes.declare(name, id);
            }
        }
        AstKind::DeclRefExpr => {
            if let Some(name) = &node.data.name {
                match scopes.lookup(name) {
                    Some(decl) => {
                        table.resolved.insert(id, decl);
                    }
                    None => table.unresolved.push(id),
                }
            }
        }
        _ => {}
    }

    for &child in &node.children {
        visit(ast, child, scopes, table);
    }

    if opens_scope {
        scopes.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn resolves_local_variable_reference() {
        let ast = parse("void f() { int x; x = 50; }").unwrap();
        let table = resolve(&ast);
        let dre = ast.find_first(AstKind::DeclRefExpr).unwrap();
        let var = ast.find_first(AstKind::VarDecl).unwrap();
        assert_eq!(table.resolve(dre), Some(var));
        assert!(table.unresolved().is_empty());
    }

    #[test]
    fn resolves_parameters_and_loop_counters() {
        let src = r#"
            void k(float *a, int n) {
                for (int i = 0; i < n; i++) {
                    a[i] = a[i] + 1.0;
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let table = resolve(&ast);
        // Every DeclRefExpr must resolve (a, n, i are all declared).
        let refs = ast.find_all(AstKind::DeclRefExpr);
        assert!(!refs.is_empty());
        for r in refs {
            assert!(table.resolve(r).is_some(), "unresolved reference {r}");
        }
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let src = r#"
            void f() {
                int x;
                x = 1;
                {
                    float x;
                    x = 2.0;
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let table = resolve(&ast);
        let decls = ast.find_all(AstKind::VarDecl);
        assert_eq!(decls.len(), 2);
        let refs = ast.find_all(AstKind::DeclRefExpr);
        assert_eq!(refs.len(), 2);
        // First reference resolves to the outer (int) declaration, the second
        // to the inner (float) one.
        assert_eq!(table.resolve(refs[0]), Some(decls[0]));
        assert_eq!(table.resolve(refs[1]), Some(decls[1]));
    }

    #[test]
    fn library_calls_are_unresolved() {
        let ast = parse("void f(float v) { float r; r = sqrt(v); }").unwrap();
        let table = resolve(&ast);
        assert_eq!(table.unresolved().len(), 1);
        let unresolved = table.unresolved()[0];
        assert_eq!(ast.node(unresolved).data.name.as_deref(), Some("sqrt"));
    }

    #[test]
    fn loop_counter_not_visible_after_loop() {
        let src = r#"
            void f(int n) {
                for (int i = 0; i < n; i++) { }
                int j;
                j = i;
            }
        "#;
        let ast = parse(src).unwrap();
        let table = resolve(&ast);
        // The trailing use of `i` must be unresolved because the counter's
        // scope is the for statement.
        assert_eq!(table.unresolved().len(), 1);
    }

    #[test]
    fn function_references_resolve_to_function_decls() {
        let src = r#"
            float helper(float x) { return x * 2.0; }
            void main_kernel(float *a, int n) {
                for (int i = 0; i < n; i++) { a[i] = helper(a[i]); }
            }
        "#;
        let ast = parse(src).unwrap();
        let table = resolve(&ast);
        let funcs = ast.find_all(AstKind::FunctionDecl);
        let helper_refs: Vec<_> = ast
            .find_all(AstKind::DeclRefExpr)
            .into_iter()
            .filter(|&id| ast.node(id).data.name.as_deref() == Some("helper"))
            .collect();
        assert_eq!(helper_refs.len(), 1);
        assert_eq!(table.resolve(helper_refs[0]), Some(funcs[0]));
    }

    #[test]
    fn resolved_count_matches_references() {
        let ast = parse("void f() { int a; int b; a = b; b = a; }").unwrap();
        let table = resolve(&ast);
        assert_eq!(table.resolved_count(), 4);
        assert_eq!(table.references().count(), 4);
    }
}
