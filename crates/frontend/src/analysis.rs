//! Static analyses over the AST:
//!
//! * constant evaluation of integer expressions,
//! * canonical-loop recognition and trip-count computation (the information
//!   ParaGraph encodes as edge weights),
//! * loop-nest discovery (used for `collapse(2)` legality checks), and
//! * a loop-aware work estimate (floating point operations, loads, stores)
//!   used by the performance simulator and the COMPOFF baseline features.

use crate::ast::{Ast, AstKind, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Environment binding variable names to known integer constants
/// (problem sizes, macro-substituted parameters, ...).
pub type ConstEnv = HashMap<String, i64>;

/// Evaluate an integer-valued expression if it is a compile-time constant
/// under the given environment.
pub fn const_eval(ast: &Ast, node: NodeId, env: &ConstEnv) -> Option<i64> {
    let n = ast.node(node);
    match n.kind {
        AstKind::IntegerLiteral => n.data.int_value,
        AstKind::FloatingLiteral => n.data.float_value.map(|f| f as i64),
        AstKind::CharacterLiteral => n.data.int_value,
        AstKind::DeclRefExpr => n.data.name.as_ref().and_then(|name| env.get(name).copied()),
        AstKind::ImplicitCastExpr | AstKind::ParenExpr | AstKind::CStyleCastExpr => {
            n.children.first().and_then(|&c| const_eval(ast, c, env))
        }
        AstKind::UnaryOperator => {
            let value = n.children.first().and_then(|&c| const_eval(ast, c, env))?;
            match n.data.opcode.as_deref() {
                // checked_neg: `-(i64::MIN)` has no i64 representation.
                Some("-") => value.checked_neg(),
                Some("+") => Some(value),
                Some("~") => Some(!value),
                Some("!") => Some(i64::from(value == 0)),
                _ => None,
            }
        }
        AstKind::BinaryOperator => {
            let lhs = const_eval(ast, *n.children.first()?, env)?;
            let rhs = const_eval(ast, *n.children.get(1)?, env)?;
            match n.data.opcode.as_deref() {
                Some("+") => lhs.checked_add(rhs),
                Some("-") => lhs.checked_sub(rhs),
                Some("*") => lhs.checked_mul(rhs),
                // checked_div/checked_rem: rejects both rhs == 0 and the
                // i64::MIN / -1 overflow case.
                Some("/") => lhs.checked_div(rhs),
                Some("%") => lhs.checked_rem(rhs),
                Some("<<") => Some(lhs << (rhs & 63)),
                Some(">>") => Some(lhs >> (rhs & 63)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Canonical-loop description extracted from a `ForStmt`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// The `ForStmt` node.
    pub for_stmt: NodeId,
    /// Loop counter variable name.
    pub counter: String,
    /// Initial counter value, when constant.
    pub start: Option<i64>,
    /// Loop bound (the value the counter is compared against), when constant.
    pub bound: Option<i64>,
    /// Comparison operator spelling (`<`, `<=`, `>`, `>=`).
    pub comparison: String,
    /// Counter step per iteration (positive for increments).
    pub step: i64,
    /// Number of iterations, when it can be computed statically.
    pub trip_count: Option<u64>,
}

/// Why a loop was rejected by canonical-form recognition.
///
/// Carried alongside `Option<LoopInfo>` so analyses and diagnostics can say
/// *why* a loop is opaque instead of just that it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopShape {
    /// The node is not a `ForStmt` at all.
    NotAForLoop,
    /// The `ForStmt` is missing one of its `init`/`cond`/`body`/`inc` parts.
    MissingClause,
    /// The init is neither `int i = <expr>` nor `i = <expr>`.
    NonCanonicalInit,
    /// The condition is not a comparison (`<`, `<=`, `>`, `>=`, `!=`).
    NonCanonicalCondition,
    /// The condition is a comparison, but neither side is the loop counter.
    CounterNotInCondition,
    /// The increment is not `i++`/`i--`/`i += c`/`i -= c`/`i = i ± c` with a
    /// constant `c`.
    NonConstantStride,
}

impl LoopShape {
    /// Human-readable reason, phrased for diagnostics.
    pub fn reason(self) -> &'static str {
        match self {
            LoopShape::NotAForLoop => "not a for loop",
            LoopShape::MissingClause => "for statement is missing an init, condition or increment",
            LoopShape::NonCanonicalInit => "loop init is not `i = <expr>` or `int i = <expr>`",
            LoopShape::NonCanonicalCondition => "loop condition is not a simple comparison",
            LoopShape::CounterNotInCondition => "loop condition does not test the loop counter",
            LoopShape::NonConstantStride => "loop increment is not a constant stride",
        }
    }
}

impl std::fmt::Display for LoopShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// Recognise the canonical `for (init; cond; inc)` form of a loop and compute
/// its trip count under `env`. Returns `None` when the loop is not canonical;
/// use [`classify_for`] to learn why.
pub fn analyze_for(ast: &Ast, for_stmt: NodeId, env: &ConstEnv) -> Option<LoopInfo> {
    classify_for(ast, for_stmt, env).ok()
}

/// [`analyze_for`] with a reason on rejection: recognise the canonical
/// `for (init; cond; inc)` form or report the [`LoopShape`] defect that
/// blocked recognition.
pub fn classify_for(ast: &Ast, for_stmt: NodeId, env: &ConstEnv) -> Result<LoopInfo, LoopShape> {
    if ast.kind(for_stmt) != AstKind::ForStmt {
        return Err(LoopShape::NotAForLoop);
    }
    let children = ast.children(for_stmt);
    if children.len() != 4 {
        return Err(LoopShape::MissingClause);
    }
    // Paper child order: [init, cond, body, inc].
    let (init, cond, _body, inc) = (children[0], children[1], children[2], children[3]);

    // --- init: `int i = <expr>` or `i = <expr>` --------------------------------
    let (counter, start) = extract_init(ast, init, env).ok_or(LoopShape::NonCanonicalInit)?;

    // --- cond: `i < bound` style comparison ------------------------------------
    let cond_node = ast.node(cond);
    if cond_node.kind != AstKind::BinaryOperator {
        return Err(LoopShape::NonCanonicalCondition);
    }
    let comparison = cond_node
        .data
        .opcode
        .clone()
        .ok_or(LoopShape::NonCanonicalCondition)?;
    if !matches!(comparison.as_str(), "<" | "<=" | ">" | ">=" | "!=") {
        return Err(LoopShape::NonCanonicalCondition);
    }
    let lhs = *cond_node
        .children
        .first()
        .ok_or(LoopShape::NonCanonicalCondition)?;
    let rhs = *cond_node
        .children
        .get(1)
        .ok_or(LoopShape::NonCanonicalCondition)?;
    let (bound_expr, counter_on_left) =
        if referenced_name(ast, lhs).as_deref() == Some(counter.as_str()) {
            (rhs, true)
        } else if referenced_name(ast, rhs).as_deref() == Some(counter.as_str()) {
            (lhs, false)
        } else {
            return Err(LoopShape::CounterNotInCondition);
        };
    let bound = const_eval(ast, bound_expr, env);

    // --- increment --------------------------------------------------------------
    let step = extract_step(ast, inc, &counter, env).ok_or(LoopShape::NonConstantStride)?;

    // --- trip count --------------------------------------------------------------
    let trip_count = match (start, bound) {
        (Some(s), Some(b)) => compute_trip_count(s, b, &comparison, counter_on_left, step),
        _ => None,
    };

    Ok(LoopInfo {
        for_stmt,
        counter,
        start,
        bound,
        comparison,
        step,
        trip_count,
    })
}

/// Convenience wrapper returning only the trip count of a loop.
pub fn trip_count(ast: &Ast, for_stmt: NodeId, env: &ConstEnv) -> Option<u64> {
    analyze_for(ast, for_stmt, env).and_then(|info| info.trip_count)
}

fn extract_init(ast: &Ast, init: NodeId, env: &ConstEnv) -> Option<(String, Option<i64>)> {
    let node = ast.node(init);
    match node.kind {
        AstKind::DeclStmt => {
            let var = *node.children.first()?;
            let var_node = ast.node(var);
            if var_node.kind != AstKind::VarDecl {
                return None;
            }
            let name = var_node.data.name.clone()?;
            let start = var_node
                .children
                .first()
                .and_then(|&c| const_eval(ast, c, env));
            Some((name, start))
        }
        AstKind::BinaryOperator if node.data.opcode.as_deref() == Some("=") => {
            let lhs = *node.children.first()?;
            let name = referenced_name(ast, lhs)?;
            let start = node.children.get(1).and_then(|&c| const_eval(ast, c, env));
            Some((name, start))
        }
        _ => None,
    }
}

fn extract_step(ast: &Ast, inc: NodeId, counter: &str, env: &ConstEnv) -> Option<i64> {
    let node = ast.node(inc);
    match node.kind {
        AstKind::UnaryOperator => {
            let operand = *node.children.first()?;
            if referenced_name(ast, operand).as_deref() != Some(counter) {
                return None;
            }
            match node.data.opcode.as_deref() {
                Some("++") => Some(1),
                Some("--") => Some(-1),
                _ => None,
            }
        }
        AstKind::CompoundAssignOperator => {
            let lhs = *node.children.first()?;
            if referenced_name(ast, lhs).as_deref() != Some(counter) {
                return None;
            }
            let amount = const_eval(ast, *node.children.get(1)?, env)?;
            match node.data.opcode.as_deref() {
                Some("+=") => Some(amount),
                Some("-=") => Some(-amount),
                Some("*=") => None,
                _ => None,
            }
        }
        AstKind::BinaryOperator if node.data.opcode.as_deref() == Some("=") => {
            // `i = i + c` or `i = i - c`
            let lhs = *node.children.first()?;
            if referenced_name(ast, lhs).as_deref() != Some(counter) {
                return None;
            }
            let rhs = ast.node(*node.children.get(1)?);
            if rhs.kind != AstKind::BinaryOperator {
                return None;
            }
            let a = *rhs.children.first()?;
            let b = *rhs.children.get(1)?;
            let amount = if referenced_name(ast, a).as_deref() == Some(counter) {
                const_eval(ast, b, env)?
            } else if referenced_name(ast, b).as_deref() == Some(counter) {
                const_eval(ast, a, env)?
            } else {
                return None;
            };
            match rhs.data.opcode.as_deref() {
                Some("+") => Some(amount),
                Some("-") => Some(-amount),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Name of the variable referenced by an expression consisting only of a
/// (possibly cast/parenthesised) `DeclRefExpr`.
pub fn referenced_name(ast: &Ast, node: NodeId) -> Option<String> {
    let n = ast.node(node);
    match n.kind {
        AstKind::DeclRefExpr => n.data.name.clone(),
        AstKind::ImplicitCastExpr | AstKind::ParenExpr | AstKind::CStyleCastExpr => {
            n.children.first().and_then(|&c| referenced_name(ast, c))
        }
        _ => None,
    }
}

fn compute_trip_count(
    start: i64,
    bound: i64,
    comparison: &str,
    counter_on_left: bool,
    step: i64,
) -> Option<u64> {
    if step == 0 {
        return None;
    }
    // Normalise so the comparison reads `counter OP bound`.
    let comparison = if counter_on_left {
        comparison.to_string()
    } else {
        match comparison {
            "<" => ">".to_string(),
            "<=" => ">=".to_string(),
            ">" => "<".to_string(),
            ">=" => "<=".to_string(),
            other => other.to_string(),
        }
    };
    // All arithmetic is checked: hostile inputs can place start/bound/step
    // anywhere in i64, and a trip count that does not fit is "unknown", not
    // a debug-overflow panic.
    let (lo, hi, step_abs) = match (comparison.as_str(), step > 0) {
        ("<", true) => (start, bound.checked_sub(1)?, step),
        ("<=", true) => (start, bound, step),
        (">", false) => (bound.checked_add(1)?, start, step.checked_neg()?),
        (">=", false) => (bound, start, step.checked_neg()?),
        ("!=", true) => (start, bound.checked_sub(1)?, step),
        ("!=", false) => (bound.checked_add(1)?, start, step.checked_neg()?),
        _ => return Some(0),
    };
    if hi < lo {
        return Some(0);
    }
    let span = hi.checked_sub(lo)?;
    Some((span / step_abs).checked_add(1)? as u64)
}

/// One loop in a loop nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNestLevel {
    /// The `ForStmt` node of this level.
    pub for_stmt: NodeId,
    /// Nesting depth relative to the outermost loop of the nest (0-based).
    pub depth: usize,
    /// Canonical-loop information, when the loop is canonical.
    pub info: Option<LoopInfo>,
    /// Why recognition failed, when `info` is `None`.
    pub shape: Option<LoopShape>,
}

/// Find the loop nest rooted at `outer_for`: the outer loop plus every loop
/// that is *perfectly or imperfectly* nested inside its body, ordered by
/// depth.
pub fn loop_nest(ast: &Ast, outer_for: NodeId, env: &ConstEnv) -> Vec<LoopNestLevel> {
    let mut levels = Vec::new();
    collect_nest(ast, outer_for, 0, env, &mut levels);
    levels
}

fn collect_nest(
    ast: &Ast,
    for_stmt: NodeId,
    depth: usize,
    env: &ConstEnv,
    out: &mut Vec<LoopNestLevel>,
) {
    if ast.kind(for_stmt) != AstKind::ForStmt {
        return;
    }
    let (info, shape) = match classify_for(ast, for_stmt, env) {
        Ok(info) => (Some(info), None),
        Err(shape) => (None, Some(shape)),
    };
    out.push(LoopNestLevel {
        for_stmt,
        depth,
        info,
        shape,
    });
    // Recurse only into the body (child 2), not the init/cond/inc.
    if let Some(&body) = ast.children(for_stmt).get(2) {
        for id in ast.preorder_from(body) {
            if ast.kind(id) == AstKind::ForStmt {
                // Only direct next-level loops: skip loops nested deeper than
                // one level here; they are handled by recursion.
                let is_direct = ast
                    .ancestors(id)
                    .into_iter()
                    .take_while(|&a| a != for_stmt)
                    .all(|a| ast.kind(a) != AstKind::ForStmt);
                if is_direct {
                    collect_nest(ast, id, depth + 1, env, out);
                }
            }
        }
    }
}

/// Whether the loop nest rooted at `outer_for` can legally be collapsed with
/// `collapse(2)`: it must contain a second loop directly (perfectly) nested in
/// the outer loop's body.
pub fn is_collapsible(ast: &Ast, outer_for: NodeId) -> bool {
    let Some(&body) = ast.children(outer_for).get(2) else {
        return false;
    };
    // The body must contain exactly one top-level statement that is itself a
    // for loop (possibly wrapped in a compound statement).
    let body_stmts: Vec<NodeId> = match ast.kind(body) {
        AstKind::CompoundStmt => ast.children(body).to_vec(),
        _ => vec![body],
    };
    let non_null: Vec<&NodeId> = body_stmts
        .iter()
        .filter(|&&s| ast.kind(s) != AstKind::NullStmt)
        .collect();
    non_null.len() == 1 && ast.kind(*non_null[0]) == AstKind::ForStmt
}

/// Loop-aware operation estimate for a subtree.
///
/// All counts are *dynamic* estimates: statement counts are multiplied by the
/// trip counts of enclosing loops, and `if` branches are weighted by a ½
/// probability, mirroring the edge-weight rules of ParaGraph itself.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkEstimate {
    /// Floating-point arithmetic operations.
    pub flops: f64,
    /// Integer arithmetic operations (includes address arithmetic).
    pub int_ops: f64,
    /// Array-element reads.
    pub loads: f64,
    /// Array-element writes.
    pub stores: f64,
    /// Comparison operations.
    pub compares: f64,
    /// Function calls (intrinsics such as `sqrt`, `exp` count here).
    pub calls: f64,
    /// Total loop iterations executed (product-summed over loop nests).
    pub iterations: f64,
    /// Maximum loop nest depth in the subtree.
    pub max_loop_depth: usize,
}

impl WorkEstimate {
    /// Combined memory operations.
    pub fn memory_ops(&self) -> f64 {
        self.loads + self.stores
    }

    /// Total arithmetic operations.
    pub fn arithmetic_ops(&self) -> f64 {
        self.flops + self.int_ops
    }

    fn add_scaled(&mut self, other: &WorkEstimate, scale: f64) {
        self.flops += other.flops * scale;
        self.int_ops += other.int_ops * scale;
        self.loads += other.loads * scale;
        self.stores += other.stores * scale;
        self.compares += other.compares * scale;
        self.calls += other.calls * scale;
        self.iterations += other.iterations * scale;
        self.max_loop_depth = self.max_loop_depth.max(other.max_loop_depth);
    }
}

/// Trip count assumed for loops whose bounds cannot be determined statically.
pub const DEFAULT_UNKNOWN_TRIP_COUNT: u64 = 64;

/// Estimate the dynamic work performed by the subtree rooted at `node`.
pub fn estimate_work(ast: &Ast, node: NodeId, env: &ConstEnv) -> WorkEstimate {
    // Names of variables declared with a floating-point type, used to decide
    // whether an arithmetic operation is a flop or an integer op.
    let float_vars: std::collections::HashSet<String> = ast
        .iter()
        .filter(|(_, n)| matches!(n.kind, AstKind::VarDecl | AstKind::ParmVarDecl))
        .filter(|(_, n)| {
            n.data
                .ty
                .as_deref()
                .is_some_and(|t| t.contains("float") || t.contains("double"))
        })
        .filter_map(|(_, n)| n.data.name.clone())
        .collect();
    let ctx = WorkContext { env, float_vars };
    estimate_rec(ast, node, &ctx, true)
}

struct WorkContext<'a> {
    env: &'a ConstEnv,
    float_vars: std::collections::HashSet<String>,
}

fn estimate_rec(
    ast: &Ast,
    node: NodeId,
    ctx: &WorkContext<'_>,
    is_store_context: bool,
) -> WorkEstimate {
    let n = ast.node(node);
    let mut acc = WorkEstimate::default();
    match n.kind {
        AstKind::ForStmt => {
            let children = ast.children(node);
            let trips = trip_count(ast, node, ctx.env).unwrap_or(DEFAULT_UNKNOWN_TRIP_COUNT) as f64;
            // init runs once; cond runs trips+1 times; body and inc run trips times.
            if let Some(&init) = children.first() {
                acc.add_scaled(&estimate_rec(ast, init, ctx, true), 1.0);
            }
            if let Some(&cond) = children.get(1) {
                acc.add_scaled(&estimate_rec(ast, cond, ctx, true), trips + 1.0);
            }
            if let Some(&body) = children.get(2) {
                let body_work = estimate_rec(ast, body, ctx, true);
                acc.add_scaled(&body_work, trips);
                acc.max_loop_depth = acc.max_loop_depth.max(body_work.max_loop_depth + 1);
            }
            if let Some(&inc) = children.get(3) {
                acc.add_scaled(&estimate_rec(ast, inc, ctx, true), trips);
            }
            acc.iterations += trips;
        }
        AstKind::WhileStmt => {
            let trips = DEFAULT_UNKNOWN_TRIP_COUNT as f64;
            for &child in &n.children {
                acc.add_scaled(&estimate_rec(ast, child, ctx, true), trips);
            }
            acc.iterations += trips;
            acc.max_loop_depth = acc.max_loop_depth.max(1);
        }
        AstKind::IfStmt => {
            let children = ast.children(node);
            if let Some(&cond) = children.first() {
                acc.add_scaled(&estimate_rec(ast, cond, ctx, true), 1.0);
            }
            // Each branch executes with probability 1/2 (the paper's rule).
            for &branch in children.iter().skip(1) {
                acc.add_scaled(&estimate_rec(ast, branch, ctx, true), 0.5);
            }
        }
        AstKind::BinaryOperator | AstKind::CompoundAssignOperator => {
            let opcode = n.data.opcode.as_deref().unwrap_or("");
            let is_assign = opcode == "=";
            let is_compare = matches!(opcode, "<" | ">" | "<=" | ">=" | "==" | "!=");
            let float_ctx = subtree_touches_float(ast, node, ctx);
            if is_compare {
                acc.compares += 1.0;
            } else if !is_assign {
                if float_ctx {
                    acc.flops += 1.0;
                } else {
                    acc.int_ops += 1.0;
                }
            }
            // For assignments, the left-hand side is a store target.
            let children = ast.children(node);
            if (is_assign || n.kind == AstKind::CompoundAssignOperator) && !children.is_empty() {
                let lhs = children[0];
                if contains_kind(ast, lhs, AstKind::ArraySubscriptExpr) {
                    acc.stores += 1.0;
                }
                acc.add_scaled(&estimate_rec(ast, lhs, ctx, false), 1.0);
                for &c in &children[1..] {
                    acc.add_scaled(&estimate_rec(ast, c, ctx, true), 1.0);
                }
                return acc;
            }
            for &c in children {
                acc.add_scaled(&estimate_rec(ast, c, ctx, is_store_context), 1.0);
            }
        }
        AstKind::UnaryOperator => {
            if matches!(
                n.data.opcode.as_deref(),
                Some("++") | Some("--") | Some("-") | Some("~")
            ) {
                acc.int_ops += 1.0;
            }
            for &c in &n.children {
                acc.add_scaled(&estimate_rec(ast, c, ctx, is_store_context), 1.0);
            }
        }
        AstKind::ArraySubscriptExpr => {
            // Address arithmetic plus a load (stores were accounted for at the
            // assignment node above).
            acc.int_ops += 1.0;
            if is_store_context {
                acc.loads += 1.0;
            }
            for &c in &n.children {
                acc.add_scaled(&estimate_rec(ast, c, ctx, true), 1.0);
            }
        }
        AstKind::CallExpr => {
            acc.calls += 1.0;
            // Intrinsic math calls are expensive: count them as several flops.
            if let Some(callee) = n.children.first() {
                if let Some(name) = referenced_name(ast, *callee) {
                    let intrinsic_cost = match name.as_str() {
                        "sqrt" | "sqrtf" | "fabs" | "abs" => 4.0,
                        "exp" | "expf" | "log" | "logf" => 8.0,
                        "pow" | "powf" | "sin" | "cos" | "tan" => 12.0,
                        _ => 0.0,
                    };
                    acc.flops += intrinsic_cost;
                }
            }
            for &c in n.children.iter().skip(1) {
                acc.add_scaled(&estimate_rec(ast, c, ctx, true), 1.0);
            }
        }
        _ => {
            for &c in &n.children {
                acc.add_scaled(&estimate_rec(ast, c, ctx, is_store_context), 1.0);
            }
        }
    }
    acc
}

fn contains_kind(ast: &Ast, node: NodeId, kind: AstKind) -> bool {
    ast.preorder_from(node)
        .into_iter()
        .any(|id| ast.kind(id) == kind)
}

fn subtree_touches_float(ast: &Ast, node: NodeId, ctx: &WorkContext<'_>) -> bool {
    ast.preorder_from(node).into_iter().any(|id| {
        let n = ast.node(id);
        matches!(n.kind, AstKind::FloatingLiteral)
            || n.data
                .ty
                .as_deref()
                .is_some_and(|t| t.contains("float") || t.contains("double"))
            || (n.kind == AstKind::DeclRefExpr
                && n.data
                    .name
                    .as_ref()
                    .is_some_and(|name| ctx.float_vars.contains(name)))
    })
}

/// Build a constant environment from the declarations in the AST itself:
/// every variable declared with a constant initialiser contributes a binding.
pub fn collect_const_env(ast: &Ast) -> ConstEnv {
    let mut env = ConstEnv::new();
    for (id, node) in ast.iter() {
        if node.kind == AstKind::VarDecl {
            if let (Some(name), Some(&init)) = (node.data.name.clone(), node.children.first()) {
                if let Some(value) = const_eval(ast, init, &env) {
                    env.insert(name, value);
                }
            }
        }
        let _ = id;
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn first_for(ast: &Ast) -> NodeId {
        ast.find_first(AstKind::ForStmt).unwrap()
    }

    #[test]
    fn const_eval_handles_arithmetic() {
        let ast = parse("void f() { int x = (2 + 3) * 4 - 6 / 2; }").unwrap();
        let var = ast.find_first(AstKind::VarDecl).unwrap();
        let init = ast.children(var)[0];
        assert_eq!(const_eval(&ast, init, &ConstEnv::new()), Some(17));
    }

    #[test]
    fn const_eval_uses_environment() {
        let ast = parse("void f(int n) { int x = n * 2; }").unwrap();
        let var = ast.find_first(AstKind::VarDecl).unwrap();
        let init = ast.children(var)[0];
        assert_eq!(const_eval(&ast, init, &ConstEnv::new()), None);
        let mut env = ConstEnv::new();
        env.insert("n".to_string(), 21);
        assert_eq!(const_eval(&ast, init, &env), Some(42));
    }

    #[test]
    fn const_eval_overflow_is_none_not_panic() {
        // Each of these used to panic under debug assertions (the test
        // profile) before const_eval switched to checked arithmetic.
        let cases = [
            // -(i64::MIN): i64::MIN is spelled -(9223372036854775807) - 1.
            "void f() { int x = -(-9223372036854775807 - 1); }",
            "void f() { int x = (-9223372036854775807 - 1) / -1; }",
            "void f() { int x = (-9223372036854775807 - 1) % -1; }",
            "void f() { int x = 1 / 0; }",
            "void f() { int x = 1 % 0; }",
        ];
        for src in cases {
            let ast = parse(src).unwrap();
            let var = ast.find_first(AstKind::VarDecl).unwrap();
            let init = ast.children(var)[0];
            assert_eq!(const_eval(&ast, init, &ConstEnv::new()), None, "{src}");
        }
        // i64::MIN itself still evaluates.
        let ast = parse("void f() { int x = -9223372036854775807 - 1; }").unwrap();
        let var = ast.find_first(AstKind::VarDecl).unwrap();
        let init = ast.children(var)[0];
        assert_eq!(const_eval(&ast, init, &ConstEnv::new()), Some(i64::MIN));
    }

    #[test]
    fn trip_count_extreme_bounds_do_not_overflow() {
        // bound - 1 underflows for `!=`/`<` at i64::MIN; step negation
        // overflows at i64::MIN; the span can exceed i64. All must yield
        // None or a clamped count, never a panic.
        let cases = [
            "void f() { for (long i = 0; i < -9223372036854775807 - 1; i++) { } }",
            "void f() { for (long i = 9223372036854775807; i > 0; i += -9223372036854775807 - 1) { } }",
            "void f() { for (long i = -9223372036854775807 - 1; i < 9223372036854775807; i++) { } }",
            "void f() { for (long i = 0; i != -9223372036854775807 - 1; i++) { } }",
        ];
        for src in cases {
            let ast = parse(src).unwrap();
            // Must not panic; the resulting trip count may be anything.
            let _ = analyze_for(&ast, first_for(&ast), &ConstEnv::new());
        }
    }

    #[test]
    fn canonical_loop_trip_count_literal_bound() {
        let ast = parse("void f() { for (int i = 0; i < 50; i++) { } }").unwrap();
        let info = analyze_for(&ast, first_for(&ast), &ConstEnv::new()).unwrap();
        assert_eq!(info.counter, "i");
        assert_eq!(info.start, Some(0));
        assert_eq!(info.bound, Some(50));
        assert_eq!(info.step, 1);
        assert_eq!(info.trip_count, Some(50));
    }

    #[test]
    fn trip_count_inclusive_bound_and_steps() {
        let ast = parse("void f() { for (int i = 1; i <= 100; i += 2) { } }").unwrap();
        assert_eq!(
            trip_count(&ast, first_for(&ast), &ConstEnv::new()),
            Some(50)
        );

        let ast = parse("void f() { for (int i = 10; i > 0; i--) { } }").unwrap();
        assert_eq!(
            trip_count(&ast, first_for(&ast), &ConstEnv::new()),
            Some(10)
        );

        let ast = parse("void f() { for (int i = 99; i >= 0; i -= 3) { } }").unwrap();
        assert_eq!(
            trip_count(&ast, first_for(&ast), &ConstEnv::new()),
            Some(34)
        );
    }

    #[test]
    fn trip_count_with_variable_bound_uses_env() {
        let ast = parse("void f(int n) { for (int i = 0; i < n; i++) { } }").unwrap();
        assert_eq!(trip_count(&ast, first_for(&ast), &ConstEnv::new()), None);
        let mut env = ConstEnv::new();
        env.insert("n".to_string(), 2048);
        assert_eq!(trip_count(&ast, first_for(&ast), &env), Some(2048));
    }

    #[test]
    fn trip_count_i_equals_i_plus_c_form() {
        let ast = parse("void f() { for (int i = 0; i < 16; i = i + 4) { } }").unwrap();
        assert_eq!(trip_count(&ast, first_for(&ast), &ConstEnv::new()), Some(4));
    }

    #[test]
    fn trip_count_reversed_comparison() {
        let ast = parse("void f() { for (int i = 0; 50 > i; i++) { } }").unwrap();
        assert_eq!(
            trip_count(&ast, first_for(&ast), &ConstEnv::new()),
            Some(50)
        );
    }

    #[test]
    fn zero_trip_loop() {
        let ast = parse("void f() { for (int i = 10; i < 5; i++) { } }").unwrap();
        assert_eq!(trip_count(&ast, first_for(&ast), &ConstEnv::new()), Some(0));
    }

    #[test]
    fn non_canonical_loop_returns_none() {
        let ast = parse("void f(int n) { for (int i = 0; i * i < n; i++) { } }").unwrap();
        assert!(analyze_for(&ast, first_for(&ast), &ConstEnv::new()).is_none());
    }

    #[test]
    fn classify_for_names_the_defect() {
        let env = ConstEnv::new();
        let cases: &[(&str, LoopShape)] = &[
            (
                "void f(int n) { for (int i = 0; i * i < n; i++) { } }",
                LoopShape::CounterNotInCondition,
            ),
            (
                "void f(int n, int *done) { for (int i = 0; done[i]; i++) { } }",
                LoopShape::NonCanonicalCondition,
            ),
            (
                "void f(int n) { for (int i = 1; i < n; i *= 2) { } }",
                LoopShape::NonConstantStride,
            ),
            (
                "void f(int n, int m) { for (int i = 0; i < n; i += m) { } }",
                LoopShape::NonConstantStride,
            ),
        ];
        for (src, expected) in cases {
            let ast = parse(src).unwrap();
            assert_eq!(
                classify_for(&ast, first_for(&ast), &env),
                Err(*expected),
                "{src}"
            );
        }
        let ok = parse("void f() { for (int i = 0; i < 8; i++) { } }").unwrap();
        assert!(classify_for(&ok, first_for(&ok), &env).is_ok());
        // Non-ForStmt nodes classify as NotAForLoop rather than panicking.
        let root = ok.root();
        assert_eq!(classify_for(&ok, root, &env), Err(LoopShape::NotAForLoop));
    }

    #[test]
    fn loop_nest_records_shape_for_opaque_levels() {
        let src = r#"
            void f(int n, int m) {
                for (int i = 0; i < 8; i++) {
                    for (int j = 0; j < n; j += m) { }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let nest = loop_nest(&ast, first_for(&ast), &ConstEnv::new());
        assert_eq!(nest.len(), 2);
        assert!(nest[0].info.is_some() && nest[0].shape.is_none());
        assert!(nest[1].info.is_none());
        assert_eq!(nest[1].shape, Some(LoopShape::NonConstantStride));
    }

    #[test]
    fn loop_nest_discovery() {
        let src = r#"
            void f(int n, int m) {
                for (int i = 0; i < 8; i++) {
                    for (int j = 0; j < 16; j++) {
                        for (int k = 0; k < 32; k++) { }
                    }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let nest = loop_nest(&ast, first_for(&ast), &ConstEnv::new());
        assert_eq!(nest.len(), 3);
        assert_eq!(nest[0].depth, 0);
        assert_eq!(nest[1].depth, 1);
        assert_eq!(nest[2].depth, 2);
        assert_eq!(nest[0].info.as_ref().unwrap().trip_count, Some(8));
        assert_eq!(nest[2].info.as_ref().unwrap().trip_count, Some(32));
    }

    #[test]
    fn collapsibility_detection() {
        let collapsible = parse(
            "void f(int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { } } }",
        )
        .unwrap();
        assert!(is_collapsible(&collapsible, first_for(&collapsible)));

        let not_collapsible = parse(
            "void f(int n, float *a) { for (int i = 0; i < n; i++) { a[i] = 0.0; for (int j = 0; j < n; j++) { } } }",
        )
        .unwrap();
        assert!(!is_collapsible(
            &not_collapsible,
            first_for(&not_collapsible)
        ));

        let flat = parse("void f(int n, float *a) { for (int i = 0; i < n; i++) { a[i] = 1.0; } }")
            .unwrap();
        assert!(!is_collapsible(&flat, first_for(&flat)));
    }

    #[test]
    fn work_estimate_scales_with_loop_bounds() {
        let small = parse(
            "void f(float *a, float *b) { for (int i = 0; i < 10; i++) { a[i] = a[i] + b[i]; } }",
        )
        .unwrap();
        let large = parse(
            "void f(float *a, float *b) { for (int i = 0; i < 1000; i++) { a[i] = a[i] + b[i]; } }",
        )
        .unwrap();
        let env = ConstEnv::new();
        let ws = estimate_work(&small, small.root(), &env);
        let wl = estimate_work(&large, large.root(), &env);
        assert!(
            wl.flops > ws.flops * 50.0,
            "flops must scale with trip count"
        );
        assert!(wl.loads > ws.loads * 50.0);
        assert!(wl.stores > ws.stores * 50.0);
        assert!(ws.stores > 0.0);
        assert!(ws.max_loop_depth == 1);
    }

    #[test]
    fn work_estimate_matmul_is_cubic() {
        let src = r#"
            void mm(float *a, float *b, float *c, int n) {
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        float sum = 0.0;
                        for (int k = 0; k < n; k++) {
                            sum += a[i * n + k] * b[k * n + j];
                        }
                        c[i * n + j] = sum;
                    }
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let mut env = ConstEnv::new();
        env.insert("n".to_string(), 64);
        let w = estimate_work(&ast, ast.root(), &env);
        let n3 = 64.0f64.powi(3);
        // 2 flops per innermost iteration (multiply + add).
        assert!(
            w.flops > 1.5 * n3 && w.flops < 3.0 * n3,
            "flops = {}",
            w.flops
        );
        assert_eq!(w.max_loop_depth, 3);
        assert!(w.loads >= 2.0 * n3);
    }

    #[test]
    fn if_branches_are_half_weighted() {
        let src_then_only = parse(
            "void f(float *a) { for (int i = 0; i < 100; i++) { if (i > 50) { a[i] = a[i] * 2.0; } } }",
        )
        .unwrap();
        let src_unconditional =
            parse("void f(float *a) { for (int i = 0; i < 100; i++) { a[i] = a[i] * 2.0; } }")
                .unwrap();
        let env = ConstEnv::new();
        let w_if = estimate_work(&src_then_only, src_then_only.root(), &env);
        let w_all = estimate_work(&src_unconditional, src_unconditional.root(), &env);
        // The conditional version should do roughly half the multiplications.
        assert!(w_if.flops < w_all.flops * 0.75);
        assert!(w_if.flops > w_all.flops * 0.25);
    }

    #[test]
    fn intrinsic_calls_add_flops() {
        let with_sqrt =
            parse("void f(float *a) { for (int i = 0; i < 10; i++) { a[i] = sqrt(a[i]); } }")
                .unwrap();
        let plain =
            parse("void f(float *a) { for (int i = 0; i < 10; i++) { a[i] = a[i]; } }").unwrap();
        let env = ConstEnv::new();
        let w_sqrt = estimate_work(&with_sqrt, with_sqrt.root(), &env);
        let w_plain = estimate_work(&plain, plain.root(), &env);
        assert!(w_sqrt.calls > 0.0);
        assert!(w_sqrt.flops > w_plain.flops);
    }

    #[test]
    fn collect_const_env_picks_up_constant_declarations() {
        let ast = parse("void f() { int n = 128; int m = n * 2; for (int i = 0; i < m; i++) { } }")
            .unwrap();
        let env = collect_const_env(&ast);
        assert_eq!(env.get("n"), Some(&128));
        assert_eq!(env.get("m"), Some(&256));
        assert_eq!(trip_count(&ast, first_for(&ast), &env), Some(256));
    }
}
