//! Structured C/OpenMP program generator and mutators for fuzzing.
//!
//! This module is the input side of the frontend's untrusted-input test
//! story: [`Generator`] produces programs that are valid by construction
//! (so round-trip and differential properties can be asserted), and
//! [`mutate`] corrupts them — byte flips, truncation, token splicing,
//! OpenMP directive scrambling, deep-nesting bombs — so the parser's
//! "typed error, never a panic" contract can be exercised over the whole
//! input space. Everything is driven by a deterministic [`Rng`], so a fuzz
//! failure reproduces from its reported seed alone.
//!
//! The module lives in the library (not a dev-crate) so that downstream
//! crates — `pg-analyze`'s differential tests, `pg-serve`'s parse-bomb
//! tests, the ingest benchmarks — can reuse the same generator without a
//! new dependency edge.

use std::fmt::Write as _;

/// Deterministic xorshift64* PRNG.
///
/// Not cryptographic; chosen because it is a handful of lines, has no
/// dependencies, and makes every fuzz case reproducible from a `u64` seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (`n == 0` returns 0).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        den != 0 && (self.next_u64() % den as u64) < num as u64
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Size knobs for the program generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of function definitions per program (at least 1).
    pub max_functions: usize,
    /// Statements per block.
    pub max_stmts_per_block: usize,
    /// Maximum block/statement nesting depth.
    pub max_block_depth: usize,
    /// Maximum expression nesting depth.
    pub max_expr_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_functions: 3,
            max_stmts_per_block: 5,
            max_block_depth: 4,
            max_expr_depth: 4,
        }
    }
}

/// Valid-by-construction C/OpenMP program generator.
///
/// The output uses exactly the constructs the parser supports (the paper's
/// benchmark subset): functions with scalar/pointer parameters, `for` /
/// `while` / `if` statements, OpenMP pragmas attached to loops, and the
/// usual expression grammar. Avoids string/char literals so the printer
/// round-trip property can compare ASTs structurally.
pub struct Generator {
    rng: Rng,
    config: GenConfig,
    fresh: usize,
    scalars: Vec<String>,
    arrays: Vec<String>,
}

impl Generator {
    /// Create a generator with the given seed and default size knobs.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, GenConfig::default())
    }

    /// Create a generator with explicit size knobs.
    pub fn with_config(seed: u64, config: GenConfig) -> Self {
        Self {
            rng: Rng::new(seed),
            config,
            fresh: 0,
            scalars: Vec::new(),
            arrays: Vec::new(),
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    /// Generate one complete translation unit.
    pub fn program(&mut self) -> String {
        self.scalars.clear();
        self.arrays.clear();
        let mut out = String::new();
        if self.rng.chance(1, 2) {
            let _ = writeln!(out, "#define N {}", 64 << self.rng.below(5));
        }
        if self.rng.chance(1, 3) {
            let g = self.fresh_name("g");
            let _ = writeln!(out, "int {g} = {};", self.rng.below(1000));
            self.scalars.push(g);
        }
        let nfuncs = 1 + self.rng.below(self.config.max_functions);
        for f in 0..nfuncs {
            self.emit_function(&mut out, f);
        }
        out
    }

    fn emit_function(&mut self, out: &mut String, index: usize) {
        // Globals stay in scope; function locals are reset per function.
        let globals = self.scalars.clone();
        self.scalars = globals.clone();
        self.arrays.clear();

        let a = self.fresh_name("a");
        let b = self.fresh_name("b");
        let n = self.fresh_name("n");
        let _ = write!(out, "void kernel{index}(float *{a}, float *{b}, int {n}) ");
        self.arrays.push(a);
        self.arrays.push(b);
        self.scalars.push(n);
        self.emit_block(out, 0);
        out.push('\n');
        self.scalars = globals;
    }

    fn emit_block(&mut self, out: &mut String, depth: usize) {
        out.push_str("{\n");
        let scalars_mark = self.scalars.len();
        let nstmts = 1 + self.rng.below(self.config.max_stmts_per_block);
        for _ in 0..nstmts {
            self.emit_statement(out, depth);
        }
        out.push_str("}\n");
        self.scalars.truncate(scalars_mark);
    }

    fn emit_statement(&mut self, out: &mut String, depth: usize) {
        let at_limit = depth + 1 >= self.config.max_block_depth;
        match self.rng.below(if at_limit { 3 } else { 6 }) {
            0 => {
                // Declaration with initialiser.
                let ty = *self.rng.pick(&["int", "float", "double", "long"]);
                let name = self.fresh_name("v");
                let init = self.expr(0);
                let _ = writeln!(out, "{ty} {name} = {init};");
                self.scalars.push(name);
            }
            1 => {
                // Assignment (scalar or array element).
                let lhs = self.lvalue();
                let op = *self.rng.pick(&["=", "+=", "-=", "*="]);
                let rhs = self.expr(0);
                let _ = writeln!(out, "{lhs} {op} {rhs};");
            }
            2 => {
                // Null statement / postfix increment.
                if self.scalars.is_empty() || self.rng.chance(1, 4) {
                    out.push_str(";\n");
                } else {
                    let v = self.rng.pick(&self.scalars).clone();
                    let _ = writeln!(out, "{v}++;");
                }
            }
            3 => self.emit_for(out, depth),
            4 => {
                let cond = self.expr(0);
                let _ = write!(out, "if ({cond}) ");
                self.emit_block(out, depth + 1);
                if self.rng.chance(1, 2) {
                    out.push_str("else ");
                    self.emit_block(out, depth + 1);
                }
            }
            _ => {
                let bound = self.rng.below(8);
                let v = self.fresh_name("w");
                let _ = writeln!(out, "int {v} = 0;");
                let _ = write!(out, "while ({v} < {bound}) ");
                self.scalars.push(v.clone());
                let mark = self.scalars.len();
                out.push_str("{\n");
                let _ = writeln!(out, "{v} = {v} + 1;");
                self.emit_statement(out, depth + 1);
                out.push_str("}\n");
                self.scalars.truncate(mark);
            }
        }
    }

    fn emit_for(&mut self, out: &mut String, depth: usize) {
        if self.rng.chance(1, 2) {
            out.push_str(self.pragma().as_str());
            out.push('\n');
        }
        let i = self.fresh_name("i");
        let bound = match self.rng.below(3) {
            0 => format!("{}", 1 + self.rng.below(4096)),
            1 if !self.scalars.is_empty() => self.rng.pick(&self.scalars).clone(),
            _ => "100".to_string(),
        };
        let _ = write!(out, "for (int {i} = 0; {i} < {bound}; {i}++) ");
        self.scalars.push(i);
        self.emit_block(out, depth + 1);
        self.scalars.pop();
    }

    fn pragma(&mut self) -> String {
        let mut p = String::from("#pragma omp ");
        const FORMS: [&str; 4] = [
            "parallel for",
            "parallel for simd",
            "simd",
            "target teams distribute parallel for",
        ];
        let form = *self.rng.pick(&FORMS);
        p.push_str(form);
        if self.rng.chance(1, 2) {
            match self.rng.below(4) {
                0 => p.push_str(" schedule(static)"),
                1 => p.push_str(" schedule(dynamic, 64)"),
                2 => {
                    if let Some(v) = self.scalars.last() {
                        let _ = write!(p, " private({v})");
                    }
                }
                _ => p.push_str(" collapse(2)"),
            }
        }
        if self.rng.chance(1, 4) {
            if let Some(v) = self.scalars.first() {
                let _ = write!(p, " reduction(+:{v})");
            }
        }
        p
    }

    fn lvalue(&mut self) -> String {
        if !self.arrays.is_empty() && self.rng.chance(1, 2) {
            let a = self.rng.pick(&self.arrays).clone();
            let idx = self.expr(self.config.max_expr_depth.saturating_sub(1));
            format!("{a}[{idx}]")
        } else if let Some(v) = self.scalars.last() {
            v.clone()
        } else {
            let name = self.fresh_name("v");
            // No scalar in scope: fall back to a literal-free declaration-
            // style target is impossible mid-expression, so synthesise a
            // self-assigned fresh name — still valid C once declared below.
            self.scalars.push(name.clone());
            name
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth >= self.config.max_expr_depth {
            return self.atom();
        }
        match self.rng.below(8) {
            0..=2 => self.atom(),
            3 => {
                let op = *self
                    .rng
                    .pick(&["+", "-", "*", "/", "%", "<", ">", "==", "&&"]);
                format!("{} {op} {}", self.expr(depth + 1), self.expr(depth + 1))
            }
            4 => format!("({})", self.expr(depth + 1)),
            5 => {
                let op = *self.rng.pick(&["-", "!", "~"]);
                format!("{op}{}", self.expr(depth + 1))
            }
            6 if !self.arrays.is_empty() => {
                let a = self.rng.pick(&self.arrays).clone();
                format!("{a}[{}]", self.expr(depth + 1))
            }
            _ => format!(
                "{} ? {} : {}",
                self.expr(depth + 1),
                self.expr(depth + 1),
                self.expr(depth + 1)
            ),
        }
    }

    fn atom(&mut self) -> String {
        match self.rng.below(4) {
            0 if !self.scalars.is_empty() => self.rng.pick(&self.scalars).clone(),
            1 => format!("{}.{}", self.rng.below(100), self.rng.below(10)),
            _ => format!("{}", self.rng.below(10_000)),
        }
    }
}

/// Generate one program with default knobs — the common fuzz entry point.
pub fn generate_program(seed: u64) -> String {
    Generator::new(seed).program()
}

/// The mutation strategies applied by [`mutate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip random bits in random bytes (output re-validated as UTF-8
    /// lossily, so the parser also sees replacement characters).
    ByteFlip,
    /// Cut the input at a random char boundary.
    Truncate,
    /// Swap / duplicate / delete rough token spans within a line, and
    /// occasionally whole lines.
    TokenSplice,
    /// Corrupt `#pragma` lines specifically.
    DirectiveScramble,
    /// Append a parenthesis/brace bomb far beyond any sane nesting depth.
    DeepNesting,
}

/// All mutation strategies, for iteration in harnesses.
pub const ALL_MUTATIONS: [Mutation; 5] = [
    Mutation::ByteFlip,
    Mutation::Truncate,
    Mutation::TokenSplice,
    Mutation::DirectiveScramble,
    Mutation::DeepNesting,
];

/// Apply one randomly-chosen mutation.
pub fn mutate(source: &str, rng: &mut Rng) -> String {
    let m = *rng.pick(&ALL_MUTATIONS);
    mutate_with(source, m, rng)
}

/// Apply a specific mutation strategy.
pub fn mutate_with(source: &str, mutation: Mutation, rng: &mut Rng) -> String {
    match mutation {
        Mutation::ByteFlip => byte_flip(source, rng),
        Mutation::Truncate => truncate(source, rng),
        Mutation::TokenSplice => token_splice(source, rng),
        Mutation::DirectiveScramble => directive_scramble(source, rng),
        Mutation::DeepNesting => format!("{source}\n{}", nesting_bomb(64 + rng.below(4096))),
    }
}

fn byte_flip(source: &str, rng: &mut Rng) -> String {
    if source.is_empty() {
        return String::new();
    }
    let mut bytes = source.as_bytes().to_vec();
    let flips = 1 + rng.below(8);
    for _ in 0..flips {
        let pos = rng.below(bytes.len());
        bytes[pos] ^= 1 << rng.below(8);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn truncate(source: &str, rng: &mut Rng) -> String {
    if source.is_empty() {
        return String::new();
    }
    let mut cut = rng.below(source.len());
    while cut > 0 && !source.is_char_boundary(cut) {
        cut -= 1;
    }
    source[..cut].to_string()
}

/// Split a line into rough lexical tokens: identifier/number runs, single
/// punctuation characters. Whitespace separates but is not kept.
fn rough_tokens(line: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut current = String::new();
    for c in line.chars() {
        if c.is_alphanumeric() || c == '_' || c == '.' {
            current.push(c);
        } else {
            if !current.is_empty() {
                toks.push(std::mem::take(&mut current));
            }
            if !c.is_whitespace() {
                toks.push(c.to_string());
            }
        }
    }
    if !current.is_empty() {
        toks.push(current);
    }
    toks
}

fn token_splice(source: &str, rng: &mut Rng) -> String {
    let mut lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
    if lines.is_empty() {
        return source.to_string();
    }
    match rng.below(4) {
        0 if lines.len() >= 2 => {
            // Swap two whole lines.
            let a = rng.below(lines.len());
            let b = rng.below(lines.len());
            lines.swap(a, b);
        }
        1 => {
            // Duplicate a line.
            let a = rng.below(lines.len());
            let line = lines[a].clone();
            lines.insert(a, line);
        }
        2 => {
            // Delete a line.
            let a = rng.below(lines.len());
            lines.remove(a);
        }
        _ => {
            // Splice tokens within one line.
            let a = rng.below(lines.len());
            let mut toks = rough_tokens(&lines[a]);
            if toks.len() >= 2 {
                match rng.below(3) {
                    0 => {
                        let i = rng.below(toks.len());
                        let j = rng.below(toks.len());
                        toks.swap(i, j);
                    }
                    1 => {
                        let i = rng.below(toks.len());
                        let t = toks[i].clone();
                        toks.insert(rng.below(toks.len()), t);
                    }
                    _ => {
                        let i = rng.below(toks.len());
                        toks.remove(i);
                    }
                }
                lines[a] = toks.join(" ");
            }
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn directive_scramble(source: &str, rng: &mut Rng) -> String {
    const GARBAGE: [&str; 8] = [
        "#pragma omp",
        "#pragma omp parallel for collapse(-1)",
        "#pragma omp parallel for schedule(",
        "#pragma omp target data map(",
        "#pragma omp simd simd simd",
        "#pragma omp parallel for reduction(:)",
        "#pragma omp \u{fffd}\u{fffd}",
        "#pragma not_omp_at_all weird(stuff",
    ];
    let mut lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
    let pragma_idx: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("#pragma"))
        .map(|(i, _)| i)
        .collect();
    if pragma_idx.is_empty() {
        // No pragma present: inject a scrambled one at a random line.
        let at = rng.below(lines.len() + 1);
        lines.insert(at, rng.pick(&GARBAGE).to_string());
    } else {
        let at = *rng.pick(&pragma_idx);
        lines[at] = match rng.below(3) {
            0 => rng.pick(&GARBAGE).to_string(),
            1 => {
                // Shuffle the words of the existing pragma.
                let mut toks = rough_tokens(&lines[at]);
                if toks.len() >= 2 {
                    let i = rng.below(toks.len());
                    let j = rng.below(toks.len());
                    toks.swap(i, j);
                }
                toks.join(" ")
            }
            _ => format!("{} garbage_clause({}", lines[at], rng.below(100)),
        };
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// A deep-nesting parse bomb: a single declaration whose initialiser is
/// wrapped in `depth` parentheses. With `depth` above
/// [`ParseOptions::max_nesting_depth`](crate::ParseOptions), parsing must
/// return a `NestingTooDeep` error rather than overflow the stack.
pub fn nesting_bomb(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 2 + 32);
    s.push_str("void bomb() { int x = ");
    for _ in 0..depth {
        s.push('(');
    }
    s.push('1');
    for _ in 0..depth {
        s.push(')');
    }
    s.push_str("; }\n");
    s
}

/// Like [`rough_tokens`], but keeps multi-character operators (`<=`, `++`,
/// `&&`, ...) intact so the token stream survives re-spacing unchanged.
fn operator_preserving_tokens(line: &str) -> Vec<String> {
    const TWO_CHAR: [&str; 16] = [
        "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--",
        "->",
    ];
    let mut toks = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphanumeric() || c == '_' || c == '.' {
            current.push(c);
            i += 1;
            continue;
        }
        if !current.is_empty() {
            toks.push(std::mem::take(&mut current));
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if TWO_CHAR.contains(&pair.as_str()) {
            toks.push(pair);
            i += 2;
        } else {
            toks.push(c.to_string());
            i += 1;
        }
    }
    if !current.is_empty() {
        toks.push(current);
    }
    toks
}

/// Produce a semantically-identical twin of `source` that differs only in
/// whitespace and comments. Pragma and preprocessor lines are preserved
/// verbatim (they are line-delimited, so inserting newlines into them would
/// change meaning); everywhere else, random spaces, newlines, and `/* */`
/// comments are inserted between rough tokens.
///
/// Used by the differential test: `analyze` verdicts must be identical for
/// `source` and `reformat(source, ..)`.
pub fn reformat(source: &str, rng: &mut Rng) -> String {
    let mut out = String::with_capacity(source.len() * 2);
    for line in source.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') {
            // Preprocessor / pragma lines are line-delimited: keep verbatim.
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let toks = operator_preserving_tokens(line);
        for (i, t) in toks.iter().enumerate() {
            if i > 0 {
                match rng.below(6) {
                    0 => out.push_str("  "),
                    1 => out.push('\t'),
                    2 => out.push_str(" /* noise */ "),
                    3 => out.push('\n'),
                    _ => out.push(' '),
                }
            }
            out.push_str(t);
        }
        if rng.chance(1, 5) {
            out.push_str(" /* trailing */");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn generated_programs_parse() {
        for seed in 0..200 {
            let src = generate_program(seed);
            if let Err(e) = parse(&src) {
                panic!("seed {seed} generated an unparseable program: {e}\n{src}");
            }
        }
    }

    #[test]
    fn generated_programs_vary_with_seed() {
        assert_ne!(generate_program(1), generate_program(2));
        // And are reproducible for the same seed.
        assert_eq!(generate_program(7), generate_program(7));
    }

    #[test]
    fn reformat_only_touches_whitespace_and_comments() {
        for seed in 0..50 {
            let src = generate_program(seed);
            let mut rng = Rng::new(seed.wrapping_mul(31));
            let twin = reformat(&src, &mut rng);
            let strip = |s: &str| {
                // Token stream must be identical after removing whitespace
                // and the injected comments.
                let no_comments = s.replace("/* noise */", " ").replace("/* trailing */", " ");
                no_comments.split_whitespace().collect::<Vec<_>>().join(" ")
            };
            assert_eq!(
                strip(&src).replace(' ', ""),
                strip(&twin).replace(' ', ""),
                "seed {seed}: reformat changed token content"
            );
        }
    }

    #[test]
    fn nesting_bomb_is_balanced() {
        let bomb = nesting_bomb(8);
        assert_eq!(bomb.matches('(').count(), bomb.matches(')').count());
        // Below the default cap it even parses.
        parse(&bomb).unwrap();
    }

    #[test]
    fn mutations_produce_strings_without_panicking() {
        let src = generate_program(99);
        let mut rng = Rng::new(1234);
        for m in ALL_MUTATIONS {
            for _ in 0..20 {
                let _ = mutate_with(&src, m, &mut rng);
            }
        }
    }
}
