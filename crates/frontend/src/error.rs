//! Error type shared by the lexer and parser.

use crate::token::SourceLocation;
use std::fmt;

/// Error produced while lexing or parsing a kernel source.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    /// Which phase produced the error.
    pub phase: Phase,
    /// Source location at which the error was detected.
    pub location: SourceLocation,
    /// Human-readable message.
    pub message: String,
}

/// Compilation phase that raised the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Semantic analysis (symbol resolution, OpenMP clause validation, ...).
    Sema,
}

impl FrontendError {
    /// Create a lexer error.
    pub fn lex(location: SourceLocation, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Lex,
            location,
            message: message.into(),
        }
    }

    /// Create a parser error.
    pub fn parse(location: SourceLocation, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Parse,
            location,
            message: message.into(),
        }
    }

    /// Create a semantic-analysis error.
    pub fn sema(location: SourceLocation, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Sema,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        write!(f, "{} error at {}: {}", phase, self.location, self.message)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_location() {
        let err = FrontendError::parse(SourceLocation { line: 2, column: 5 }, "expected ';'");
        assert_eq!(err.to_string(), "parse error at 2:5: expected ';'");
        let err = FrontendError::lex(SourceLocation { line: 1, column: 1 }, "bad char");
        assert!(err.to_string().starts_with("lex error"));
        let err = FrontendError::sema(SourceLocation { line: 9, column: 9 }, "unknown variable");
        assert!(err.to_string().starts_with("sema error"));
    }
}
