//! Error type shared by the lexer and parser.

use crate::token::SourceLocation;
use std::fmt;

/// Error produced while lexing or parsing a kernel source.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    /// Which phase produced the error.
    pub phase: Phase,
    /// Source location at which the error was detected.
    pub location: SourceLocation,
    /// Human-readable message.
    pub message: String,
    /// Machine-readable classification of the failure.
    pub kind: FrontendErrorKind,
}

/// Compilation phase that raised the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Semantic analysis (symbol resolution, OpenMP clause validation, ...).
    Sema,
}

/// Typed classification of a frontend failure.
///
/// The limit variants correspond one-to-one to the caps in
/// [`ParseOptions`](crate::ParseOptions): callers at the trust boundary (the
/// serving tier) use [`FrontendErrorKind::is_limit`] to distinguish a
/// request that blew its resource budget from one that is merely
/// syntactically wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrontendErrorKind {
    /// Generic syntax error (unexpected token, missing delimiter, ...).
    Syntax,
    /// A `/* ... */` comment ran to end of input.
    UnterminatedComment,
    /// A string or character literal ran to end of input.
    UnterminatedLiteral,
    /// A numeric literal that does not fit its type or is malformed.
    InvalidLiteral,
    /// A byte outside the accepted C-subset alphabet.
    UnexpectedCharacter,
    /// The input exceeded `max_source_bytes` before lexing started.
    SourceTooLarge {
        /// Actual input length in bytes.
        actual: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Lexing (including macro expansion) exceeded `max_tokens`.
    TooManyTokens {
        /// The configured cap.
        limit: usize,
    },
    /// Statement/expression nesting exceeded `max_nesting_depth`.
    NestingTooDeep {
        /// The configured cap.
        limit: usize,
    },
    /// The AST arena exceeded `max_ast_nodes`.
    TooManyNodes {
        /// The configured cap.
        limit: usize,
    },
}

impl FrontendErrorKind {
    /// Stable kebab-case name, suitable for wire diagnostics and metrics
    /// labels.
    pub fn name(&self) -> &'static str {
        match self {
            FrontendErrorKind::Syntax => "syntax",
            FrontendErrorKind::UnterminatedComment => "unterminated-comment",
            FrontendErrorKind::UnterminatedLiteral => "unterminated-literal",
            FrontendErrorKind::InvalidLiteral => "invalid-literal",
            FrontendErrorKind::UnexpectedCharacter => "unexpected-character",
            FrontendErrorKind::SourceTooLarge { .. } => "source-too-large",
            FrontendErrorKind::TooManyTokens { .. } => "too-many-tokens",
            FrontendErrorKind::NestingTooDeep { .. } => "nesting-too-deep",
            FrontendErrorKind::TooManyNodes { .. } => "too-many-nodes",
        }
    }

    /// The exhausted budget's configured cap, for limit kinds.
    pub fn limit(&self) -> Option<usize> {
        match *self {
            FrontendErrorKind::SourceTooLarge { limit, .. }
            | FrontendErrorKind::TooManyTokens { limit }
            | FrontendErrorKind::NestingTooDeep { limit }
            | FrontendErrorKind::TooManyNodes { limit } => Some(limit),
            _ => None,
        }
    }

    /// Whether this error means a [`ParseOptions`](crate::ParseOptions)
    /// budget was exhausted (as opposed to a plain syntax error).
    pub fn is_limit(&self) -> bool {
        matches!(
            self,
            FrontendErrorKind::SourceTooLarge { .. }
                | FrontendErrorKind::TooManyTokens { .. }
                | FrontendErrorKind::NestingTooDeep { .. }
                | FrontendErrorKind::TooManyNodes { .. }
        )
    }
}

impl FrontendError {
    /// Create a lexer error.
    pub fn lex(location: SourceLocation, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Lex,
            location,
            message: message.into(),
            kind: FrontendErrorKind::Syntax,
        }
    }

    /// Create a parser error.
    pub fn parse(location: SourceLocation, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Parse,
            location,
            message: message.into(),
            kind: FrontendErrorKind::Syntax,
        }
    }

    /// Create a semantic-analysis error.
    pub fn sema(location: SourceLocation, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Sema,
            location,
            message: message.into(),
            kind: FrontendErrorKind::Syntax,
        }
    }

    /// Replace the error's kind (builder-style).
    pub fn with_kind(mut self, kind: FrontendErrorKind) -> Self {
        self.kind = kind;
        self
    }

    /// Whether this error means a parse budget was exhausted.
    pub fn is_limit(&self) -> bool {
        self.kind.is_limit()
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        write!(f, "{} error at {}: {}", phase, self.location, self.message)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_location() {
        let err = FrontendError::parse(SourceLocation { line: 2, column: 5 }, "expected ';'");
        assert_eq!(err.to_string(), "parse error at 2:5: expected ';'");
        let err = FrontendError::lex(SourceLocation { line: 1, column: 1 }, "bad char");
        assert!(err.to_string().starts_with("lex error"));
        let err = FrontendError::sema(SourceLocation { line: 9, column: 9 }, "unknown variable");
        assert!(err.to_string().starts_with("sema error"));
    }

    #[test]
    fn limit_kinds_are_distinguished_from_syntax() {
        let loc = SourceLocation { line: 1, column: 1 };
        let syntax = FrontendError::parse(loc, "expected ';'");
        assert!(!syntax.is_limit());
        assert_eq!(syntax.kind, FrontendErrorKind::Syntax);
        let depth = FrontendError::parse(loc, "too deep")
            .with_kind(FrontendErrorKind::NestingTooDeep { limit: 128 });
        assert!(depth.is_limit());
        assert_eq!(depth.kind.name(), "nesting-too-deep");
        assert_eq!(depth.kind.limit(), Some(128));
        assert_eq!(FrontendErrorKind::Syntax.limit(), None);
        let tokens = FrontendError::lex(loc, "too many")
            .with_kind(FrontendErrorKind::TooManyTokens { limit: 10 });
        assert!(tokens.is_limit());
        let unterminated = FrontendError::lex(loc, "eof in string")
            .with_kind(FrontendErrorKind::UnterminatedLiteral);
        assert!(!unterminated.is_limit());
    }
}
