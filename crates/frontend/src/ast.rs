//! Clang-style abstract syntax tree.
//!
//! Nodes live in an arena ([`Ast`]) and reference each other by [`NodeId`].
//! The node-kind vocabulary deliberately mirrors Clang's AST class names
//! because ParaGraph's construction rules (Section III of the paper) are
//! phrased in terms of those classes (`ForStmt`, `IfStmt`, `DeclRefExpr`,
//! `CompoundStmt`, ...).
//!
//! Child ordering conventions (used by the ParaGraph builder and the
//! pretty-printer):
//!
//! * `ForStmt` children: `[init, cond, body, increment]` — the order used in
//!   Figure 2 of the paper (ForExec: init→cond, cond→body; ForNext:
//!   body→inc, inc→cond).
//! * `IfStmt` children: `[cond, then, else?]`.
//! * `OMP*Directive` children: `[associated statement]`.

use crate::omp::OmpDirective;
use crate::token::SourceLocation;
use serde::{Deserialize, Serialize};

/// Index of a node inside an [`Ast`] arena.
pub type NodeId = usize;

/// Clang-style AST node kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AstKind {
    TranslationUnitDecl,
    FunctionDecl,
    ParmVarDecl,
    VarDecl,
    CompoundStmt,
    DeclStmt,
    ForStmt,
    WhileStmt,
    IfStmt,
    ReturnStmt,
    BreakStmt,
    ContinueStmt,
    NullStmt,
    CallExpr,
    ArraySubscriptExpr,
    BinaryOperator,
    CompoundAssignOperator,
    UnaryOperator,
    ConditionalOperator,
    ImplicitCastExpr,
    CStyleCastExpr,
    DeclRefExpr,
    IntegerLiteral,
    FloatingLiteral,
    StringLiteral,
    CharacterLiteral,
    ParenExpr,
    MemberExpr,
    InitListExpr,
    OmpParallelForDirective,
    OmpTargetTeamsDistributeParallelForDirective,
    OmpTargetDataDirective,
    OmpSimdDirective,
    OmpUnknownDirective,
}

impl AstKind {
    /// All kinds, in a fixed order used for one-hot node-feature encoding.
    pub const ALL: [AstKind; 34] = [
        AstKind::TranslationUnitDecl,
        AstKind::FunctionDecl,
        AstKind::ParmVarDecl,
        AstKind::VarDecl,
        AstKind::CompoundStmt,
        AstKind::DeclStmt,
        AstKind::ForStmt,
        AstKind::WhileStmt,
        AstKind::IfStmt,
        AstKind::ReturnStmt,
        AstKind::BreakStmt,
        AstKind::ContinueStmt,
        AstKind::NullStmt,
        AstKind::CallExpr,
        AstKind::ArraySubscriptExpr,
        AstKind::BinaryOperator,
        AstKind::CompoundAssignOperator,
        AstKind::UnaryOperator,
        AstKind::ConditionalOperator,
        AstKind::ImplicitCastExpr,
        AstKind::CStyleCastExpr,
        AstKind::DeclRefExpr,
        AstKind::IntegerLiteral,
        AstKind::FloatingLiteral,
        AstKind::StringLiteral,
        AstKind::CharacterLiteral,
        AstKind::ParenExpr,
        AstKind::MemberExpr,
        AstKind::InitListExpr,
        AstKind::OmpParallelForDirective,
        AstKind::OmpTargetTeamsDistributeParallelForDirective,
        AstKind::OmpTargetDataDirective,
        AstKind::OmpSimdDirective,
        AstKind::OmpUnknownDirective,
    ];

    /// Stable index of this kind within [`AstKind::ALL`].
    pub fn index(self) -> usize {
        AstKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind missing from AstKind::ALL")
    }

    /// Clang-style class name.
    pub fn name(self) -> &'static str {
        match self {
            AstKind::TranslationUnitDecl => "TranslationUnitDecl",
            AstKind::FunctionDecl => "FunctionDecl",
            AstKind::ParmVarDecl => "ParmVarDecl",
            AstKind::VarDecl => "VarDecl",
            AstKind::CompoundStmt => "CompoundStmt",
            AstKind::DeclStmt => "DeclStmt",
            AstKind::ForStmt => "ForStmt",
            AstKind::WhileStmt => "WhileStmt",
            AstKind::IfStmt => "IfStmt",
            AstKind::ReturnStmt => "ReturnStmt",
            AstKind::BreakStmt => "BreakStmt",
            AstKind::ContinueStmt => "ContinueStmt",
            AstKind::NullStmt => "NullStmt",
            AstKind::CallExpr => "CallExpr",
            AstKind::ArraySubscriptExpr => "ArraySubscriptExpr",
            AstKind::BinaryOperator => "BinaryOperator",
            AstKind::CompoundAssignOperator => "CompoundAssignOperator",
            AstKind::UnaryOperator => "UnaryOperator",
            AstKind::ConditionalOperator => "ConditionalOperator",
            AstKind::ImplicitCastExpr => "ImplicitCastExpr",
            AstKind::CStyleCastExpr => "CStyleCastExpr",
            AstKind::DeclRefExpr => "DeclRefExpr",
            AstKind::IntegerLiteral => "IntegerLiteral",
            AstKind::FloatingLiteral => "FloatingLiteral",
            AstKind::StringLiteral => "StringLiteral",
            AstKind::CharacterLiteral => "CharacterLiteral",
            AstKind::ParenExpr => "ParenExpr",
            AstKind::MemberExpr => "MemberExpr",
            AstKind::InitListExpr => "InitListExpr",
            AstKind::OmpParallelForDirective => "OMPParallelForDirective",
            AstKind::OmpTargetTeamsDistributeParallelForDirective => {
                "OMPTargetTeamsDistributeParallelForDirective"
            }
            AstKind::OmpTargetDataDirective => "OMPTargetDataDirective",
            AstKind::OmpSimdDirective => "OMPSimdDirective",
            AstKind::OmpUnknownDirective => "OMPUnknownDirective",
        }
    }

    /// True for declaration nodes.
    pub fn is_decl(self) -> bool {
        matches!(
            self,
            AstKind::TranslationUnitDecl
                | AstKind::FunctionDecl
                | AstKind::ParmVarDecl
                | AstKind::VarDecl
        )
    }

    /// True for expression nodes.
    pub fn is_expr(self) -> bool {
        matches!(
            self,
            AstKind::CallExpr
                | AstKind::ArraySubscriptExpr
                | AstKind::BinaryOperator
                | AstKind::CompoundAssignOperator
                | AstKind::UnaryOperator
                | AstKind::ConditionalOperator
                | AstKind::ImplicitCastExpr
                | AstKind::CStyleCastExpr
                | AstKind::DeclRefExpr
                | AstKind::IntegerLiteral
                | AstKind::FloatingLiteral
                | AstKind::StringLiteral
                | AstKind::CharacterLiteral
                | AstKind::ParenExpr
                | AstKind::MemberExpr
                | AstKind::InitListExpr
        )
    }

    /// True for OpenMP executable-directive nodes.
    pub fn is_omp_directive(self) -> bool {
        matches!(
            self,
            AstKind::OmpParallelForDirective
                | AstKind::OmpTargetTeamsDistributeParallelForDirective
                | AstKind::OmpTargetDataDirective
                | AstKind::OmpSimdDirective
                | AstKind::OmpUnknownDirective
        )
    }
}

/// Data attached to a node, depending on its kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeData {
    /// Identifier name (functions, variables, parameters, DeclRefExpr, members).
    pub name: Option<String>,
    /// Declared type spelling (declarations) or cast target type.
    pub ty: Option<String>,
    /// Operator spelling for BinaryOperator / UnaryOperator / CompoundAssignOperator.
    pub opcode: Option<String>,
    /// Integer literal value.
    pub int_value: Option<i64>,
    /// Floating-point literal value.
    pub float_value: Option<f64>,
    /// String or character literal spelling.
    pub literal: Option<String>,
    /// Array dimensions for array declarations (constant sizes where known).
    pub array_dims: Vec<Option<i64>>,
    /// OpenMP directive payload for `Omp*Directive` nodes.
    pub omp: Option<OmpDirective>,
    /// True for unary/compound operators in postfix position (`i++`).
    pub postfix: bool,
    /// Source location of the token that introduced the node, when the
    /// parser recorded one. Used by diagnostics to point at the offending
    /// construct.
    pub loc: Option<SourceLocation>,
}

/// One AST node in the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AstNode {
    /// Node kind.
    pub kind: AstKind,
    /// Children in source order (see module docs for per-kind conventions).
    pub children: Vec<NodeId>,
    /// Parent node, `None` only for the root.
    pub parent: Option<NodeId>,
    /// Kind-specific payload.
    pub data: NodeData,
}

/// AST arena for one translation unit (typically: one kernel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ast {
    nodes: Vec<AstNode>,
    root: NodeId,
}

impl Ast {
    /// Create an AST containing only a `TranslationUnitDecl` root.
    pub fn new() -> Self {
        let root = AstNode {
            kind: AstKind::TranslationUnitDecl,
            children: Vec::new(),
            parent: None,
            data: NodeData::default(),
        };
        Self {
            nodes: vec![root],
            root: 0,
        }
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the AST only contains the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &AstNode {
        &self.nodes[id]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut AstNode {
        &mut self.nodes[id]
    }

    /// Append a new node (initially unattached) and return its id.
    pub fn add_node(&mut self, kind: AstKind, data: NodeData) -> NodeId {
        self.nodes.push(AstNode {
            kind,
            children: Vec::new(),
            parent: None,
            data,
        });
        self.nodes.len() - 1
    }

    /// Append a node with default data.
    pub fn add_simple(&mut self, kind: AstKind) -> NodeId {
        self.add_node(kind, NodeData::default())
    }

    /// Attach `child` as the last child of `parent`.
    ///
    /// # Panics
    /// Panics if the child already has a parent (nodes form a tree).
    pub fn attach(&mut self, parent: NodeId, child: NodeId) {
        assert!(
            self.nodes[child].parent.is_none(),
            "node {child} already has a parent"
        );
        assert_ne!(parent, child, "a node cannot be its own parent");
        self.nodes[child].parent = Some(parent);
        self.nodes[parent].children.push(child);
    }

    /// Children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id].children
    }

    /// Kind of a node.
    pub fn kind(&self, id: NodeId) -> AstKind {
        self.nodes[id].kind
    }

    /// True when the node has no children (a syntax *token* in the paper's
    /// terminology, as opposed to a syntax *node*).
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.nodes[id].children.is_empty()
    }

    /// Pre-order (depth-first, children in source order) traversal from the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        self.preorder_from(self.root)
    }

    /// Pre-order traversal from an arbitrary node.
    pub fn preorder_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            order.push(id);
            // Push children in reverse so they pop in source order.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// All node ids whose kind matches `kind`, in pre-order.
    pub fn find_all(&self, kind: AstKind) -> Vec<NodeId> {
        self.preorder()
            .into_iter()
            .filter(|&id| self.nodes[id].kind == kind)
            .collect()
    }

    /// First node of the given kind in pre-order, if any.
    pub fn find_first(&self, kind: AstKind) -> Option<NodeId> {
        self.preorder()
            .into_iter()
            .find(|&id| self.nodes[id].kind == kind)
    }

    /// Depth of a node (root is 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut depth = 0;
        let mut current = id;
        while let Some(parent) = self.nodes[current].parent {
            depth += 1;
            current = parent;
        }
        depth
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.preorder_from(id).len()
    }

    /// Enclosing ancestors of a node, nearest first (excluding the node itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut current = id;
        while let Some(parent) = self.nodes[current].parent {
            out.push(parent);
            current = parent;
        }
        out
    }

    /// Validate structural invariants of the tree. Used by property tests and
    /// debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("AST has no nodes".into());
        }
        if self.nodes[self.root].parent.is_some() {
            return Err("root must not have a parent".into());
        }
        let mut seen_as_child = vec![false; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if c >= self.nodes.len() {
                    return Err(format!("node {id} has out-of-range child {c}"));
                }
                if self.nodes[c].parent != Some(id) {
                    return Err(format!("child {c} of {id} has inconsistent parent link"));
                }
                if seen_as_child[c] {
                    return Err(format!("node {c} appears as a child more than once"));
                }
                seen_as_child[c] = true;
            }
        }
        // Every non-root node must be reachable from the root.
        let reachable = self.preorder().len();
        let attached = seen_as_child.iter().filter(|&&s| s).count() + 1;
        if reachable != attached {
            return Err(format!(
                "reachable nodes ({reachable}) differ from attached nodes ({attached})"
            ));
        }
        Ok(())
    }

    /// Iterate over `(id, node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &AstNode)> {
        self.nodes.iter().enumerate()
    }
}

impl Default for Ast {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience builders for node payloads.
impl NodeData {
    /// Payload carrying just a name.
    pub fn named(name: impl Into<String>) -> Self {
        NodeData {
            name: Some(name.into()),
            ..NodeData::default()
        }
    }

    /// Payload for a variable/parameter declaration.
    pub fn decl(name: impl Into<String>, ty: impl Into<String>) -> Self {
        NodeData {
            name: Some(name.into()),
            ty: Some(ty.into()),
            ..NodeData::default()
        }
    }

    /// Payload for an operator node.
    pub fn op(opcode: impl Into<String>) -> Self {
        NodeData {
            opcode: Some(opcode.into()),
            ..NodeData::default()
        }
    }

    /// Payload for an integer literal.
    pub fn int(value: i64) -> Self {
        NodeData {
            int_value: Some(value),
            literal: Some(value.to_string()),
            ..NodeData::default()
        }
    }

    /// Payload for a floating literal.
    pub fn float(value: f64) -> Self {
        NodeData {
            float_value: Some(value),
            literal: Some(format!("{value}")),
            ..NodeData::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> Ast {
        // int x; x = 50;
        let mut ast = Ast::new();
        let func = ast.add_node(AstKind::FunctionDecl, NodeData::named("main"));
        ast.attach(ast.root(), func);
        let body = ast.add_simple(AstKind::CompoundStmt);
        ast.attach(func, body);
        let decl_stmt = ast.add_simple(AstKind::DeclStmt);
        ast.attach(body, decl_stmt);
        let var = ast.add_node(AstKind::VarDecl, NodeData::decl("x", "int"));
        ast.attach(decl_stmt, var);
        let assign = ast.add_node(AstKind::BinaryOperator, NodeData::op("="));
        ast.attach(body, assign);
        let dre = ast.add_node(AstKind::DeclRefExpr, NodeData::named("x"));
        ast.attach(assign, dre);
        let lit = ast.add_node(AstKind::IntegerLiteral, NodeData::int(50));
        ast.attach(assign, lit);
        ast
    }

    #[test]
    fn build_and_validate_small_tree() {
        let ast = small_tree();
        assert_eq!(ast.len(), 8);
        ast.validate().unwrap();
        assert_eq!(ast.kind(ast.root()), AstKind::TranslationUnitDecl);
    }

    #[test]
    fn preorder_visits_children_in_source_order() {
        let ast = small_tree();
        let order = ast.preorder();
        assert_eq!(order.len(), ast.len());
        assert_eq!(order[0], ast.root());
        // The DeclStmt subtree must come before the assignment subtree.
        let decl_pos = order
            .iter()
            .position(|&id| ast.kind(id) == AstKind::DeclStmt)
            .unwrap();
        let assign_pos = order
            .iter()
            .position(|&id| ast.kind(id) == AstKind::BinaryOperator)
            .unwrap();
        assert!(decl_pos < assign_pos);
    }

    #[test]
    fn terminals_and_depths() {
        let ast = small_tree();
        let lit = ast.find_first(AstKind::IntegerLiteral).unwrap();
        assert!(ast.is_terminal(lit));
        assert!(!ast.is_terminal(ast.root()));
        assert_eq!(ast.depth(ast.root()), 0);
        assert_eq!(ast.depth(lit), 3 + 1); // root -> func -> body -> assign -> literal
        let ancestors = ast.ancestors(lit);
        assert_eq!(ancestors.len(), 4);
        assert_eq!(*ancestors.last().unwrap(), ast.root());
    }

    #[test]
    fn find_all_and_subtree_size() {
        let ast = small_tree();
        assert_eq!(ast.find_all(AstKind::DeclRefExpr).len(), 1);
        assert_eq!(ast.find_all(AstKind::WhileStmt).len(), 0);
        let func = ast.find_first(AstKind::FunctionDecl).unwrap();
        assert_eq!(ast.subtree_size(func), 7);
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn double_attach_panics() {
        let mut ast = Ast::new();
        let a = ast.add_simple(AstKind::CompoundStmt);
        let b = ast.add_simple(AstKind::NullStmt);
        ast.attach(a, b);
        ast.attach(ast.root(), b);
    }

    #[test]
    fn validate_detects_corruption() {
        let mut ast = small_tree();
        // Corrupt a parent link directly.
        let lit = ast.find_first(AstKind::IntegerLiteral).unwrap();
        ast.node_mut(lit).parent = None;
        assert!(ast.validate().is_err());
    }

    #[test]
    fn kind_index_is_consistent_with_all() {
        for (i, kind) in AstKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn kind_classification() {
        assert!(AstKind::VarDecl.is_decl());
        assert!(AstKind::BinaryOperator.is_expr());
        assert!(AstKind::OmpParallelForDirective.is_omp_directive());
        assert!(!AstKind::ForStmt.is_expr());
        assert!(!AstKind::ForStmt.is_decl());
    }

    #[test]
    fn ast_serialization_round_trip() {
        let ast = small_tree();
        let json = serde_json::to_string(&ast).unwrap();
        let back: Ast = serde_json::from_str(&json).unwrap();
        assert_eq!(ast, back);
    }
}
