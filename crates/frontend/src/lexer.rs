//! Hand-written lexer for the C subset used by the ParaGraph benchmark
//! kernels, including `#pragma omp` lines and simple object-like `#define`
//! macros (used to inject problem sizes into kernel templates).
//!
//! The lexer is part of the untrusted-input boundary: token production is
//! capped by [`ParseOptions::max_tokens`], macro bodies are lexed exactly
//! once at their `#define` (so a large replacement used many times costs
//! clones, not re-lexing), and preprocessor lines are consumed iteratively
//! so a flood of directives cannot grow the call stack.

use crate::error::{FrontendError, FrontendErrorKind};
use crate::limits::ParseOptions;
use crate::token::{Keyword, Punct, SourceLocation, Token, TokenKind};
use std::collections::HashMap;

/// Lexer state over a source string.
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
    column: u32,
    options: ParseOptions,
    /// Object-like macros collected from `#define NAME value` lines
    /// (name -> raw replacement text).
    macros: HashMap<String, String>,
    /// Replacement token lists, lexed once at the `#define`. A malformed
    /// body stores its error, surfaced lazily on first *use* (an unused
    /// bad define is not an error, matching the re-lex-on-use behaviour
    /// this cache replaced).
    macro_tokens: HashMap<String, Result<Vec<Token>, FrontendError>>,
}

impl<'src> Lexer<'src> {
    /// Create a lexer over the given source text with default limits.
    pub fn new(source: &'src str) -> Self {
        Self::with_options(source, ParseOptions::default())
    }

    /// Create a lexer over the given source text with an explicit budget.
    pub fn with_options(source: &'src str, options: ParseOptions) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
            options,
            macros: HashMap::new(),
            macro_tokens: HashMap::new(),
        }
    }

    /// Tokenise the whole input. The returned vector always ends with an
    /// [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let eof = token.is_eof();
            // Apply object-like macro substitution on identifiers.
            let token = self.substitute_macro(token)?;
            if let Some(ts) = token {
                tokens.extend(ts)
            }
            if tokens.len() > self.options.max_tokens {
                return Err(FrontendError::lex(
                    self.location(),
                    format!("input exceeds the {}-token budget", self.options.max_tokens),
                )
                .with_kind(FrontendErrorKind::TooManyTokens {
                    limit: self.options.max_tokens,
                }));
            }
            if eof {
                break;
            }
        }
        Ok(tokens)
    }

    /// Macros defined so far (name -> replacement text).
    pub fn macros(&self) -> &HashMap<String, String> {
        &self.macros
    }

    fn substitute_macro(&self, token: Token) -> Result<Option<Vec<Token>>, FrontendError> {
        if let TokenKind::Identifier(name) = &token.kind {
            if let Some(prelexed) = self.macro_tokens.get(name) {
                let mut toks = prelexed.clone()?;
                for t in &mut toks {
                    t.location = token.location;
                }
                return Ok(Some(toks));
            }
        }
        Ok(Some(vec![token]))
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_ahead(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn location(&self) -> SourceLocation {
        SourceLocation {
            line: self.line,
            column: self.column,
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek_ahead(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_ahead(1) == Some(b'*') => {
                    let start = self.location();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_ahead(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(FrontendError::lex(
                                    start,
                                    "unterminated block comment",
                                )
                                .with_kind(FrontendErrorKind::UnterminatedComment));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn read_line(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            // Line continuation inside pragmas/defines.
            if c == b'\\' && self.peek_ahead(1) == Some(b'\n') {
                self.bump();
                self.bump();
                out.push(' ');
                continue;
            }
            out.push(self.bump().unwrap() as char);
        }
        out
    }

    fn next_token(&mut self) -> Result<Token, FrontendError> {
        // Iterative so that a flood of ignored preprocessor lines consumes
        // no call-stack depth (the old `return self.next_token()` recursion
        // overflowed on ~100k consecutive `#define`/`#include` lines).
        loop {
            self.skip_whitespace_and_comments()?;
            let loc = self.location();
            let Some(c) = self.peek() else {
                return Ok(Token {
                    kind: TokenKind::Eof,
                    location: loc,
                });
            };

            // Preprocessor lines.
            if c == b'#' {
                self.bump();
                let line = self.read_line();
                let trimmed = line.trim();
                if let Some(rest) = trimmed.strip_prefix("pragma") {
                    let rest = rest.trim();
                    if let Some(omp) = rest.strip_prefix("omp") {
                        return Ok(Token {
                            kind: TokenKind::OmpPragma(omp.trim().to_string()),
                            location: loc,
                        });
                    }
                    // Non-OpenMP pragmas are ignored.
                    continue;
                }
                if let Some(rest) = trimmed.strip_prefix("define") {
                    let rest = rest.trim();
                    let mut parts = rest.splitn(2, char::is_whitespace);
                    if let Some(name) = parts.next() {
                        // Function-like macros are not supported; store only
                        // object-like ones (a bare name followed by a value).
                        if !name.contains('(') {
                            let value = parts.next().unwrap_or("").trim().to_string();
                            if !name.is_empty() && !value.is_empty() {
                                self.define_macro(name, value);
                            }
                        }
                    }
                    continue;
                }
                // #include and other directives are ignored.
                continue;
            }

            return self.lex_nonpreprocessor(loc, c);
        }
    }

    /// Record an object-like macro: the replacement text is lexed here,
    /// exactly once, with a fresh macro table (macros do not nest in our
    /// subset — `#define B A` leaves `A` an identifier even if `A` is also
    /// a macro, matching the old re-lex-per-use behaviour).
    fn define_macro(&mut self, name: &str, value: String) {
        let sub = Lexer::with_options(&value, self.options);
        let prelexed = sub.tokenize().map(|mut toks| {
            toks.retain(|t| !t.is_eof());
            toks
        });
        self.macro_tokens.insert(name.to_string(), prelexed);
        self.macros.insert(name.to_string(), value);
    }

    fn lex_nonpreprocessor(&mut self, loc: SourceLocation, c: u8) -> Result<Token, FrontendError> {
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut ident = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    ident.push(self.bump().unwrap() as char);
                } else {
                    break;
                }
            }
            let kind = match Keyword::from_str(&ident) {
                Some(kw) => TokenKind::Keyword(kw),
                None => TokenKind::Identifier(ident),
            };
            return Ok(Token {
                kind,
                location: loc,
            });
        }

        // Numeric literals.
        if c.is_ascii_digit()
            || (c == b'.' && self.peek_ahead(1).is_some_and(|d| d.is_ascii_digit()))
        {
            return self.lex_number(loc);
        }

        // String literals.
        if c == b'"' {
            self.bump();
            let mut s = String::new();
            loop {
                match self.bump() {
                    Some(b'"') => break,
                    Some(b'\\') => {
                        if let Some(next) = self.bump() {
                            s.push('\\');
                            s.push(next as char);
                        }
                    }
                    Some(other) => s.push(other as char),
                    None => {
                        return Err(FrontendError::lex(loc, "unterminated string literal")
                            .with_kind(FrontendErrorKind::UnterminatedLiteral))
                    }
                }
            }
            return Ok(Token {
                kind: TokenKind::StringLiteral(s),
                location: loc,
            });
        }

        // Character literals.
        if c == b'\'' {
            self.bump();
            let ch = match self.bump() {
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| {
                        FrontendError::lex(loc, "unterminated char literal")
                            .with_kind(FrontendErrorKind::UnterminatedLiteral)
                    })?;
                    match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'0' => '\0',
                        b'\\' => '\\',
                        b'\'' => '\'',
                        other => other as char,
                    }
                }
                Some(other) => other as char,
                None => {
                    return Err(FrontendError::lex(loc, "unterminated char literal")
                        .with_kind(FrontendErrorKind::UnterminatedLiteral))
                }
            };
            if self.bump() != Some(b'\'') {
                return Err(FrontendError::lex(loc, "unterminated char literal")
                    .with_kind(FrontendErrorKind::UnterminatedLiteral));
            }
            return Ok(Token {
                kind: TokenKind::CharLiteral(ch),
                location: loc,
            });
        }

        // Punctuation and operators (longest match first).
        let two = |a: u8, b: u8| -> bool { c == a && self.peek_ahead(1) == Some(b) };
        let punct = if two(b'-', b'>') {
            Some((Punct::Arrow, 2))
        } else if two(b'+', b'+') {
            Some((Punct::PlusPlus, 2))
        } else if two(b'-', b'-') {
            Some((Punct::MinusMinus, 2))
        } else if two(b'+', b'=') {
            Some((Punct::PlusAssign, 2))
        } else if two(b'-', b'=') {
            Some((Punct::MinusAssign, 2))
        } else if two(b'*', b'=') {
            Some((Punct::StarAssign, 2))
        } else if two(b'/', b'=') {
            Some((Punct::SlashAssign, 2))
        } else if two(b'%', b'=') {
            Some((Punct::PercentAssign, 2))
        } else if two(b'=', b'=') {
            Some((Punct::Eq, 2))
        } else if two(b'!', b'=') {
            Some((Punct::Ne, 2))
        } else if two(b'<', b'=') {
            Some((Punct::Le, 2))
        } else if two(b'>', b'=') {
            Some((Punct::Ge, 2))
        } else if two(b'<', b'<') {
            Some((Punct::Shl, 2))
        } else if two(b'>', b'>') {
            Some((Punct::Shr, 2))
        } else if two(b'&', b'&') {
            Some((Punct::AndAnd, 2))
        } else if two(b'|', b'|') {
            Some((Punct::OrOr, 2))
        } else {
            let single = match c {
                b'(' => Some(Punct::LParen),
                b')' => Some(Punct::RParen),
                b'{' => Some(Punct::LBrace),
                b'}' => Some(Punct::RBrace),
                b'[' => Some(Punct::LBracket),
                b']' => Some(Punct::RBracket),
                b';' => Some(Punct::Semicolon),
                b',' => Some(Punct::Comma),
                b'.' => Some(Punct::Dot),
                b'+' => Some(Punct::Plus),
                b'-' => Some(Punct::Minus),
                b'*' => Some(Punct::Star),
                b'/' => Some(Punct::Slash),
                b'%' => Some(Punct::Percent),
                b'=' => Some(Punct::Assign),
                b'<' => Some(Punct::Lt),
                b'>' => Some(Punct::Gt),
                b'!' => Some(Punct::Not),
                b'&' => Some(Punct::Amp),
                b'|' => Some(Punct::Pipe),
                b'^' => Some(Punct::Caret),
                b'~' => Some(Punct::Tilde),
                b'?' => Some(Punct::Question),
                b':' => Some(Punct::Colon),
                _ => None,
            };
            single.map(|p| (p, 1))
        };

        match punct {
            Some((p, len)) => {
                for _ in 0..len {
                    self.bump();
                }
                Ok(Token {
                    kind: TokenKind::Punct(p),
                    location: loc,
                })
            }
            None => Err(
                FrontendError::lex(loc, format!("unexpected character '{}'", c as char))
                    .with_kind(FrontendErrorKind::UnexpectedCharacter),
            ),
        }
    }

    fn lex_number(&mut self, loc: SourceLocation) -> Result<Token, FrontendError> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => text.push(self.bump().unwrap() as char),
                b'.' => {
                    is_float = true;
                    text.push(self.bump().unwrap() as char);
                }
                b'e' | b'E' => {
                    is_float = true;
                    text.push(self.bump().unwrap() as char);
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        text.push(self.bump().unwrap() as char);
                    }
                }
                // Suffixes are consumed but ignored.
                b'f' | b'F' => {
                    is_float = true;
                    self.bump();
                }
                b'l' | b'L' | b'u' | b'U' => {
                    self.bump();
                }
                b'x' | b'X' if text == "0" => {
                    // Hexadecimal integer.
                    self.bump();
                    let mut hex = String::new();
                    while let Some(h) = self.peek() {
                        if h.is_ascii_hexdigit() {
                            hex.push(self.bump().unwrap() as char);
                        } else {
                            break;
                        }
                    }
                    let value = i64::from_str_radix(&hex, 16).map_err(|_| {
                        FrontendError::lex(loc, "invalid hexadecimal literal")
                            .with_kind(FrontendErrorKind::InvalidLiteral)
                    })?;
                    return Ok(Token {
                        kind: TokenKind::IntLiteral(value),
                        location: loc,
                    });
                }
                _ => break,
            }
        }
        let kind = if is_float {
            let value: f64 = text.parse().map_err(|_| {
                FrontendError::lex(loc, format!("invalid float literal '{text}'"))
                    .with_kind(FrontendErrorKind::InvalidLiteral)
            })?;
            TokenKind::FloatLiteral(value)
        } else {
            let value: i64 = text.parse().map_err(|_| {
                FrontendError::lex(loc, format!("invalid integer literal '{text}'"))
                    .with_kind(FrontendErrorKind::InvalidLiteral)
            })?;
            TokenKind::IntLiteral(value)
        };
        Ok(Token {
            kind,
            location: loc,
        })
    }
}

/// Convenience function: lex a full source string with default limits.
pub fn tokenize(source: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(source).tokenize()
}

/// Lex a full source string under an explicit budget.
pub fn tokenize_with_options(
    source: &str,
    options: ParseOptions,
) -> Result<Vec<Token>, FrontendError> {
    Lexer::with_options(source, options).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        let toks = kinds("int x = 50;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Identifier("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::IntLiteral(50),
                TokenKind::Punct(Punct::Semicolon),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_float_literals_and_suffixes() {
        let toks = kinds("double d = 1.5e-3; float f = 2.0f; long n = 10L;");
        assert!(toks.contains(&TokenKind::FloatLiteral(1.5e-3)));
        assert!(toks.contains(&TokenKind::FloatLiteral(2.0)));
        assert!(toks.contains(&TokenKind::IntLiteral(10)));
    }

    #[test]
    fn lexes_hex_literals() {
        let toks = kinds("int mask = 0xFF;");
        assert!(toks.contains(&TokenKind::IntLiteral(255)));
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("// a comment\nint x; /* multi\nline */ int y;");
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Identifier(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["x", "y"]);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(tokenize("int x; /* oops").is_err());
    }

    #[test]
    fn multi_character_operators() {
        let toks = kinds("a <= b && c != d; i++; j += 2; x >> 1;");
        assert!(toks.contains(&TokenKind::Punct(Punct::Le)));
        assert!(toks.contains(&TokenKind::Punct(Punct::AndAnd)));
        assert!(toks.contains(&TokenKind::Punct(Punct::Ne)));
        assert!(toks.contains(&TokenKind::Punct(Punct::PlusPlus)));
        assert!(toks.contains(&TokenKind::Punct(Punct::PlusAssign)));
        assert!(toks.contains(&TokenKind::Punct(Punct::Shr)));
    }

    #[test]
    fn omp_pragma_becomes_a_single_token() {
        let toks = kinds("#pragma omp parallel for collapse(2)\nfor(;;){}");
        assert_eq!(
            toks[0],
            TokenKind::OmpPragma("parallel for collapse(2)".into())
        );
    }

    #[test]
    fn pragma_line_continuation_is_joined() {
        let toks = kinds("#pragma omp target teams distribute \\\n parallel for\nint x;");
        match &toks[0] {
            TokenKind::OmpPragma(text) => {
                assert!(text.contains("target teams distribute"));
                assert!(text.contains("parallel for"));
            }
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn include_lines_are_ignored() {
        let toks = kinds("#include <stdio.h>\nint x;");
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Int));
    }

    #[test]
    fn object_like_defines_are_substituted() {
        let toks = kinds("#define N 1024\nint a[N];");
        assert!(toks.contains(&TokenKind::IntLiteral(1024)));
        // The macro name itself must not survive as an identifier.
        assert!(!toks.contains(&TokenKind::Identifier("N".into())));
    }

    #[test]
    fn string_and_char_literals() {
        let toks = kinds("char c = 'a'; char n = '\\n';");
        assert!(toks.contains(&TokenKind::CharLiteral('a')));
        assert!(toks.contains(&TokenKind::CharLiteral('\n')));
        let toks = kinds(r#"const char *s = "hello world";"#);
        assert!(toks.contains(&TokenKind::StringLiteral("hello world".into())));
    }

    #[test]
    fn unknown_character_is_an_error() {
        assert!(tokenize("int x = `;").is_err());
    }

    #[test]
    fn token_budget_is_enforced() {
        let options = ParseOptions::default().with_max_tokens(8);
        let err = tokenize_with_options("int a; int b; int c; int d;", options).unwrap_err();
        assert_eq!(
            err.kind,
            FrontendErrorKind::TooManyTokens { limit: 8 },
            "{err}"
        );
        // Macro expansion counts against the same budget.
        let err = tokenize_with_options("#define V 1 + 2 + 3 + 4\nint x = V; int y = V;", options)
            .unwrap_err();
        assert!(err.is_limit());
    }

    #[test]
    fn preprocessor_flood_lexes_iteratively() {
        // 100k consecutive ignored directives used to recurse once per line
        // and overflow the stack; the loop form must finish.
        let mut src = String::new();
        for i in 0..100_000 {
            src.push_str(&format!("#define M{i} {i}\n"));
        }
        src.push_str("int x;");
        let toks = tokenize(&src).unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Keyword(Keyword::Int)));
    }

    #[test]
    fn self_referential_macro_expands_once_and_terminates() {
        // `#define N N` must not loop: the replacement is lexed with a fresh
        // macro table, so the expansion is the identifier `N` itself.
        let toks = kinds("#define N N\nint a[N];");
        assert!(toks.contains(&TokenKind::Identifier("N".into())));
    }

    #[test]
    fn bad_macro_body_errors_on_use_not_define() {
        // Unused malformed define: fine.
        assert!(tokenize("#define BAD \"unterminated\nint x;").is_ok());
        // Used malformed define: the stored lex error surfaces.
        let err = tokenize("#define BAD \"unterminated\nint x = BAD;").unwrap_err();
        assert_eq!(err.kind, FrontendErrorKind::UnterminatedLiteral);
    }

    #[test]
    fn locations_track_lines_and_columns() {
        let toks = tokenize("int x;\n  float y;").unwrap();
        // `float` starts on line 2, column 3.
        let float_tok = toks
            .iter()
            .find(|t| t.kind == TokenKind::Keyword(Keyword::Float))
            .unwrap();
        assert_eq!(float_tok.location.line, 2);
        assert_eq!(float_tok.location.column, 3);
    }
}
