//! OpenMP directive and clause model, plus the pragma-text parser.
//!
//! The six kernel variants the paper generates differ only in the OpenMP
//! directive applied to the main loop nest:
//!
//! * `cpu`               — `omp parallel for`
//! * `cpu_collapse`      — `omp parallel for collapse(2)`
//! * `gpu`               — `omp target teams distribute parallel for`
//! * `gpu_collapse`      — `omp target teams distribute parallel for collapse(2)`
//! * `gpu_mem`           — `gpu` plus explicit `map` clauses for the data transfer
//! * `gpu_collapse_mem`  — `gpu_collapse` plus `map` clauses
//!
//! This module understands exactly that directive/clause vocabulary.

use serde::{Deserialize, Serialize};

/// Kind of an OpenMP executable directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OmpDirectiveKind {
    /// `#pragma omp parallel for`
    ParallelFor,
    /// `#pragma omp target teams distribute parallel for`
    TargetTeamsDistributeParallelFor,
    /// `#pragma omp target data`
    TargetData,
    /// `#pragma omp simd` (accepted, not used by the six variants)
    Simd,
    /// Any other directive, preserved verbatim.
    Other,
}

impl OmpDirectiveKind {
    /// Clang-style AST node name for this directive.
    pub fn clang_node_name(self) -> &'static str {
        match self {
            OmpDirectiveKind::ParallelFor => "OMPParallelForDirective",
            OmpDirectiveKind::TargetTeamsDistributeParallelFor => {
                "OMPTargetTeamsDistributeParallelForDirective"
            }
            OmpDirectiveKind::TargetData => "OMPTargetDataDirective",
            OmpDirectiveKind::Simd => "OMPSimdDirective",
            OmpDirectiveKind::Other => "OMPUnknownDirective",
        }
    }

    /// True when the directive offloads to a target device.
    pub fn is_target(self) -> bool {
        matches!(
            self,
            OmpDirectiveKind::TargetTeamsDistributeParallelFor | OmpDirectiveKind::TargetData
        )
    }
}

/// Direction of a `map` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapDirection {
    /// `map(to: ...)`
    To,
    /// `map(from: ...)`
    From,
    /// `map(tofrom: ...)`
    ToFrom,
    /// `map(alloc: ...)`
    Alloc,
}

impl MapDirection {
    /// Source spelling of the direction.
    pub fn spelling(self) -> &'static str {
        match self {
            MapDirection::To => "to",
            MapDirection::From => "from",
            MapDirection::ToFrom => "tofrom",
            MapDirection::Alloc => "alloc",
        }
    }
}

/// Schedule kinds for `schedule(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// `schedule(static[, chunk])`
    Static,
    /// `schedule(dynamic[, chunk])`
    Dynamic,
    /// `schedule(guided[, chunk])`
    Guided,
    /// `schedule(auto)`
    Auto,
}

/// One OpenMP clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OmpClause {
    /// `collapse(n)`
    Collapse(u32),
    /// `num_threads(n)`
    NumThreads(u64),
    /// `num_teams(n)`
    NumTeams(u64),
    /// `thread_limit(n)`
    ThreadLimit(u64),
    /// `schedule(kind[, chunk])`
    Schedule(ScheduleKind, Option<u64>),
    /// `map(direction: item, item, ...)` — items keep their source spelling
    /// (e.g. `a[0:n]`).
    Map(MapDirection, Vec<String>),
    /// `reduction(op: var, ...)`
    Reduction(String, Vec<String>),
    /// `private(var, ...)`
    Private(Vec<String>),
    /// `firstprivate(var, ...)`
    FirstPrivate(Vec<String>),
    /// `shared(var, ...)`
    Shared(Vec<String>),
    /// A clause we recognise but do not model (e.g. `nowait`, `ordered`),
    /// preserved verbatim.
    Other(String),
    /// A clause we do not recognise at all, or a known clause whose
    /// arguments failed to parse (e.g. `collapse(abc)`), preserved verbatim.
    /// Analysis passes surface these as warning diagnostics instead of
    /// silently dropping them.
    Unknown(String),
}

/// A parsed OpenMP directive: its kind plus its clause list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OmpDirective {
    /// Which directive this is.
    pub kind: OmpDirectiveKind,
    /// Clauses in source order.
    pub clauses: Vec<OmpClause>,
    /// The raw pragma text (after `#pragma omp`), useful for re-emission.
    pub raw: String,
}

impl OmpDirective {
    /// Collapse depth requested by a `collapse(n)` clause (1 when absent).
    pub fn collapse_depth(&self) -> u32 {
        self.clauses
            .iter()
            .find_map(|c| match c {
                OmpClause::Collapse(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1)
    }

    /// Value of `num_threads(n)` if present.
    pub fn num_threads(&self) -> Option<u64> {
        self.clauses.iter().find_map(|c| match c {
            OmpClause::NumThreads(n) => Some(*n),
            _ => None,
        })
    }

    /// Value of `num_teams(n)` if present.
    pub fn num_teams(&self) -> Option<u64> {
        self.clauses.iter().find_map(|c| match c {
            OmpClause::NumTeams(n) => Some(*n),
            _ => None,
        })
    }

    /// Value of `thread_limit(n)` if present.
    pub fn thread_limit(&self) -> Option<u64> {
        self.clauses.iter().find_map(|c| match c {
            OmpClause::ThreadLimit(n) => Some(*n),
            _ => None,
        })
    }

    /// All mapped items with their direction.
    pub fn map_items(&self) -> Vec<(MapDirection, &str)> {
        let mut out = Vec::new();
        for clause in &self.clauses {
            if let OmpClause::Map(dir, items) = clause {
                for item in items {
                    out.push((*dir, item.as_str()));
                }
            }
        }
        out
    }

    /// True when the directive carries any `map` clause (the paper's `_mem`
    /// variants).
    pub fn has_data_transfer(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, OmpClause::Map(..)))
    }

    /// Schedule kind, defaulting to static as the paper assumes.
    pub fn schedule(&self) -> ScheduleKind {
        self.clauses
            .iter()
            .find_map(|c| match c {
                OmpClause::Schedule(kind, _) => Some(*kind),
                _ => None,
            })
            .unwrap_or(ScheduleKind::Static)
    }
}

/// Parse the text that follows `#pragma omp`.
pub fn parse_pragma(text: &str) -> OmpDirective {
    let raw = text.trim().to_string();
    let lowered = raw.to_lowercase();

    let kind = if lowered.starts_with("target teams distribute parallel for") {
        OmpDirectiveKind::TargetTeamsDistributeParallelFor
    } else if lowered.starts_with("parallel for") {
        OmpDirectiveKind::ParallelFor
    } else if lowered.starts_with("target data") {
        OmpDirectiveKind::TargetData
    } else if lowered.starts_with("simd") {
        OmpDirectiveKind::Simd
    } else {
        OmpDirectiveKind::Other
    };

    // Strip the directive words, leaving only the clause text.
    let directive_len = match kind {
        OmpDirectiveKind::TargetTeamsDistributeParallelFor => {
            "target teams distribute parallel for".len()
        }
        OmpDirectiveKind::ParallelFor => "parallel for".len(),
        OmpDirectiveKind::TargetData => "target data".len(),
        OmpDirectiveKind::Simd => "simd".len(),
        OmpDirectiveKind::Other => 0,
    };
    let clause_text = raw.get(directive_len..).unwrap_or("").trim();
    let clauses = parse_clauses(clause_text);
    OmpDirective { kind, clauses, raw }
}

/// Split clause text like `collapse(2) map(to: a[0:n], b[0:n]) num_threads(8)`
/// into individual clauses, respecting parenthesis nesting.
fn split_clauses(text: &str) -> Vec<String> {
    let mut clauses = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
                if depth == 0 {
                    clauses.push(current.trim().to_string());
                    current.clear();
                }
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.trim().is_empty() {
                    // A clause without arguments (e.g. `nowait`).
                    clauses.push(current.trim().to_string());
                    current.clear();
                }
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        clauses.push(current.trim().to_string());
    }
    clauses
}

fn parse_clauses(text: &str) -> Vec<OmpClause> {
    split_clauses(text)
        .into_iter()
        .map(|c| parse_clause(&c))
        .collect()
}

fn clause_args(clause: &str) -> Option<&str> {
    let open = clause.find('(')?;
    let close = clause.rfind(')')?;
    clause.get(open + 1..close)
}

/// Clause names that are valid OpenMP but outside the modelled vocabulary.
/// They parse to [`OmpClause::Other`] (recognised, unmodelled); anything not
/// in this list or the modelled set parses to [`OmpClause::Unknown`].
const KNOWN_UNMODELED_CLAUSES: &[&str] = &[
    "nowait",
    "untied",
    "ordered",
    "default",
    "device",
    "if",
    "proc_bind",
    "lastprivate",
    "linear",
    "aligned",
    "safelen",
    "simdlen",
    "depend",
    "dist_schedule",
    "defaultmap",
    "mergeable",
    "final",
    "priority",
    "grainsize",
    "num_tasks",
    "copyin",
    "copyprivate",
    "allocate",
    "uses_allocators",
    "is_device_ptr",
    "use_device_ptr",
    "use_device_addr",
    "hint",
    "bind",
    "filter",
    "nontemporal",
];

fn parse_clause(clause: &str) -> OmpClause {
    let name = clause.split('(').next().unwrap_or("").trim().to_lowercase();
    let args = clause_args(clause).unwrap_or("").trim();
    match name.as_str() {
        "collapse" => args
            .parse::<u32>()
            .map(OmpClause::Collapse)
            .unwrap_or_else(|_| OmpClause::Unknown(clause.to_string())),
        "num_threads" => args
            .parse::<u64>()
            .map(OmpClause::NumThreads)
            .unwrap_or_else(|_| OmpClause::Unknown(clause.to_string())),
        "num_teams" => args
            .parse::<u64>()
            .map(OmpClause::NumTeams)
            .unwrap_or_else(|_| OmpClause::Unknown(clause.to_string())),
        "thread_limit" => args
            .parse::<u64>()
            .map(OmpClause::ThreadLimit)
            .unwrap_or_else(|_| OmpClause::Unknown(clause.to_string())),
        "schedule" => {
            let mut parts = args.split(',').map(|p| p.trim());
            let kind = match parts.next().unwrap_or("").to_lowercase().as_str() {
                "static" => ScheduleKind::Static,
                "dynamic" => ScheduleKind::Dynamic,
                "guided" => ScheduleKind::Guided,
                "auto" => ScheduleKind::Auto,
                _ => return OmpClause::Unknown(clause.to_string()),
            };
            let chunk = parts.next().and_then(|c| c.parse::<u64>().ok());
            OmpClause::Schedule(kind, chunk)
        }
        "map" => {
            let (dir, items_text) = match args.split_once(':') {
                Some((d, rest)) => (d.trim().to_lowercase(), rest),
                None => ("tofrom".to_string(), args),
            };
            let direction = match dir.as_str() {
                "to" => MapDirection::To,
                "from" => MapDirection::From,
                "tofrom" => MapDirection::ToFrom,
                "alloc" => MapDirection::Alloc,
                _ => MapDirection::ToFrom,
            };
            let items = split_top_level_commas(items_text);
            OmpClause::Map(direction, items)
        }
        "reduction" => {
            let (op, vars_text) = match args.split_once(':') {
                Some((o, rest)) => (o.trim().to_string(), rest),
                None => (String::from("+"), args),
            };
            OmpClause::Reduction(op, split_top_level_commas(vars_text))
        }
        "private" => OmpClause::Private(split_top_level_commas(args)),
        "firstprivate" => OmpClause::FirstPrivate(split_top_level_commas(args)),
        "shared" => OmpClause::Shared(split_top_level_commas(args)),
        _ if KNOWN_UNMODELED_CLAUSES.contains(&name.as_str()) => {
            OmpClause::Other(clause.to_string())
        }
        _ => OmpClause::Unknown(clause.to_string()),
    }
}

/// Split `a[0:n], b[0:n*m], c` at commas that are not inside brackets.
fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for ch in text.chars() {
        match ch {
            '[' | '(' => {
                depth += 1;
                current.push(ch);
            }
            ']' | ')' => {
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cpu_parallel_for() {
        let d = parse_pragma("parallel for");
        assert_eq!(d.kind, OmpDirectiveKind::ParallelFor);
        assert!(d.clauses.is_empty());
        assert_eq!(d.collapse_depth(), 1);
        assert!(!d.is_target_directive());
    }

    #[test]
    fn parses_collapse_clause() {
        let d = parse_pragma("parallel for collapse(2)");
        assert_eq!(d.collapse_depth(), 2);
    }

    #[test]
    fn parses_gpu_combined_directive() {
        let d = parse_pragma(
            "target teams distribute parallel for collapse(2) num_teams(120) thread_limit(128)",
        );
        assert_eq!(d.kind, OmpDirectiveKind::TargetTeamsDistributeParallelFor);
        assert!(d.kind.is_target());
        assert_eq!(d.collapse_depth(), 2);
        assert_eq!(d.num_teams(), Some(120));
        assert_eq!(d.thread_limit(), Some(128));
    }

    #[test]
    fn parses_map_clauses_with_array_sections() {
        let d = parse_pragma(
            "target teams distribute parallel for map(to: a[0:n*m], b[0:m]) map(from: c[0:n])",
        );
        assert!(d.has_data_transfer());
        let items = d.map_items();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], (MapDirection::To, "a[0:n*m]"));
        assert_eq!(items[2], (MapDirection::From, "c[0:n]"));
    }

    #[test]
    fn parses_schedule_and_reduction_and_private() {
        let d = parse_pragma("parallel for schedule(static, 16) reduction(+: sum) private(i, j)");
        assert_eq!(d.schedule(), ScheduleKind::Static);
        assert!(d
            .clauses
            .iter()
            .any(|c| matches!(c, OmpClause::Schedule(ScheduleKind::Static, Some(16)))));
        assert!(d
            .clauses
            .iter()
            .any(|c| matches!(c, OmpClause::Reduction(op, vars) if op == "+" && vars == &vec!["sum".to_string()])));
        assert!(d
            .clauses
            .iter()
            .any(|c| matches!(c, OmpClause::Private(vars) if vars.len() == 2)));
    }

    #[test]
    fn default_schedule_is_static() {
        let d = parse_pragma("parallel for num_threads(8)");
        assert_eq!(d.schedule(), ScheduleKind::Static);
        assert_eq!(d.num_threads(), Some(8));
    }

    #[test]
    fn unknown_directive_is_preserved() {
        let d = parse_pragma("barrier");
        assert_eq!(d.kind, OmpDirectiveKind::Other);
        assert_eq!(d.raw, "barrier");
    }

    #[test]
    fn unknown_clause_is_preserved_verbatim() {
        let d = parse_pragma("parallel for nowait");
        assert!(d
            .clauses
            .iter()
            .any(|c| matches!(c, OmpClause::Other(text) if text == "nowait")));
    }

    #[test]
    fn unrecognised_clause_becomes_unknown() {
        let d = parse_pragma("parallel for frobnicate(3)");
        assert!(d
            .clauses
            .iter()
            .any(|c| matches!(c, OmpClause::Unknown(text) if text == "frobnicate(3)")));
    }

    #[test]
    fn malformed_known_clause_becomes_unknown() {
        let d = parse_pragma("parallel for collapse(abc) num_threads(-2) schedule(chaotic)");
        let unknowns: Vec<&str> = d
            .clauses
            .iter()
            .filter_map(|c| match c {
                OmpClause::Unknown(text) => Some(text.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            unknowns,
            vec!["collapse(abc)", "num_threads(-2)", "schedule(chaotic)"]
        );
    }

    #[test]
    fn clang_node_names() {
        assert_eq!(
            OmpDirectiveKind::TargetTeamsDistributeParallelFor.clang_node_name(),
            "OMPTargetTeamsDistributeParallelForDirective"
        );
        assert_eq!(
            OmpDirectiveKind::ParallelFor.clang_node_name(),
            "OMPParallelForDirective"
        );
    }

    impl OmpDirective {
        fn is_target_directive(&self) -> bool {
            self.kind.is_target()
        }
    }
}
