//! Token definitions for the C-subset + OpenMP lexer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kinds of tokens produced by the [`crate::lexer::Lexer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Identifier (variable, function or type name not recognised as a keyword).
    Identifier(String),
    /// Reserved C keyword (`for`, `if`, `int`, ...).
    Keyword(Keyword),
    /// Integer literal with its parsed value.
    IntLiteral(i64),
    /// Floating-point literal with its parsed value.
    FloatLiteral(f64),
    /// String literal (contents without quotes, escapes resolved textually).
    StringLiteral(String),
    /// Character literal.
    CharLiteral(char),
    /// Punctuation or operator (`+`, `<=`, `(`, ...).
    Punct(Punct),
    /// An OpenMP pragma line: the raw text after `#pragma omp`.
    OmpPragma(String),
    /// End of input marker.
    Eof,
}

/// C keywords recognised by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Int,
    Float,
    Double,
    Long,
    Short,
    Char,
    Void,
    Unsigned,
    Signed,
    Const,
    Static,
    Struct,
    For,
    While,
    Do,
    If,
    Else,
    Return,
    Break,
    Continue,
    Sizeof,
}

impl Keyword {
    /// Map an identifier spelling to a keyword, if it is one.
    ///
    /// Deliberately not `std::str::FromStr`: absence of a keyword is the
    /// common, non-error case, so `Option` fits better than `Result`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "long" => Keyword::Long,
            "short" => Keyword::Short,
            "char" => Keyword::Char,
            "void" => Keyword::Void,
            "unsigned" => Keyword::Unsigned,
            "signed" => Keyword::Signed,
            "const" => Keyword::Const,
            "static" => Keyword::Static,
            "struct" => Keyword::Struct,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "sizeof" => Keyword::Sizeof,
            _ => return None,
        })
    }

    /// True for keywords that can start a declaration's type specifier.
    pub fn is_type_specifier(self) -> bool {
        matches!(
            self,
            Keyword::Int
                | Keyword::Float
                | Keyword::Double
                | Keyword::Long
                | Keyword::Short
                | Keyword::Char
                | Keyword::Void
                | Keyword::Unsigned
                | Keyword::Signed
                | Keyword::Const
                | Keyword::Static
                | Keyword::Struct
        )
    }

    /// Canonical source spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::Long => "long",
            Keyword::Short => "short",
            Keyword::Char => "char",
            Keyword::Void => "void",
            Keyword::Unsigned => "unsigned",
            Keyword::Signed => "signed",
            Keyword::Const => "const",
            Keyword::Static => "static",
            Keyword::Struct => "struct",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Sizeof => "sizeof",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Question,
    Colon,
}

impl Punct {
    /// Canonical source spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semicolon => ";",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::PercentAssign => "%=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
            Punct::Eq => "==",
            Punct::Ne => "!=",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Not => "!",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Question => "?",
            Punct::Colon => ":",
        }
    }
}

/// Source location of a token (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SourceLocation {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl fmt::Display for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub location: SourceLocation,
}

impl Token {
    /// Convenience constructor.
    pub fn new(kind: TokenKind, line: u32, column: u32) -> Self {
        Self {
            kind,
            location: SourceLocation { line, column },
        }
    }

    /// True for the end-of-file marker.
    pub fn is_eof(&self) -> bool {
        matches!(self.kind, TokenKind::Eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::For,
            Keyword::If,
            Keyword::Return,
            Keyword::Unsigned,
            Keyword::Sizeof,
        ] {
            assert_eq!(Keyword::from_str(kw.spelling()), Some(kw));
        }
        assert_eq!(Keyword::from_str("banana"), None);
    }

    #[test]
    fn type_specifier_classification() {
        assert!(Keyword::Int.is_type_specifier());
        assert!(Keyword::Unsigned.is_type_specifier());
        assert!(Keyword::Const.is_type_specifier());
        assert!(!Keyword::For.is_type_specifier());
        assert!(!Keyword::Return.is_type_specifier());
    }

    #[test]
    fn punct_spellings_are_unique() {
        use std::collections::HashSet;
        let all = [
            Punct::LParen,
            Punct::RParen,
            Punct::Plus,
            Punct::PlusAssign,
            Punct::PlusPlus,
            Punct::Le,
            Punct::Lt,
            Punct::Shl,
            Punct::Assign,
            Punct::Eq,
        ];
        let spellings: HashSet<&str> = all.iter().map(|p| p.spelling()).collect();
        assert_eq!(spellings.len(), all.len());
    }

    #[test]
    fn source_location_display() {
        let loc = SourceLocation {
            line: 3,
            column: 14,
        };
        assert_eq!(loc.to_string(), "3:14");
    }
}
