//! Hard per-request parse budgets.
//!
//! The frontend is an untrusted-input boundary: the serving tier hands it
//! arbitrary bytes from the network. Every resource the lexer and parser can
//! consume — input bytes, tokens, recursion depth, arena nodes — is capped by
//! a [`ParseOptions`] budget, and exceeding a cap is a typed
//! [`FrontendError`](crate::FrontendError) (see
//! [`FrontendErrorKind`](crate::error::FrontendErrorKind)), never a panic or
//! a stack overflow.
//!
//! The defaults are sized so that every catalogue kernel parses with two
//! orders of magnitude of headroom, while a hostile request (a parenthesis
//! bomb, a megabyte of `#define` lines, a macro that expands quadratically)
//! is rejected in bounded time and memory.

/// Resource budget for one parse request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// Maximum source length in bytes; longer inputs are rejected before
    /// lexing starts.
    pub max_source_bytes: usize,
    /// Maximum number of tokens the lexer may produce, counting macro
    /// expansions.
    pub max_tokens: usize,
    /// Maximum combined statement/expression nesting depth. This bounds the
    /// parser's recursion — and, transitively, the recursion of every
    /// downstream consumer that walks the AST (printer, analyses, graph
    /// construction).
    pub max_nesting_depth: usize,
    /// Maximum number of AST arena nodes.
    pub max_ast_nodes: usize,
}

impl ParseOptions {
    /// Default input-size cap: 1 MiB, matching the serve tier's request-body
    /// cap so a body that clears HTTP admission cannot be rejected for size
    /// alone at the frontend.
    pub const DEFAULT_MAX_SOURCE_BYTES: usize = 1 << 20;
    /// Default token cap.
    pub const DEFAULT_MAX_TOKENS: usize = 1 << 18;
    /// Default nesting-depth cap. Catalogue kernels stay below 30 combined
    /// levels; 128 leaves room for generated code while keeping worst-case
    /// parser stack usage far under a thread's stack.
    pub const DEFAULT_MAX_NESTING_DEPTH: usize = 128;
    /// Default AST node cap.
    pub const DEFAULT_MAX_AST_NODES: usize = 1 << 19;

    /// The budget with no caps, for trusted in-process inputs (tests that
    /// deliberately build enormous trees).
    pub fn unlimited() -> Self {
        Self {
            max_source_bytes: usize::MAX,
            max_tokens: usize::MAX,
            max_nesting_depth: usize::MAX,
            max_ast_nodes: usize::MAX,
        }
    }

    /// Replace the source-byte cap.
    pub fn with_max_source_bytes(mut self, cap: usize) -> Self {
        self.max_source_bytes = cap;
        self
    }

    /// Replace the token cap.
    pub fn with_max_tokens(mut self, cap: usize) -> Self {
        self.max_tokens = cap;
        self
    }

    /// Replace the nesting-depth cap.
    pub fn with_max_nesting_depth(mut self, cap: usize) -> Self {
        self.max_nesting_depth = cap;
        self
    }

    /// Replace the AST node cap.
    pub fn with_max_ast_nodes(mut self, cap: usize) -> Self {
        self.max_ast_nodes = cap;
        self
    }
}

impl Default for ParseOptions {
    fn default() -> Self {
        Self {
            max_source_bytes: Self::DEFAULT_MAX_SOURCE_BYTES,
            max_tokens: Self::DEFAULT_MAX_TOKENS,
            max_nesting_depth: Self::DEFAULT_MAX_NESTING_DEPTH,
            max_ast_nodes: Self::DEFAULT_MAX_AST_NODES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let opts = ParseOptions::default();
        assert_eq!(opts.max_source_bytes, 1 << 20);
        assert_eq!(opts.max_nesting_depth, 128);
        let tight = ParseOptions::default()
            .with_max_source_bytes(64)
            .with_max_tokens(16)
            .with_max_nesting_depth(4)
            .with_max_ast_nodes(8);
        assert_eq!(tight.max_source_bytes, 64);
        assert_eq!(tight.max_tokens, 16);
        assert_eq!(tight.max_nesting_depth, 4);
        assert_eq!(tight.max_ast_nodes, 8);
        let open = ParseOptions::unlimited();
        assert_eq!(open.max_tokens, usize::MAX);
    }
}
