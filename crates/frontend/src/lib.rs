//! # pg-frontend
//!
//! A from-scratch compiler frontend for the C subset + OpenMP directives used
//! by the ParaGraph benchmark kernels. It stands in for Clang in the paper's
//! pipeline (Figure 3): kernels are lexed, parsed into a Clang-style AST,
//! symbol references are resolved, and loop/trip-count analyses expose the
//! information ParaGraph encodes as edge weights.
//!
//! ```
//! use pg_frontend::{parse, analysis, symbols};
//!
//! let ast = parse("void axpy(float *x, float *y, int n) {\n  #pragma omp parallel for\n  for (int i = 0; i < 1024; i++) { y[i] = y[i] + 2.0 * x[i]; }\n}").unwrap();
//! let table = symbols::resolve(&ast);
//! assert!(table.resolved_count() > 0);
//! let for_stmt = ast.find_first(pg_frontend::AstKind::ForStmt).unwrap();
//! assert_eq!(analysis::trip_count(&ast, for_stmt, &Default::default()), Some(1024));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod limits;
pub mod omp;
pub mod parser;
pub mod printer;
pub mod symbols;
pub mod testing;
pub mod token;

pub use analysis::{classify_for, LoopInfo, LoopShape};
pub use ast::{Ast, AstKind, AstNode, NodeData, NodeId};
pub use error::{FrontendError, FrontendErrorKind};
pub use limits::ParseOptions;
pub use omp::{MapDirection, OmpClause, OmpDirective, OmpDirectiveKind, ScheduleKind};
pub use parser::{parse, parse_with_options};
pub use symbols::{resolve, SymbolTable};
pub use token::SourceLocation;
