//! Seeded, deterministic fuzz harness for the frontend's untrusted-input
//! boundary.
//!
//! Three properties are exercised, each over `PARAGRAPH_FUZZ_ITERS`
//! iterations (default 300 for local runs; CI's fuzz-smoke step runs 10k):
//!
//! 1. **Round trip** — every generated (valid-by-construction) program
//!    survives `parse → printer::print → parse` with an equivalent AST.
//! 2. **No panic** — every mutated program either parses or returns a typed
//!    [`FrontendError`]; the parser never panics, whatever the bytes.
//! 3. **Limits** — under a deliberately tight [`ParseOptions`] budget every
//!    rejection is a typed limit/syntax error, and nesting bombs
//!    specifically report `NestingTooDeep`.
//!
//! Failures print the seed (and the offending input), so any crash
//! reproduces with `PARAGRAPH_FUZZ_SEED=<seed>`-style pinning in a local
//! regression (see `regressions.rs` and `tests/corpus/`).

use pg_frontend::testing::{generate_program, mutate, nesting_bomb, Rng};
use pg_frontend::{
    parse, parse_with_options, printer, Ast, AstKind, FrontendErrorKind, NodeId, ParseOptions,
};

fn fuzz_iters() -> u64 {
    std::env::var("PARAGRAPH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// One signature entry: (kind, name, opcode, int value, float bits).
type NodeSignature = (
    AstKind,
    Option<String>,
    Option<String>,
    Option<i64>,
    Option<u64>,
);

/// Preorder structural signature, skipping the transparent wrapper nodes
/// (`ParenExpr`, `ImplicitCastExpr`) that the printer legitimately adds or
/// drops when it re-parenthesises for precedence.
fn signature(ast: &Ast) -> Vec<NodeSignature> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = vec![ast.root()];
    while let Some(id) = stack.pop() {
        let node = ast.node(id);
        if !matches!(node.kind, AstKind::ParenExpr | AstKind::ImplicitCastExpr) {
            out.push((
                node.kind,
                node.data.name.clone(),
                node.data.opcode.clone(),
                node.data.int_value,
                node.data.float_value.map(f64::to_bits),
            ));
        }
        // Push children reversed so the walk is preorder left-to-right.
        for &c in node.children.iter().rev() {
            stack.push(c);
        }
    }
    out
}

#[test]
fn fuzz_generated_programs_round_trip_through_printer() {
    let iters = fuzz_iters();
    for seed in 0..iters {
        let src = generate_program(seed);
        let ast1 = match parse(&src) {
            Ok(a) => a,
            Err(e) => panic!("seed {seed}: generated program failed to parse: {e}\n---\n{src}"),
        };
        let printed = printer::print(&ast1);
        let ast2 = match parse(&printed) {
            Ok(a) => a,
            Err(e) => panic!(
                "seed {seed}: printed program failed to re-parse: {e}\n--- original\n{src}\n--- printed\n{printed}"
            ),
        };
        assert_eq!(
            signature(&ast1),
            signature(&ast2),
            "seed {seed}: AST changed across parse -> print -> parse\n--- original\n{src}\n--- printed\n{printed}"
        );
    }
}

#[test]
fn fuzz_mutated_programs_never_panic() {
    let iters = fuzz_iters();
    for seed in 0..iters {
        let src = generate_program(seed);
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9));
        let mut mutated = src;
        for round in 0..(1 + rng.below(3)) {
            mutated = mutate(&mutated, &mut rng);
            let input = mutated.clone();
            let outcome = std::panic::catch_unwind(move || {
                let _ = parse(&input);
            });
            if outcome.is_err() {
                panic!(
                    "seed {seed} round {round}: parser panicked on mutated input\n---\n{mutated}"
                );
            }
        }
    }
}

#[test]
fn fuzz_limits_enforced_under_tight_budget() {
    let iters = fuzz_iters();
    let tight = ParseOptions::default()
        .with_max_source_bytes(4096)
        .with_max_tokens(512)
        .with_max_nesting_depth(16)
        .with_max_ast_nodes(256);
    for seed in 0..iters {
        let src = generate_program(seed);
        // Any outcome is fine as long as errors are typed and no panic
        // escapes; limit errors must be flagged as such.
        match parse_with_options(&src, tight) {
            Ok(_) => {}
            Err(e) => {
                if e.is_limit() {
                    assert!(
                        !matches!(e.kind, FrontendErrorKind::Syntax),
                        "seed {seed}: is_limit error carries Syntax kind"
                    );
                }
            }
        }
    }
}

#[test]
fn fuzz_nesting_bombs_report_typed_error_at_any_depth() {
    let mut rng = Rng::new(7);
    for _ in 0..64 {
        let depth = 129 + rng.below(20_000);
        let err = parse(&nesting_bomb(depth)).unwrap_err();
        assert!(
            matches!(err.kind, FrontendErrorKind::NestingTooDeep { limit: 128 }),
            "depth {depth}: expected NestingTooDeep, got {:?}",
            err.kind
        );
    }
}
