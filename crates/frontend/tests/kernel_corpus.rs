//! Integration tests running the frontend over a corpus of realistic OpenMP
//! kernels (beyond the unit-test snippets): parsing, symbol resolution,
//! round-trip printing and loop analysis must all hold together.

use pg_frontend::analysis::{self, ConstEnv};
use pg_frontend::{parse, printer, symbols, AstKind};

/// A small corpus of kernels in the style of the paper's benchmarks.
const CORPUS: &[(&str, &str)] = &[
    (
        "stencil2d",
        r#"
        void stencil(float *in, float *out) {
            #pragma omp target teams distribute parallel for collapse(2) num_teams(80) thread_limit(128) map(to: in[0:1048576]) map(from: out[0:1048576])
            for (int i = 1; i < 1023; i++) {
                for (int j = 1; j < 1023; j++) {
                    out[i * 1024 + j] = 0.2 * (in[i * 1024 + j] + in[(i - 1) * 1024 + j] + in[(i + 1) * 1024 + j] + in[i * 1024 + j - 1] + in[i * 1024 + j + 1]);
                }
            }
        }
        "#,
    ),
    (
        "reduction_style",
        r#"
        void dot(float *a, float *b, float *result) {
            float acc = 0.0;
            #pragma omp parallel for reduction(+: acc) num_threads(16)
            for (int i = 0; i < 65536; i++) {
                acc += a[i] * b[i];
            }
            result[0] = acc;
        }
        "#,
    ),
    (
        "branchy_kernel",
        r#"
        void clamp_scale(float *data, float lo, float hi) {
            #pragma omp parallel for
            for (int i = 0; i < 100000; i++) {
                float v = data[i];
                if (v < lo) {
                    data[i] = lo;
                } else {
                    if (v > hi) {
                        data[i] = hi;
                    } else {
                        data[i] = v * 1.5;
                    }
                }
            }
        }
        "#,
    ),
    (
        "triangular_loop",
        r#"
        void lower_triangle(float *m, float *v, float *out) {
            #pragma omp parallel for num_threads(8) schedule(static)
            for (int i = 0; i < 512; i++) {
                float acc = 0.0;
                for (int j = 0; j <= i; j++) {
                    acc += m[i * 512 + j] * v[j];
                }
                out[i] = acc;
            }
        }
        "#,
    ),
    (
        "multi_function_unit",
        r#"
        float scale(float x, float f) { return x * f; }
        void apply(float *data, float factor) {
            #pragma omp parallel for
            for (int i = 0; i < 4096; i++) {
                data[i] = scale(data[i], factor);
            }
        }
        "#,
    ),
    (
        "while_convergence",
        r#"
        void converge(float *x) {
            int iter = 0;
            float err = 1.0;
            while (err > 0.001) {
                err = 0.0;
                for (int i = 1; i < 1023; i++) {
                    float next = 0.5 * (x[i - 1] + x[i + 1]);
                    float d = next - x[i];
                    if (d < 0.0) { d = -d; }
                    if (d > err) { err = d; }
                    x[i] = next;
                }
                iter = iter + 1;
            }
        }
        "#,
    ),
];

#[test]
fn corpus_parses_and_validates() {
    for (name, src) in CORPUS {
        let ast = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        ast.validate()
            .unwrap_or_else(|e| panic!("{name}: invalid AST: {e}"));
        assert!(
            ast.len() > 20,
            "{name}: suspiciously small AST ({})",
            ast.len()
        );
    }
}

#[test]
fn corpus_symbols_resolve_except_library_calls() {
    for (name, src) in CORPUS {
        let ast = parse(src).unwrap();
        let table = symbols::resolve(&ast);
        // Every unresolved reference must be a call target (library function),
        // never a plain variable.
        for &unresolved in table.unresolved() {
            let ident = ast.node(unresolved).data.name.clone().unwrap_or_default();
            assert!(
                ["sqrt", "exp", "fabs", "pow", "log"].contains(&ident.as_str()),
                "{name}: unexpected unresolved identifier '{ident}'"
            );
        }
    }
}

#[test]
fn corpus_round_trips_through_the_printer() {
    for (name, src) in CORPUS {
        let ast = parse(src).unwrap();
        let printed = printer::print(&ast);
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("{name}: reprint failed: {e}\n{printed}"));
        for kind in [
            AstKind::ForStmt,
            AstKind::IfStmt,
            AstKind::WhileStmt,
            AstKind::CallExpr,
            AstKind::ArraySubscriptExpr,
            AstKind::FunctionDecl,
        ] {
            assert_eq!(
                ast.find_all(kind).len(),
                reparsed.find_all(kind).len(),
                "{name}: {kind:?} count changed through print/parse"
            );
        }
    }
}

#[test]
fn corpus_outer_parallel_loops_have_trip_counts() {
    let env = ConstEnv::new();
    for (name, src) in CORPUS {
        let ast = parse(src).unwrap();
        // Find the loop associated with the OpenMP directive (if any).
        let directive = ast
            .preorder()
            .into_iter()
            .find(|&id| ast.kind(id).is_omp_directive());
        let Some(d) = directive else { continue };
        let for_stmt = ast
            .preorder_from(d)
            .into_iter()
            .find(|&id| ast.kind(id) == AstKind::ForStmt)
            .unwrap_or_else(|| panic!("{name}: directive without a loop"));
        let trip = analysis::trip_count(&ast, for_stmt, &env);
        assert!(
            trip.is_some() && trip.unwrap() > 0,
            "{name}: outer parallel loop has no static trip count"
        );
    }
}

#[test]
fn corpus_work_estimates_are_positive_and_loop_aware() {
    let env = ConstEnv::new();
    for (name, src) in CORPUS {
        let ast = parse(src).unwrap();
        let work = analysis::estimate_work(&ast, ast.root(), &env);
        assert!(work.arithmetic_ops() > 0.0, "{name}: no arithmetic counted");
        assert!(work.memory_ops() > 0.0, "{name}: no memory traffic counted");
        assert!(work.iterations > 0.0, "{name}: no iterations counted");
        assert!(work.max_loop_depth >= 1, "{name}: loop depth not detected");
    }
}
