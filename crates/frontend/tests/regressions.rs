//! Minimized regression tests for crashes and hangs found by the fuzz
//! harness (`fuzz_smoke.rs`).
//!
//! Every file in `tests/corpus/` is a minimized crasher: an input that once
//! panicked, overflowed the stack, or took quadratic time in the frontend.
//! The blanket test below parses each under the default budget and asserts
//! the outcome is a plain `Ok`/`Err` — never a panic. Targeted tests pin
//! the specific error taxonomy for the most instructive cases.
//!
//! To check in a new crasher: minimize the input (line-at-a-time, then
//! token-at-a-time, re-running the failing parse after each cut), drop it
//! in `tests/corpus/` with a descriptive name, and — if the failure mode is
//! novel — add a targeted test asserting its typed `FrontendErrorKind`.

use pg_frontend::{parse, FrontendErrorKind};

mod corpus_support {
    use pg_frontend::{analysis, symbols, Ast};

    /// Run every panic-prone downstream consumer over a parsed AST, the
    /// way `pg-analyze` and the graph builder would.
    pub fn exercise_downstream(ast: &Ast) {
        let _ = symbols::resolve(ast);
        let env = analysis::ConstEnv::new();
        for for_stmt in ast.find_all(pg_frontend::AstKind::ForStmt) {
            let _ = analysis::classify_for(ast, for_stmt, &env);
            let _ = analysis::loop_nest(ast, for_stmt, &env);
        }
    }
}

#[test]
fn every_corpus_file_parses_without_panicking() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("corpus dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("c") {
            continue;
        }
        seen += 1;
        let source = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            String::from_utf8_lossy(&std::fs::read(&path).unwrap()).into_owned()
        });
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let outcome = std::panic::catch_unwind(move || parse(&source));
        match outcome {
            Ok(result) => {
                // Either outcome is acceptable; panics are not. When the
                // parse succeeds, downstream analyses must also hold.
                if let Ok(ast) = result {
                    corpus_support::exercise_downstream(&ast);
                }
            }
            Err(_) => panic!("corpus file {name} panicked the frontend"),
        }
    }
    assert!(seen >= 10, "corpus unexpectedly small: {seen} files");
}

#[test]
fn paren_and_brace_bombs_hit_the_depth_budget() {
    for file in ["parens_bomb.c", "brace_bomb.c"] {
        let src = std::fs::read_to_string(format!(
            "{}/tests/corpus/{file}",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap();
        let err = parse(&src).unwrap_err();
        assert!(
            matches!(err.kind, FrontendErrorKind::NestingTooDeep { .. }),
            "{file}: expected NestingTooDeep, got {:?}",
            err.kind
        );
    }
}

#[test]
fn unterminated_literals_and_comments_are_typed() {
    let err = parse("void f() { char *s = \"never closed; }").unwrap_err();
    assert_eq!(err.kind, FrontendErrorKind::UnterminatedLiteral);
    let err = parse("void f() { char c = 'x; }").unwrap_err();
    assert_eq!(err.kind, FrontendErrorKind::UnterminatedLiteral);
    let err = parse("void f() { /* runs to end of input").unwrap_err();
    assert_eq!(err.kind, FrontendErrorKind::UnterminatedComment);
}

#[test]
fn malformed_numeric_literals_are_typed() {
    let err = parse("void f() { long x = 0xFFFFFFFFFFFFFFFFFFFFFFFF; }").unwrap_err();
    assert_eq!(err.kind, FrontendErrorKind::InvalidLiteral);
    let err = parse("void f() { long x = 9223372036854775808; }").unwrap_err();
    assert_eq!(err.kind, FrontendErrorKind::InvalidLiteral);
}

#[test]
fn non_utf8_replacement_chars_are_rejected_not_panicked() {
    // Byte-flip mutations go through from_utf8_lossy, so the parser sees
    // U+FFFD and other non-ASCII in identifier position.
    let err = parse("void f\u{fffd}() { int \u{e9} = 1; }").unwrap_err();
    assert_eq!(err.kind, FrontendErrorKind::UnexpectedCharacter);
}

#[test]
fn exotic_pragmas_do_not_panic_the_omp_parser() {
    // Non-OpenMP pragmas are skipped; malformed OpenMP pragmas degrade to
    // `Other` directives with unknown clauses; none of them panic.
    let src = "#pragma STDC FENV_ACCESS ON\nvoid f() { }\n";
    parse(src).unwrap();
    let src = "void f() { \n#pragma omp parallel for schedule(\nfor (int i = 0; i < 4; i++) { } }";
    parse(src).unwrap();
    let src = "void f() { \n#pragma omp \u{fffd}\u{fffd}\nfor (int i = 0; i < 4; i++) { } }";
    parse(src).unwrap();
}

#[test]
fn preprocessor_floods_parse_in_bounded_time_and_stack() {
    // 20k consecutive #define lines: the old recursive next_token
    // overflowed the stack here, and per-use macro re-lexing made this
    // quadratic.
    let mut src = String::new();
    for i in 0..20_000 {
        src.push_str(&format!("#define M{i} {i}\n"));
    }
    src.push_str("void f() { int x = M0 + M19999; }\n");
    let ast = parse(&src).unwrap();
    corpus_support::exercise_downstream(&ast);
}

#[test]
fn self_referential_macro_terminates() {
    let ast = parse("#define N N\nvoid f() { int x = N; }\n").unwrap();
    corpus_support::exercise_downstream(&ast);
}
