void f() { /* runs to end of input
