void f() { long x = 0xFFFFFFFFFFFFFFFFFFFFFFFF; }
