#define N N
void f() { int x = N; }
