void f�() { int é = 1; }
