void f() { char c = 'x; }
