#pragma omp ��
#pragma omp parallel for schedule(
#pragma not_omp at(all
void f() { }
