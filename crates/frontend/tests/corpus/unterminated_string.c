void f() { char *s = "never closed; }
