//! Property tests over the structured program generator: printer round-trip
//! and the formatting-independence of downstream analysis inputs.
//!
//! These complement `fuzz_smoke.rs`: the fuzz harness drives volume and
//! mutation coverage; the properties here are the precise invariants,
//! expressed through proptest strategies over generator seeds and size
//! knobs.

use pg_frontend::testing::{reformat, GenConfig, Generator, Rng as FuzzRng};
use pg_frontend::{parse, printer, AstKind};
use proptest::prelude::*;

const STRUCTURAL_KINDS: [AstKind; 10] = [
    AstKind::FunctionDecl,
    AstKind::VarDecl,
    AstKind::ForStmt,
    AstKind::WhileStmt,
    AstKind::IfStmt,
    AstKind::BinaryOperator,
    AstKind::CompoundAssignOperator,
    AstKind::ConditionalOperator,
    AstKind::ArraySubscriptExpr,
    AstKind::OmpParallelForDirective,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_print_reparse_is_structure_preserving(
        seed in 0u64..1_000_000u64,
        funcs in 1usize..4usize,
        depth in 2usize..5usize,
    ) {
        let config = GenConfig {
            max_functions: funcs,
            max_block_depth: depth,
            ..GenConfig::default()
        };
        let src = Generator::with_config(seed, config).program();
        let ast1 = parse(&src).expect("generated program parses");
        let printed = printer::print(&ast1);
        let ast2 = parse(&printed).expect("printed program re-parses");
        for kind in STRUCTURAL_KINDS {
            prop_assert_eq!(
                ast1.find_all(kind).len(),
                ast2.find_all(kind).len(),
                "count of {:?} changed across round trip (seed {})",
                kind,
                seed
            );
        }
    }

    #[test]
    fn reformatting_never_changes_the_parsed_structure(
        seed in 0u64..1_000_000u64,
        style_seed in 0u64..1_000u64,
    ) {
        let src = Generator::new(seed).program();
        let mut style = FuzzRng::new(style_seed);
        let twin = reformat(&src, &mut style);
        let ast1 = parse(&src).expect("original parses");
        let ast2 = parse(&twin).expect("whitespace/comment twin parses");
        for kind in STRUCTURAL_KINDS {
            prop_assert_eq!(
                ast1.find_all(kind).len(),
                ast2.find_all(kind).len(),
                "count of {:?} changed under reformatting (seed {})",
                kind,
                seed
            );
        }
    }
}
