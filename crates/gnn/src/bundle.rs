//! The deployable form of a trained ParaGraph model.
//!
//! [`train`](crate::train()) returns the model and its metrics, but the
//! fitted scalers live in the [`PreparedDataset`](crate::PreparedDataset)
//! and are easy to lose track of — and a model is useless for serving
//! without them. [`TrainedModel`] bundles everything a prediction needs
//! (model weights, the graph representation it was trained on, the fitted
//! target transform and side-feature scaler) behind source- and graph-level
//! `predict` entry points. The `pg-engine` GNN backend consumes exactly this
//! bundle.

use crate::batch::{BatchedGraph, PreparedGraph};
use crate::model::ParaGraphModel;
use crate::train::{prepare, train_prepared, TrainConfig, TrainError, TrainedOutcome};
use paragraph_core::{build, to_relational, BuilderConfig, RelationalGraph, Representation};
use pg_dataset::PlatformDataset;
use pg_frontend::FrontendError;
use pg_tensor::{MinMaxScaler, Tape, TargetTransform};
use serde::{Deserialize, Serialize};

/// Graphs per batched forward pass in [`TrainedModel::predict_relational_batch`]:
/// bounds the disjoint union's peak memory while keeping the batched
/// matrices large enough for the parallel matmul kernels.
const PREDICT_BATCH: usize = 64;

/// A trained ParaGraph model together with the fitted scalers and the
/// representation it expects — everything needed to serve predictions.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TrainedModel {
    /// The trained network.
    pub model: ParaGraphModel,
    /// Graph representation the model was trained on.
    pub representation: Representation,
    /// Target transform fitted on the training split (decodes predictions
    /// back to milliseconds).
    pub target_transform: TargetTransform,
    /// Side-feature scaler fitted on the training split (scales the raw
    /// `(teams, threads)` launch configuration).
    pub side_scaler: MinMaxScaler,
}

impl TrainedModel {
    /// Train on a platform dataset and return the bundle plus the training
    /// metrics ([`TrainedOutcome`]).
    pub fn fit(
        dataset: &PlatformDataset,
        config: &TrainConfig,
    ) -> Result<(TrainedModel, TrainedOutcome), TrainError> {
        let prepared = prepare(dataset, config.representation, config.seed);
        let outcome = train_prepared(&prepared, config)?;
        let bundle = TrainedModel {
            model: outcome.model.clone(),
            representation: config.representation,
            target_transform: prepared.target_transform,
            side_scaler: prepared.side_scaler,
        };
        Ok((bundle, outcome))
    }

    /// The builder configuration a caller must use to construct graphs this
    /// model can consume for a given launch configuration.
    pub fn builder_config(&self, teams: u64, threads: u64) -> BuilderConfig {
        BuilderConfig::for_representation(self.representation).with_launch(teams, threads)
    }

    /// Predict the runtime (ms) from an already-built relational graph and a
    /// raw launch configuration.
    pub fn predict_relational(&self, graph: &RelationalGraph, teams: u64, threads: u64) -> f32 {
        let side = self.side_scaler.transform(&[teams as f32, threads as f32]);
        let encoded = self.model.predict_graph(graph, [side[0], side[1]]);
        self.target_transform.decode(encoded).max(0.0)
    }

    /// Predict the runtimes (ms) of a whole candidate set in batched forward
    /// passes: the graphs are joined into disjoint unions of up to
    /// [`PREDICT_BATCH`] members and driven through one tape per chunk, so
    /// parameters are registered once per chunk instead of once per
    /// candidate. Results are ordered like the input and match
    /// [`TrainedModel::predict_relational`] to float precision.
    pub fn predict_relational_batch(&self, items: &[(&RelationalGraph, u64, u64)]) -> Vec<f32> {
        let mut tape = Tape::new();
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(PREDICT_BATCH) {
            let prepared: Vec<PreparedGraph> = chunk
                .iter()
                .map(|(graph, _, _)| PreparedGraph::from_relational(graph))
                .collect();
            let batch_items: Vec<(&PreparedGraph, [f32; 2])> = prepared
                .iter()
                .zip(chunk)
                .map(|(graph, &(_, teams, threads))| {
                    let side = self.side_scaler.transform(&[teams as f32, threads as f32]);
                    (graph, [side[0], side[1]])
                })
                .collect();
            let batch = BatchedGraph::build(&batch_items);
            out.extend(
                self.model
                    .predict_batched(&mut tape, &batch)
                    .into_iter()
                    .map(|encoded| self.target_transform.decode(encoded).max(0.0)),
            );
        }
        out
    }

    /// Persist this bundle at `path` with a content fingerprint (atomic
    /// rename write), returning the fingerprint. `trained_on` is the
    /// platform whose dataset fitted the model; it is stored in the
    /// artifact so [`TrainedModel::load`] can reconstruct a
    /// [`GnnBackend`](crate::GnnBackend) that refuses foreign platforms.
    pub fn save(
        &self,
        path: &std::path::Path,
        trained_on: pg_perfsim::Platform,
    ) -> Result<String, crate::registry::BundleError> {
        crate::registry::save_bundle(self, trained_on, path)
    }

    /// Load and verify a bundle persisted by [`TrainedModel::save`].
    pub fn load(
        path: &std::path::Path,
    ) -> Result<crate::registry::LoadedBundle, crate::registry::BundleError> {
        crate::registry::load_bundle(path)
    }

    /// Predict the runtime (ms) of a kernel source under a launch
    /// configuration: parse, build the graph in this model's representation,
    /// and run the forward pass.
    pub fn predict_source(
        &self,
        source: &str,
        teams: u64,
        threads: u64,
    ) -> Result<f32, FrontendError> {
        let ast = pg_frontend::parse(source)?;
        let graph = to_relational(&build(&ast, &self.builder_config(teams, threads)));
        Ok(self.predict_relational(&graph, teams, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::evaluate;
    use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};
    use pg_perfsim::Platform;

    fn tiny_dataset() -> PlatformDataset {
        collect_platform(
            Platform::SummitV100,
            &PipelineConfig {
                scale: DatasetScale::Fast,
                seed: 3,
                noise_sigma: 0.02,
            },
        )
    }

    #[test]
    fn bundle_predictions_match_the_training_pipeline() {
        let ds = tiny_dataset();
        let config = TrainConfig::fast();
        let (bundle, _) = TrainedModel::fit(&ds, &config).unwrap();

        // Re-derive the prepared dataset the training run used and check the
        // bundle's source-level path reproduces evaluate()'s predictions.
        let prepared = prepare(&ds, config.representation, config.seed);
        let records = evaluate(&bundle.model, &prepared, &prepared.val_idx);
        for (record, &idx) in records.iter().zip(prepared.val_idx.iter()).take(10) {
            let point = &ds.points[idx];
            let from_source = bundle
                .predict_source(&point.source, point.teams, point.threads)
                .unwrap();
            assert!(
                (from_source - record.predicted_ms).abs()
                    <= 1e-4 * record.predicted_ms.abs().max(1.0),
                "bundle prediction {from_source} diverged from training-path prediction {}",
                record.predicted_ms
            );
        }
    }

    #[test]
    fn invalid_source_is_an_error() {
        let ds = tiny_dataset();
        let (bundle, _) = TrainedModel::fit(&ds, &TrainConfig::fast()).unwrap();
        assert!(bundle.predict_source("not C at all", 80, 128).is_err());
    }
}
