//! Relational Graph Attention (RGAT) convolution layer.
//!
//! The paper adapts RGAT (Busbridge et al., 2019): attention logits are
//! computed **per edge type**, normalised over the incoming edges of each
//! destination node within that edge type, and the per-relation aggregations
//! are summed together with a self-connection. ParaGraph's edge weights enter
//! as multiplicative attention priors on the `Child` relation.

use crate::batch::PreparedRelation;
use pg_tensor::{init, Matrix, Tape, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Negative slope of the LeakyReLU applied to attention logits (GAT default).
pub const ATTENTION_LEAKY_SLOPE: f32 = 0.2;

/// Per-relation execution mode for [`RgatLayer::forward_with_dispatch`].
///
/// Message passing has two duals: **push** walks the edge list and
/// scatter-adds each source's scaled message into its destination row;
/// **pull** iterates destination rows of the relation's CSR pattern and
/// accumulates incoming messages as a sparse × dense product (SpMM). The
/// math is row-identical — the CSR build is stable by destination, so each
/// output row sums the same contributions in the same order — but the cost
/// profiles differ: pull projects every node once and never materialises a
/// per-edge feature matrix, which wins when the relation is dense relative
/// to the node set; push touches only rows incident to an edge, which wins
/// when edges are scarce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseDispatch {
    /// Pick per relation by density: pull when `2E >= N`, push otherwise.
    #[default]
    Auto,
    /// Always push (per-edge iteration), regardless of density.
    ForcePush,
    /// Always pull (CSR SpMM), regardless of density.
    ForcePull,
}

impl SparseDispatch {
    /// Resolve the mode for one relation with `edges` edges over
    /// `node_count` nodes.
    fn pull(self, edges: usize, node_count: usize) -> bool {
        match self {
            SparseDispatch::Auto => 2 * edges >= node_count,
            SparseDispatch::ForcePush => false,
            SparseDispatch::ForcePull => true,
        }
    }
}

/// One RGAT convolution layer.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RgatLayer {
    /// Per-relation projection matrices (`F_in x F_out`).
    pub w_rel: Vec<Matrix>,
    /// Per-relation attention vectors (`2*F_out x 1`).
    pub a_rel: Vec<Matrix>,
    /// Self-connection projection (`F_in x F_out`).
    pub w_self: Matrix,
    /// Bias (`1 x F_out`).
    pub bias: Matrix,
    /// Input feature dimension.
    pub input_dim: usize,
    /// Output feature dimension.
    pub output_dim: usize,
}

impl RgatLayer {
    /// Create a layer with Xavier-initialised projections.
    pub fn new(
        rng: &mut StdRng,
        num_relations: usize,
        input_dim: usize,
        output_dim: usize,
    ) -> Self {
        let w_rel = (0..num_relations)
            .map(|_| init::xavier_uniform(rng, input_dim, output_dim))
            .collect();
        let a_rel = (0..num_relations)
            .map(|_| init::small_uniform(rng, 2 * output_dim, 1, 0.1))
            .collect();
        Self {
            w_rel,
            a_rel,
            w_self: init::xavier_uniform(rng, input_dim, output_dim),
            bias: Matrix::zeros(1, output_dim),
            input_dim,
            output_dim,
        }
    }

    /// Number of relations the layer models.
    pub fn num_relations(&self) -> usize {
        self.w_rel.len()
    }

    /// Total number of trainable matrices in this layer.
    pub fn parameter_count(&self) -> usize {
        2 * self.w_rel.len() + 2
    }

    /// Borrow every trainable matrix, in a stable order.
    pub fn parameters(&self) -> Vec<&Matrix> {
        let mut out: Vec<&Matrix> = Vec::with_capacity(self.parameter_count());
        out.extend(self.w_rel.iter());
        out.extend(self.a_rel.iter());
        out.push(&self.w_self);
        out.push(&self.bias);
        out
    }

    /// Mutably borrow every trainable matrix, in the same order as
    /// [`RgatLayer::parameters`].
    pub fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = Vec::with_capacity(2 * self.w_rel.len() + 2);
        out.extend(self.w_rel.iter_mut());
        out.extend(self.a_rel.iter_mut());
        out.push(&mut self.w_self);
        out.push(&mut self.bias);
        out
    }

    /// Forward pass on the tape.
    ///
    /// * `h` — node features (`N x F_in`) already on the tape,
    /// * `params` — the layer's parameters as tape leaves, in the order of
    ///   [`RgatLayer::parameters`],
    /// * `relations` — prepared per-relation edge lists (single graph or a
    ///   disjoint-union batch; the layer does not care — shifted indices and
    ///   per-destination softmax segments batch transparently).
    ///
    /// The interned `Arc` index slices are recorded on the tape by refcount,
    /// so a forward pass copies no edge list.
    ///
    /// # Kernel structure
    ///
    /// The attention logit `leakyrelu(a^T [W h_src | W h_dst])` decomposes
    /// into `leakyrelu(a_src^T (W h_src) + a_dst^T (W h_dst))`, so instead of
    /// materialising the `E x 2H` concatenation the layer computes two
    /// per-edge scalar columns and adds them (the standard GAT
    /// factorisation). Each relation then executes in one of two modes
    /// (chosen by density under [`SparseDispatch::Auto`]):
    ///
    /// * **pull / SpMM** (`2E >= N`, e.g. the Child tree): project every
    ///   node once (`proj = H W`), compute the logits with a fused
    ///   SDDMM-style op directly over the relation's CSR pattern, softmax
    ///   over contiguous CSR row extents, and aggregate as the sparse ×
    ///   dense product `agg += A(scale) · proj`. No per-edge feature matrix
    ///   is ever materialised, and backward pulls through the pattern's
    ///   transpose view instead of scattering;
    /// * **push / edge iteration** (`2E < N`): project only the gathered
    ///   source rows, fold the destination projection into the attention
    ///   vector (`(h_dst W) a_dst = h_dst (W a_dst)`, an `F x 1`
    ///   precontraction), and aggregate with the fused per-edge
    ///   `edge_scale_scatter` — only rows incident to an edge are touched.
    ///
    /// Both modes accumulate each destination row in the same order (the
    /// CSR build is stable by destination), so switching modes never
    /// changes which floats are added — only the association inside the
    /// logit dot products differs, within float tolerance.
    ///
    /// Returns the new node representations (`N x F_out`).
    pub fn forward(
        &self,
        tape: &mut Tape,
        h: Var,
        params: &[Var],
        relations: &[PreparedRelation],
        node_count: usize,
    ) -> Var {
        self.forward_with_dispatch(tape, h, params, relations, node_count, SparseDispatch::Auto)
    }

    /// [`RgatLayer::forward`] with an explicit push/pull override — the
    /// density heuristic is the only thing `dispatch` changes; outputs agree
    /// across modes to float tolerance (see the golden equivalence suite).
    pub fn forward_with_dispatch(
        &self,
        tape: &mut Tape,
        h: Var,
        params: &[Var],
        relations: &[PreparedRelation],
        node_count: usize,
        dispatch: SparseDispatch,
    ) -> Var {
        assert_eq!(
            params.len(),
            self.parameter_count(),
            "parameter count mismatch"
        );
        assert_eq!(
            relations.len(),
            self.num_relations(),
            "relation count mismatch"
        );
        let r = self.num_relations();
        let w_rel = &params[0..r];
        let a_rel = &params[r..2 * r];
        let w_self = params[2 * r];
        let bias = params[2 * r + 1];
        let out_dim = self.output_dim;

        // Self connection: H * W_self.
        let mut agg = tape.matmul(h, w_self);

        for (rel_idx, rel) in relations.iter().enumerate() {
            if rel.is_empty() {
                continue;
            }
            let e = rel.len();
            let w = w_rel[rel_idx];
            let a_src = tape.slice_rows(a_rel[rel_idx], 0, out_dim);
            let a_dst = tape.slice_rows(a_rel[rel_idx], out_dim, 2 * out_dim);

            if dispatch.pull(e, node_count) {
                // Pull: SpMM against the relation's CSR pattern. Everything
                // per-edge lives in CSR order (logits, softmax, priors), so
                // the aggregation is one sparse × dense product.
                let csr = rel.csr();
                debug_assert_eq!(csr.adj.rows(), node_count, "CSR/node-count mismatch");
                let proj = tape.matmul(h, w);
                let raw_logits = tape.sddmm_edge_logits(proj, a_src, a_dst, &csr.adj);
                let logits = tape.leaky_relu(raw_logits, ATTENTION_LEAKY_SLOPE);
                let alpha =
                    tape.csr_segment_softmax(logits, csr.adj.row_ptr(), csr.priors_csr.as_slice());
                // The edge priors (log-compressed ParaGraph weights) scale
                // the messages *in addition* to steering the attention —
                // Child edges form a tree, so with one incoming edge per
                // destination the softmax alone would normalise the weight
                // information away entirely.
                let prior_col = tape.leaf_copy_no_grad(&csr.priors_csr);
                let scale = tape.hadamard(alpha, prior_col);
                agg = tape.spmm_csr(proj, scale, Some(agg), &csr.adj);
            } else {
                // Push: project gathered sources; precontract W with the
                // destination attention half so the destination side costs
                // one E x F gather and an E x F dot; aggregate with the
                // fused per-edge scatter (no E x F_out intermediates).
                let hs = tape.gather_rows_shared(h, Arc::clone(&rel.src));
                let ms = tape.matmul(hs, w);
                let s_src = tape.matmul(ms, a_src);
                let w_a_dst = tape.matmul(w, a_dst);
                let hd = tape.gather_rows_shared(h, Arc::clone(&rel.dst));
                let s_dst = tape.matmul(hd, w_a_dst);
                let raw_logits = tape.add(s_src, s_dst);
                let logits = tape.leaky_relu(raw_logits, ATTENTION_LEAKY_SLOPE);
                let alpha = tape.segment_softmax_shared(
                    logits,
                    Arc::clone(&rel.dst),
                    rel.priors.as_slice(),
                );
                let prior_col = tape.leaf_copy_no_grad(&rel.priors);
                let scale = tape.hadamard(alpha, prior_col);
                agg = tape.edge_scale_scatter(
                    ms,
                    scale,
                    Some(agg),
                    None,
                    Arc::clone(&rel.dst),
                    node_count,
                );
            }
        }

        let with_bias = tape.add_row_broadcast(agg, bias);
        tape.relu(with_bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rel(
        src: Vec<usize>,
        dst: Vec<usize>,
        priors: Vec<f32>,
        node_count: usize,
    ) -> PreparedRelation {
        PreparedRelation::new(
            Arc::from(src),
            Arc::from(dst),
            Matrix::col_vector(&priors),
            node_count,
        )
    }

    fn simple_relations() -> Vec<PreparedRelation> {
        vec![
            // Relation 0: a small tree 0->1, 0->2, 1->3 with weights.
            rel(vec![0, 0, 1], vec![1, 2, 3], vec![1.0, 2.0, 4.0], 4),
            // Relation 1: a chain 1->2->3.
            rel(vec![1, 2], vec![2, 3], vec![1.0, 1.0], 4),
            // Relation 2: empty.
            rel(vec![], vec![], vec![], 4),
        ]
    }

    #[test]
    fn forward_produces_expected_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = RgatLayer::new(&mut rng, 3, 6, 4);
        assert_eq!(layer.parameter_count(), 8);
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::from_fn(4, 6, |r, c| (r + c) as f32 * 0.1));
        let params: Vec<Var> = layer
            .parameters()
            .iter()
            .map(|p| tape.leaf((*p).clone()))
            .collect();
        let out = layer.forward(&mut tape, h, &params, &simple_relations(), 4);
        assert_eq!(tape.value(out).shape(), (4, 4));
        assert!(!tape.value(out).has_non_finite());
    }

    #[test]
    fn output_is_nonnegative_due_to_relu() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = RgatLayer::new(&mut rng, 3, 5, 3);
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::from_fn(4, 5, |r, c| ((r * 3 + c) as f32).sin()));
        let params: Vec<Var> = layer
            .parameters()
            .iter()
            .map(|p| tape.leaf((*p).clone()))
            .collect();
        let out = layer.forward(&mut tape, h, &params, &simple_relations(), 4);
        assert!(tape.value(out).min() >= 0.0);
    }

    #[test]
    fn edge_priors_change_the_output() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = RgatLayer::new(&mut rng, 1, 4, 4);
        let h0 = Matrix::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.3);
        // Node 2 receives messages from nodes 0 and 1; the prior decides who
        // dominates.
        let run = |priors: Vec<f32>| -> Matrix {
            let mut tape = Tape::new();
            let h = tape.leaf(h0.clone());
            let params: Vec<Var> = layer
                .parameters()
                .iter()
                .map(|p| tape.leaf((*p).clone()))
                .collect();
            let rels = vec![rel(vec![0, 1], vec![2, 2], priors, 3)];
            let out = layer.forward(&mut tape, h, &params, &rels, 3);
            tape.value(out).clone()
        };
        let balanced = run(vec![1.0, 1.0]);
        let skewed = run(vec![100.0, 1.0]);
        assert!(
            !balanced.approx_eq(&skewed, 1e-6),
            "priors must influence attention"
        );
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = RgatLayer::new(&mut rng, 2, 4, 3);
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::from_fn(4, 4, |r, c| {
            (r * 4 + c) as f32 * 0.05 + 0.1
        }));
        let params: Vec<Var> = layer
            .parameters()
            .iter()
            .map(|p| tape.leaf((*p).clone()))
            .collect();
        // Destinations are shared within each relation so the attention
        // softmax has more than one competitor and its parameters receive a
        // gradient (a single-edge segment has a constant alpha of 1).
        let rels = vec![
            rel(vec![0, 1, 2], vec![3, 3, 3], vec![1.0, 2.0, 3.0], 4),
            rel(vec![3, 2, 1], vec![0, 0, 0], vec![1.0, 1.0, 1.0], 4),
        ];
        let out = layer.forward(&mut tape, h, &params, &rels, 4);
        let pooled = tape.mean_rows(out);
        let loss = tape.mse_loss(pooled, &[0.5; 3]);
        tape.backward(loss);
        // Projection matrices and the self/bias parameters must all receive
        // gradient; attention vectors receive gradient as a group (an
        // individual relation can be blocked by a dead ReLU).
        let r = layer.num_relations();
        for (i, &p) in params.iter().enumerate().take(r) {
            assert!(
                tape.grad(p).frobenius_norm() > 0.0,
                "W_rel[{i}] received no gradient"
            );
        }
        let attention_grad: f32 = params[r..2 * r]
            .iter()
            .map(|&p| tape.grad(p).frobenius_norm())
            .sum();
        assert!(
            attention_grad > 0.0,
            "attention vectors received no gradient"
        );
        assert!(
            tape.grad(params[2 * r]).frobenius_norm() > 0.0,
            "W_self received no gradient"
        );
        // Node features must also receive gradient.
        assert!(tape.grad(h).frobenius_norm() > 0.0);
    }

    #[test]
    fn push_and_pull_dispatch_agree_and_gradients_flow_both_ways() {
        let mut rng = StdRng::seed_from_u64(17);
        let layer = RgatLayer::new(&mut rng, 3, 6, 4);
        let h0 = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32).sin() * 0.4);
        let run = |dispatch: SparseDispatch| -> (Matrix, f32) {
            let mut tape = Tape::new();
            let h = tape.leaf(h0.clone());
            let params: Vec<Var> = layer
                .parameters()
                .iter()
                .map(|p| tape.leaf((*p).clone()))
                .collect();
            let out = layer.forward_with_dispatch(
                &mut tape,
                h,
                &params,
                &simple_relations(),
                4,
                dispatch,
            );
            let pooled = tape.mean_rows(out);
            let loss = tape.mse_loss(pooled, &[0.5; 4]);
            tape.backward(loss);
            let grad_norm: f32 = params.iter().map(|&p| tape.grad(p).frobenius_norm()).sum();
            (tape.value(out).clone(), grad_norm)
        };
        let (push_out, push_grads) = run(SparseDispatch::ForcePush);
        let (pull_out, pull_grads) = run(SparseDispatch::ForcePull);
        let (auto_out, _) = run(SparseDispatch::Auto);
        assert!(
            push_out.approx_eq(&pull_out, 1e-5),
            "push/pull dispatch diverged by {}",
            push_out.max_abs_diff(&pull_out)
        );
        assert!(auto_out.approx_eq(&push_out, 1e-5));
        assert!(push_grads > 0.0 && pull_grads > 0.0);
        assert!(
            (push_grads - pull_grads).abs() <= 1e-4 * push_grads.max(1.0),
            "gradient magnitudes diverged across dispatch: {push_grads} vs {pull_grads}"
        );
    }

    #[test]
    fn parameters_and_parameters_mut_agree_in_order() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut layer = RgatLayer::new(&mut rng, 3, 4, 4);
        let shapes: Vec<(usize, usize)> = layer.parameters().iter().map(|m| m.shape()).collect();
        let shapes_mut: Vec<(usize, usize)> =
            layer.parameters_mut().iter().map(|m| m.shape()).collect();
        assert_eq!(shapes, shapes_mut);
        assert_eq!(shapes.len(), layer.parameter_count());
    }
}
