//! Persisted model bundles: fingerprinted save/load and a directory
//! registry, so a serving process loads a trained [`TrainedModel`] from
//! disk instead of retraining at startup.
//!
//! A bundle artifact is a JSON file carrying the serialized model, the
//! platform whose dataset trained it, and a content fingerprint over the
//! serialized payload. Loads verify the format version and recompute the
//! fingerprint, so a corrupt, truncated, hand-edited or foreign file
//! degrades to a typed [`BundleError`] instead of a panic or — worse — a
//! model that silently predicts garbage. Writes go through a unique temp
//! file plus atomic rename, mirroring the dataset shard store, so a reader
//! (a server hot-loading `--model <path>`) can never observe a torn
//! artifact.
//!
//! [`ModelRegistry`] layers a content-addressed directory on top:
//! `publish` names artifacts by platform slug and fingerprint hash, and
//! `load_platform` picks the bundle serving a platform.

use crate::backend::GnnBackend;
use crate::bundle::TrainedModel;
use pg_perfsim::Platform;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format version of bundle artifacts; bump on layout changes so old files
/// degrade to a typed error instead of misparsing.
pub const BUNDLE_FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a over the serialized payload: stable across processes and
/// Rust versions (unlike `DefaultHasher`), which matters because the hash
/// is persisted inside — and addresses — on-disk artifacts.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// The on-disk form of a bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BundleArtifact {
    format_version: u32,
    platform: Platform,
    fingerprint: String,
    model: TrainedModel,
}

/// Fingerprint string over a bundle's identity: format version, training
/// platform, and the FNV-1a hash of the serialized model JSON.
fn fingerprint_of(model_json: &str, platform: Platform) -> String {
    format!(
        "v{}|{}|model={:016x}",
        BUNDLE_FORMAT_VERSION,
        platform.slug(),
        fnv1a(model_json.as_bytes())
    )
}

/// Typed failure of bundle persistence.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// The file could not be read or written.
    Io {
        /// Path of the artifact.
        path: PathBuf,
        /// Rendered OS error.
        detail: String,
    },
    /// The file is not a parseable bundle artifact (corrupt, truncated, or
    /// not JSON at all).
    Malformed {
        /// Path of the artifact.
        path: PathBuf,
        /// Rendered parse error.
        detail: String,
    },
    /// The artifact was written by an incompatible bundle layout.
    FormatVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The stored fingerprint does not match the recomputed one: the model
    /// payload was edited, truncated at a JSON boundary, or the artifact
    /// belongs to a different platform/version than it claims.
    FingerprintMismatch {
        /// Fingerprint stored in the artifact.
        stored: String,
        /// Fingerprint recomputed from the payload.
        computed: String,
    },
    /// The registry holds no bundle for the requested platform.
    NotFound {
        /// Platform requested.
        platform: Platform,
        /// Directory searched.
        dir: PathBuf,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io { path, detail } => {
                write!(f, "bundle io error at {}: {detail}", path.display())
            }
            BundleError::Malformed { path, detail } => {
                write!(f, "malformed bundle at {}: {detail}", path.display())
            }
            BundleError::FormatVersion { found, expected } => write!(
                f,
                "bundle format version {found} is not the supported {expected}"
            ),
            BundleError::FingerprintMismatch { stored, computed } => write!(
                f,
                "bundle fingerprint mismatch: stored `{stored}`, recomputed `{computed}`"
            ),
            BundleError::NotFound { platform, dir } => write!(
                f,
                "no bundle for {} under {}",
                platform.name(),
                dir.display()
            ),
        }
    }
}

impl std::error::Error for BundleError {}

/// A bundle loaded from disk: the model, its training platform, and the
/// verified fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedBundle {
    /// The trained model.
    pub model: TrainedModel,
    /// Platform whose dataset trained the model.
    pub trained_on: Platform,
    /// Content fingerprint, verified against the payload at load time.
    pub fingerprint: String,
}

impl LoadedBundle {
    /// Turn the loaded bundle into an engine backend serving its platform.
    pub fn into_backend(self) -> GnnBackend {
        GnnBackend::new(self.model, self.trained_on)
    }
}

/// Save a bundle artifact at `path` (atomic rename write), returning the
/// fingerprint it was stored under.
pub fn save_bundle(
    model: &TrainedModel,
    trained_on: Platform,
    path: &Path,
) -> Result<String, BundleError> {
    let io_err = |detail: std::io::Error| BundleError::Io {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    let model_json = serde_json::to_string(model).map_err(|e| BundleError::Malformed {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let fingerprint = fingerprint_of(&model_json, trained_on);
    let artifact = BundleArtifact {
        format_version: BUNDLE_FORMAT_VERSION,
        platform: trained_on,
        fingerprint: fingerprint.clone(),
        model: model.clone(),
    };
    let text = serde_json::to_string(&artifact).map_err(|e| BundleError::Malformed {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).map_err(io_err)?;
    }
    // Atomic publish: unique temp file in the target directory, renamed
    // over the final name, so concurrent readers never see a torn bundle.
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.unwrap_or(Path::new(".")).join(format!(
        ".tmp-bundle-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, text).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err(e)
    })?;
    Ok(fingerprint)
}

/// Load and verify a bundle artifact from `path`.
pub fn load_bundle(path: &Path) -> Result<LoadedBundle, BundleError> {
    let text = std::fs::read_to_string(path).map_err(|e| BundleError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let artifact: BundleArtifact =
        serde_json::from_str(&text).map_err(|e| BundleError::Malformed {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    if artifact.format_version != BUNDLE_FORMAT_VERSION {
        return Err(BundleError::FormatVersion {
            found: artifact.format_version,
            expected: BUNDLE_FORMAT_VERSION,
        });
    }
    let model_json =
        serde_json::to_string(&artifact.model).map_err(|e| BundleError::Malformed {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    let computed = fingerprint_of(&model_json, artifact.platform);
    if computed != artifact.fingerprint {
        return Err(BundleError::FingerprintMismatch {
            stored: artifact.fingerprint,
            computed,
        });
    }
    Ok(LoadedBundle {
        model: artifact.model,
        trained_on: artifact.platform,
        fingerprint: artifact.fingerprint,
    })
}

/// A directory of published bundles, addressed by platform slug and
/// fingerprint hash.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// A registry rooted at `dir` (created lazily on first publish).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The registry's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Publish a bundle, returning the path it was stored at. The file name
    /// embeds the platform slug and the fingerprint hash, so re-publishing
    /// the same model is idempotent and different models never collide.
    pub fn publish(
        &self,
        model: &TrainedModel,
        trained_on: Platform,
    ) -> Result<PathBuf, BundleError> {
        let model_json = serde_json::to_string(model).map_err(|e| BundleError::Malformed {
            path: self.dir.clone(),
            detail: e.to_string(),
        })?;
        let path = self.dir.join(format!(
            "{}-{:016x}.bundle.json",
            trained_on.slug(),
            fnv1a(model_json.as_bytes())
        ));
        save_bundle(model, trained_on, &path)?;
        Ok(path)
    }

    /// Load the newest verified bundle serving `platform`. Unreadable or
    /// corrupt candidates are skipped (another writer may be mid-publish of
    /// an unrelated file); if none verifies, the error of the newest
    /// candidate — or [`BundleError::NotFound`] — is returned.
    pub fn load_platform(&self, platform: Platform) -> Result<LoadedBundle, BundleError> {
        let prefix = format!("{}-", platform.slug());
        let mut candidates: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|_| BundleError::NotFound {
            platform,
            dir: self.dir.clone(),
        })?;
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(&prefix) || !name.ends_with(".bundle.json") {
                continue;
            }
            let modified = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            candidates.push((modified, path));
        }
        candidates.sort();
        let mut last_error = None;
        for (_, path) in candidates.iter().rev() {
            match load_bundle(path) {
                Ok(bundle) if bundle.trained_on == platform => return Ok(bundle),
                Ok(_) => continue, // mis-named foreign bundle; keep looking
                Err(error) => last_error = last_error.or(Some(error)),
            }
        }
        Err(last_error.unwrap_or(BundleError::NotFound {
            platform,
            dir: self.dir.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use pg_dataset::{collect_platform, DatasetScale, PipelineConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pg-model-registry-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_bundle() -> TrainedModel {
        let ds = collect_platform(
            Platform::SummitV100,
            &PipelineConfig {
                scale: DatasetScale::Fast,
                seed: 3,
                noise_sigma: 0.02,
            },
        );
        TrainedModel::fit(&ds, &TrainConfig::fast()).unwrap().0
    }

    #[test]
    fn registry_publishes_and_loads_newest() {
        let dir = temp_dir("publish");
        let registry = ModelRegistry::at(&dir);
        let bundle = tiny_bundle();
        let path = registry.publish(&bundle, Platform::SummitV100).unwrap();
        assert!(path.exists());
        // Idempotent: same model, same address.
        let again = registry.publish(&bundle, Platform::SummitV100).unwrap();
        assert_eq!(path, again);
        let loaded = registry.load_platform(Platform::SummitV100).unwrap();
        assert_eq!(loaded.model, bundle);
        assert_eq!(loaded.trained_on, Platform::SummitV100);
        // No bundle for the other platforms.
        assert!(matches!(
            registry.load_platform(Platform::CoronaMi50),
            Err(BundleError::NotFound { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = load_bundle(Path::new("/nonexistent/model.bundle.json")).unwrap_err();
        assert!(matches!(err, BundleError::Io { .. }));
        assert!(!err.to_string().is_empty());
    }
}
