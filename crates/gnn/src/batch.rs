//! Graph mini-batching: the disjoint-union encoding that lets one tape
//! forward/backward serve a whole mini-batch (training) or a whole candidate
//! set (engine serving) instead of one tape per sample.
//!
//! A batch of relational graphs is a single larger graph: node feature rows
//! are stacked, per-relation edge lists are concatenated with their `src` /
//! `dst` indices shifted by each graph's node offset, and the per-graph
//! boundaries are kept as a `B+1` offset vector. Because the union is
//! disjoint, every per-node computation (projection, attention softmax over
//! incoming edges, scatter aggregation) is unchanged — rows of the batched
//! matrices are computed exactly as they would be in a per-sample pass, so
//! batched predictions match the per-sample path to float precision. Only
//! the readout needs a batched op: `segment_mean_rows` pools each graph's
//! row range into its own embedding row.
//!
//! [`PreparedGraph`] is the once-per-sample conversion of a
//! [`RelationalGraph`]: the feature matrix is flattened, edge index lists
//! are interned as `Arc<[usize]>` (recording them on the autograd tape is a
//! refcount bump, not a copy) and the attention priors are materialised as a
//! column matrix. Training converts every sample once in `prepare`; the old
//! path re-cloned every edge list on every forward pass of every epoch.

use paragraph_core::RelationalGraph;
use pg_tensor::{Matrix, SparseMatrix};
use std::sync::Arc;

/// A relation's edges as a shared CSR pattern over the graph's node set
/// (rows = destinations, cols = sources), with the attention priors
/// permuted into CSR order once at build time. This is everything the
/// pull-mode (SpMM) dispatch branch records on the tape.
#[derive(Debug, Clone)]
pub struct CsrRelation {
    /// Shared CSR adjacency; `Arc` so recording it on a tape op is a
    /// refcount bump.
    pub adj: Arc<SparseMatrix>,
    /// Attention priors in CSR order (`E x 1`).
    pub priors_csr: Matrix,
}

/// One relation's edges, ready for the tape: shared index slices plus the
/// attention priors as an `E x 1` column (its buffer doubles as the prior
/// slice for the segment softmax), and a CSR encoding of the same edges
/// for pull-mode dispatch. Built once per prepared graph / batch via
/// [`PreparedRelation::new`].
#[derive(Debug, Clone)]
pub struct PreparedRelation {
    /// Source node per edge.
    pub src: Arc<[usize]>,
    /// Destination node per edge (also the softmax segment id).
    pub dst: Arc<[usize]>,
    /// Attention priors per edge (`E x 1`).
    pub priors: Matrix,
    /// CSR view of the same edges (kept consistent with `src`/`dst` by
    /// construction, hence not public).
    csr: CsrRelation,
}

impl PreparedRelation {
    /// Intern a relation's edge list and build its CSR encoding over a
    /// `node_count`-node graph. `priors` is the `E x 1` prior column in
    /// edge-list order; its CSR permutation is materialised here so the
    /// hot path never chases the permutation.
    pub fn new(src: Arc<[usize]>, dst: Arc<[usize]>, priors: Matrix, node_count: usize) -> Self {
        let adj = Arc::new(SparseMatrix::from_edges(node_count, node_count, &src, &dst));
        let priors_csr = Matrix::col_vector(&adj.permute_to_csr(priors.as_slice()));
        Self {
            src,
            dst,
            priors,
            csr: CsrRelation { adj, priors_csr },
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when the relation has no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// The CSR encoding of this relation's edges.
    pub fn csr(&self) -> &CsrRelation {
        &self.csr
    }
}

/// A [`RelationalGraph`] converted once into the model's tensor-ready form.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    /// `node_count x NODE_FEATURE_DIM` feature matrix.
    pub features: Matrix,
    /// One prepared edge list per relation.
    pub relations: Vec<PreparedRelation>,
    /// Number of nodes.
    pub node_count: usize,
}

impl PreparedGraph {
    /// Convert a relational graph: flatten features, intern edge lists and
    /// materialise attention priors. Do this once per sample, not per
    /// forward pass.
    pub fn from_relational(graph: &RelationalGraph) -> Self {
        debug_assert_eq!(
            graph.features.len(),
            graph.node_count,
            "one feature row per node"
        );
        let feat_dim = graph
            .features
            .first()
            .map_or(paragraph_core::NODE_FEATURE_DIM, Vec::len);
        let mut data = Vec::with_capacity(graph.features.len() * feat_dim);
        for row in &graph.features {
            data.extend_from_slice(row);
        }
        let features = Matrix::from_vec(graph.features.len(), feat_dim, data);
        let relations = graph
            .relations
            .iter()
            .enumerate()
            .map(|(idx, rel)| {
                PreparedRelation::new(
                    Arc::from(rel.src.as_slice()),
                    Arc::from(rel.dst.as_slice()),
                    Matrix::col_vector(&graph.attention_priors(idx)),
                    graph.node_count,
                )
            })
            .collect();
        Self {
            features,
            relations,
            node_count: graph.node_count,
        }
    }

    /// Number of relations (edge types).
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }
}

/// The disjoint union of a mini-batch of prepared graphs plus their side
/// features — everything one batched forward pass needs.
#[derive(Debug, Clone)]
pub struct BatchedGraph {
    /// Stacked node features (`total_nodes x F`).
    pub features: Matrix,
    /// Concatenated, offset-shifted edge lists per relation.
    pub relations: Vec<PreparedRelation>,
    /// `B + 1` node offsets: graph `g` owns rows `offsets[g]..offsets[g+1]`.
    pub offsets: Arc<[usize]>,
    /// Scaled `(teams, threads)` side features (`B x 2`).
    pub sides: Matrix,
}

impl BatchedGraph {
    /// Batch a set of prepared graphs with their scaled side features.
    ///
    /// # Panics
    /// Panics when `items` is empty or the graphs disagree on the number of
    /// relations or the feature dimension.
    pub fn build(items: &[(&PreparedGraph, [f32; 2])]) -> Self {
        assert!(!items.is_empty(), "cannot batch zero graphs");
        if let [(graph, side)] = items {
            return Self::single(graph, *side);
        }
        let num_relations = items[0].0.num_relations();
        let feat_dim = items[0].0.features.cols();
        let mut offsets = Vec::with_capacity(items.len() + 1);
        offsets.push(0usize);
        let mut total_nodes = 0usize;
        for (graph, _) in items {
            assert_eq!(
                graph.num_relations(),
                num_relations,
                "all graphs in a batch must share the relation vocabulary"
            );
            assert_eq!(
                graph.features.cols(),
                feat_dim,
                "all graphs in a batch must share the feature dimension"
            );
            total_nodes += graph.node_count;
            offsets.push(total_nodes);
        }

        let mut feature_data = Vec::with_capacity(total_nodes * feat_dim);
        let mut sides = Vec::with_capacity(items.len() * 2);
        for (graph, side) in items {
            feature_data.extend_from_slice(graph.features.as_slice());
            sides.extend_from_slice(side);
        }
        let features = Matrix::from_vec(total_nodes, feat_dim, feature_data);

        let relations = (0..num_relations)
            .map(|rel_idx| {
                let total_edges: usize = items
                    .iter()
                    .map(|(graph, _)| graph.relations[rel_idx].len())
                    .sum();
                let mut src = Vec::with_capacity(total_edges);
                let mut dst = Vec::with_capacity(total_edges);
                let mut priors = Vec::with_capacity(total_edges);
                for ((graph, _), &offset) in items.iter().zip(offsets.iter()) {
                    let rel = &graph.relations[rel_idx];
                    src.extend(rel.src.iter().map(|&s| s + offset));
                    dst.extend(rel.dst.iter().map(|&d| d + offset));
                    priors.extend_from_slice(rel.priors.as_slice());
                }
                PreparedRelation::new(
                    Arc::from(src),
                    Arc::from(dst),
                    Matrix::col_vector(&priors),
                    total_nodes,
                )
            })
            .collect();

        Self {
            features,
            relations,
            offsets: Arc::from(offsets),
            sides: Matrix::from_vec(items.len(), 2, sides),
        }
    }

    /// Batch of one: shares the prepared graph's interned edge lists instead
    /// of re-shifting them (offset zero), so single-sample serving pays one
    /// feature copy and nothing else.
    pub fn single(graph: &PreparedGraph, side: [f32; 2]) -> Self {
        Self {
            features: graph.features.clone(),
            relations: graph.relations.clone(),
            offsets: Arc::from(vec![0, graph.node_count]),
            sides: Matrix::from_vec(1, 2, side.to_vec()),
        }
    }

    /// Number of graphs in the batch.
    pub fn batch_size(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total node count of the disjoint union.
    pub fn total_nodes(&self) -> usize {
        *self.offsets.last().expect("offsets are never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_core::{build_default, to_relational};
    use pg_frontend::parse;

    fn graph(src: &str) -> PreparedGraph {
        let ast = parse(src).unwrap();
        PreparedGraph::from_relational(&to_relational(&build_default(&ast)))
    }

    fn two_graphs() -> (PreparedGraph, PreparedGraph) {
        (
            graph("void f(float *a) { for (int i = 0; i < 16; i++) { a[i] = 2.0; } }"),
            graph(
                "void g(float *a, float *b) { for (int i = 0; i < 64; i++) { if (i < 4) { a[i] = b[i]; } } }",
            ),
        )
    }

    #[test]
    fn prepared_graph_matches_relational_shape() {
        let g = graph("void f(float *a) { a[0] = 1.0; }");
        assert_eq!(g.features.rows(), g.node_count);
        assert_eq!(g.num_relations(), paragraph_core::EdgeType::COUNT);
        for rel in &g.relations {
            assert_eq!(rel.src.len(), rel.dst.len());
            assert_eq!(rel.priors.rows(), rel.len());
        }
    }

    #[test]
    fn disjoint_union_shifts_edges_and_tracks_offsets() {
        let (a, b) = two_graphs();
        let batch = BatchedGraph::build(&[(&a, [0.1, 0.2]), (&b, [0.3, 0.4])]);
        assert_eq!(batch.batch_size(), 2);
        assert_eq!(batch.total_nodes(), a.node_count + b.node_count);
        assert_eq!(
            batch.offsets.as_ref(),
            &[0, a.node_count, batch.total_nodes()]
        );
        assert_eq!(batch.features.rows(), batch.total_nodes());
        assert_eq!(batch.sides.shape(), (2, 2));
        assert_eq!(batch.sides.row(1), &[0.3, 0.4]);

        for (rel_idx, rel) in batch.relations.iter().enumerate() {
            let (ra, rb) = (&a.relations[rel_idx], &b.relations[rel_idx]);
            assert_eq!(rel.len(), ra.len() + rb.len());
            // First graph's edges are unshifted, second graph's shifted.
            assert_eq!(&rel.src[..ra.len()], ra.src.as_ref());
            for (got, want) in rel.src[ra.len()..].iter().zip(rb.src.iter()) {
                assert_eq!(*got, want + a.node_count);
            }
            // Every edge stays inside its graph's node range.
            for (&s, &d) in rel.src.iter().zip(rel.dst.iter()) {
                let seg_s = (s >= a.node_count) as usize;
                let seg_d = (d >= a.node_count) as usize;
                assert_eq!(seg_s, seg_d, "edge crosses graph boundary");
            }
            // Priors concatenate unchanged.
            assert_eq!(&rel.priors.as_slice()[..ra.len()], ra.priors.as_slice());
        }
    }

    #[test]
    fn batch_of_one_shares_interned_indices() {
        let (a, _) = two_graphs();
        let batch = BatchedGraph::build(&[(&a, [0.5, 0.5])]);
        assert_eq!(batch.batch_size(), 1);
        // The single-graph path must not copy the index slices.
        assert!(Arc::ptr_eq(&batch.relations[0].src, &a.relations[0].src));
        assert_eq!(batch.total_nodes(), a.node_count);
    }

    #[test]
    #[should_panic(expected = "zero graphs")]
    fn empty_batch_panics() {
        let _ = BatchedGraph::build(&[]);
    }

    #[test]
    fn prepared_relations_carry_consistent_csr() {
        let (a, b) = two_graphs();
        let batch = BatchedGraph::build(&[(&a, [0.1, 0.2]), (&b, [0.3, 0.4])]);
        for rel in &batch.relations {
            let csr = rel.csr();
            assert_eq!(csr.adj.nnz(), rel.len());
            assert_eq!(csr.adj.rows(), batch.total_nodes());
            assert_eq!(csr.adj.cols(), batch.total_nodes());
            assert_eq!(csr.priors_csr.shape(), (rel.len(), 1));
            // Every CSR position maps back to its original edge, priors
            // permuted alongside.
            for (pos, (s, d)) in csr.adj.to_edge_list().into_iter().enumerate() {
                let e = csr.adj.perm()[pos];
                assert_eq!((s, d), (rel.src[e], rel.dst[e]));
                assert_eq!(csr.priors_csr.get(pos, 0), rel.priors.get(e, 0));
            }
        }
    }
}
