//! Evaluation views over validation predictions, matching the paper's
//! figures: relative error per runtime bin (Figure 4) and mean error rate per
//! application (Figure 6).

use crate::train::PredictionRecord;
use pg_tensor::metrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Relative error of one runtime bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinError {
    /// Human-readable bin label (e.g. `0-10`, `100 <`).
    pub label: String,
    /// Inclusive lower bound of the bin (ms).
    pub low_ms: f32,
    /// Exclusive upper bound of the bin (ms); `f32::INFINITY` for the last bin.
    pub high_ms: f32,
    /// Number of validation samples in the bin.
    pub count: usize,
    /// Mean relative error (|err| / runtime range) of the bin.
    pub relative_error: f32,
}

/// Group validation predictions into `num_bins` equally wide runtime bins
/// plus a final open-ended bin, and compute the mean relative error of each,
/// exactly like Figure 4 (which uses 10-second bins plus a `100 <` bin).
pub fn binned_relative_error(
    records: &[PredictionRecord],
    bin_width_ms: f32,
    num_bins: usize,
) -> Vec<BinError> {
    let actual: Vec<f32> = records.iter().map(|r| r.actual_ms).collect();
    let range = metrics::value_range(&actual).max(f32::EPSILON);

    let mut bins: Vec<(Vec<f32>, Vec<f32>)> = vec![(Vec::new(), Vec::new()); num_bins + 1];
    for r in records {
        let idx = if bin_width_ms <= 0.0 {
            0
        } else {
            ((r.actual_ms / bin_width_ms).floor() as usize).min(num_bins)
        };
        bins[idx].0.push(r.predicted_ms);
        bins[idx].1.push(r.actual_ms);
    }

    bins.into_iter()
        .enumerate()
        .map(|(i, (pred, act))| {
            let low = i as f32 * bin_width_ms;
            let (high, label) = if i == num_bins {
                (f32::INFINITY, format!("{} <", format_ms(low)))
            } else {
                (
                    (i + 1) as f32 * bin_width_ms,
                    format!(
                        "{}-{}",
                        format_ms(low),
                        format_ms((i + 1) as f32 * bin_width_ms)
                    ),
                )
            };
            BinError {
                label,
                low_ms: low,
                high_ms: high,
                count: pred.len(),
                relative_error: metrics::mean_relative_error(&pred, &act, range),
            }
        })
        .collect()
}

fn format_ms(ms: f32) -> String {
    if ms >= 1000.0 {
        format!("{:.0}s", ms / 1000.0)
    } else {
        format!("{ms:.0}ms")
    }
}

/// Mean relative error per application (Figure 6), sorted by application name.
pub fn per_application_error(records: &[PredictionRecord]) -> Vec<(String, f32, usize)> {
    let actual: Vec<f32> = records.iter().map(|r| r.actual_ms).collect();
    let range = metrics::value_range(&actual).max(f32::EPSILON);
    let mut groups: BTreeMap<String, (Vec<f32>, Vec<f32>)> = BTreeMap::new();
    for r in records {
        let entry = groups.entry(r.application.clone()).or_default();
        entry.0.push(r.predicted_ms);
        entry.1.push(r.actual_ms);
    }
    groups
        .into_iter()
        .map(|(app, (pred, act))| {
            let err = metrics::mean_relative_error(&pred, &act, range);
            (app, err, pred.len())
        })
        .collect()
}

/// Mean relative error per variant (not in the paper, but a useful
/// diagnostic for the best-variant selection use case).
pub fn per_variant_error(records: &[PredictionRecord]) -> Vec<(String, f32, usize)> {
    let actual: Vec<f32> = records.iter().map(|r| r.actual_ms).collect();
    let range = metrics::value_range(&actual).max(f32::EPSILON);
    let mut groups: BTreeMap<String, (Vec<f32>, Vec<f32>)> = BTreeMap::new();
    for r in records {
        let entry = groups.entry(r.variant.clone()).or_default();
        entry.0.push(r.predicted_ms);
        entry.1.push(r.actual_ms);
    }
    groups
        .into_iter()
        .map(|(variant, (pred, act))| {
            let err = metrics::mean_relative_error(&pred, &act, range);
            (variant, err, pred.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(app: &str, variant: &str, actual: f32, predicted: f32) -> PredictionRecord {
        PredictionRecord {
            id: 0,
            application: app.to_string(),
            variant: variant.to_string(),
            actual_ms: actual,
            predicted_ms: predicted,
        }
    }

    #[test]
    fn bins_partition_all_records() {
        let records = vec![
            record("MM", "gpu", 5.0, 6.0),
            record("MM", "gpu", 15.0, 14.0),
            record("MM", "gpu", 95.0, 90.0),
            record("MM", "gpu", 250.0, 240.0),
        ];
        let bins = binned_relative_error(&records, 10.0, 10);
        assert_eq!(bins.len(), 11);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, records.len());
        // The 250 ms record lands in the open-ended bin.
        assert_eq!(bins.last().unwrap().count, 1);
        assert!(bins.last().unwrap().label.contains('<'));
    }

    #[test]
    fn per_bin_error_uses_global_range() {
        let records = vec![
            record("MM", "gpu", 0.0, 10.0),
            record("MM", "gpu", 100.0, 100.0),
        ];
        let bins = binned_relative_error(&records, 10.0, 10);
        // First bin: |0-10| / range(100) = 0.1.
        assert!((bins[0].relative_error - 0.1).abs() < 1e-6);
        assert_eq!(bins[0].count, 1);
    }

    #[test]
    fn per_application_groups_and_sorts() {
        let records = vec![
            record("Transpose", "gpu", 10.0, 12.0),
            record("MM", "gpu", 50.0, 45.0),
            record("MM", "gpu", 110.0, 100.0),
        ];
        let per_app = per_application_error(&records);
        assert_eq!(per_app.len(), 2);
        assert_eq!(per_app[0].0, "MM");
        assert_eq!(per_app[0].2, 2);
        assert_eq!(per_app[1].0, "Transpose");
        assert!(per_app.iter().all(|(_, err, _)| *err >= 0.0));
    }

    #[test]
    fn per_variant_groups() {
        let records = vec![
            record("MM", "gpu", 10.0, 12.0),
            record("MM", "gpu_mem", 50.0, 45.0),
        ];
        let per_variant = per_variant_error(&records);
        assert_eq!(per_variant.len(), 2);
    }

    #[test]
    fn empty_records_yield_empty_groups() {
        assert!(per_application_error(&[]).is_empty());
        let bins = binned_relative_error(&[], 10.0, 5);
        assert!(bins.iter().all(|b| b.count == 0 && b.relative_error == 0.0));
    }
}
