//! The trained RGAT bundle as a `pg-engine` backend.
//!
//! Lives here (not in `pg-engine`) so the engine facade stays below every
//! model crate in the dependency graph: `pg-gnn` trains on `pg-dataset`,
//! and `pg-dataset` routes its measurement through `pg-engine` — a
//! `pg-engine → pg-gnn` edge would close that cycle.

use crate::bundle::TrainedModel;
use paragraph_core::RelationalGraph;
use pg_advisor::KernelInstance;
use pg_engine::{EngineError, PredictionContext, RuntimePredictor};
use pg_perfsim::Platform;
use std::sync::Arc;

/// A trained ParaGraph RGAT model as a backend.
pub struct GnnBackend {
    bundle: TrainedModel,
    trained_on: Platform,
}

impl GnnBackend {
    /// Serve predictions from a trained bundle. `trained_on` is the
    /// platform whose dataset fitted the model; predictions are refused
    /// (with [`EngineError::BackendUnavailable`]) when the engine serves a
    /// different platform, since a per-platform regressor extrapolates
    /// silently wrong numbers elsewhere.
    pub fn new(bundle: TrainedModel, trained_on: Platform) -> Self {
        Self { bundle, trained_on }
    }

    /// The bundle this backend serves.
    pub fn bundle(&self) -> &TrainedModel {
        &self.bundle
    }

    /// Platform whose dataset trained the bundle.
    pub fn trained_on(&self) -> Platform {
        self.trained_on
    }
}

impl RuntimePredictor for GnnBackend {
    fn name(&self) -> &str {
        "gnn"
    }

    fn predict(
        &self,
        ctx: &PredictionContext<'_>,
        instance: &KernelInstance,
    ) -> Result<f64, EngineError> {
        if ctx.platform() != self.trained_on {
            return Err(EngineError::BackendUnavailable(format!(
                "GNN model was trained on {} but the engine serves {}",
                self.trained_on.name(),
                ctx.platform().name()
            )));
        }
        let graph = ctx.relational_graph(
            &instance.source,
            self.bundle.representation,
            instance.launch.teams,
            instance.launch.threads,
        )?;
        Ok(f64::from(self.bundle.predict_relational(
            &graph,
            instance.launch.teams,
            instance.launch.threads,
        )))
    }

    /// Batched override: the whole candidate set becomes one (chunked)
    /// disjoint-union forward pass instead of one tape per candidate. Graph
    /// construction still goes through the engine's memoized frontend;
    /// candidates whose source fails the frontend report their own error
    /// while the rest of the batch proceeds.
    fn predict_batch(
        &self,
        ctx: &PredictionContext<'_>,
        instances: &[KernelInstance],
    ) -> Vec<Result<f64, EngineError>> {
        if ctx.platform() != self.trained_on {
            let err = EngineError::BackendUnavailable(format!(
                "GNN model was trained on {} but the engine serves {}",
                self.trained_on.name(),
                ctx.platform().name()
            ));
            return instances.iter().map(|_| Err(err.clone())).collect();
        }
        // Resolve graphs through the frontend cache, keeping per-candidate
        // errors in place.
        let mut results: Vec<Result<f64, EngineError>> = Vec::with_capacity(instances.len());
        let mut ok_indices: Vec<usize> = Vec::with_capacity(instances.len());
        let mut graphs: Vec<Arc<RelationalGraph>> = Vec::with_capacity(instances.len());
        for (idx, instance) in instances.iter().enumerate() {
            match ctx.relational_graph(
                &instance.source,
                self.bundle.representation,
                instance.launch.teams,
                instance.launch.threads,
            ) {
                Ok(graph) => {
                    ok_indices.push(idx);
                    graphs.push(graph);
                    results.push(Ok(0.0)); // placeholder, filled below
                }
                Err(error) => results.push(Err(error)),
            }
        }
        let items: Vec<(&RelationalGraph, u64, u64)> = ok_indices
            .iter()
            .zip(graphs.iter())
            .map(|(&idx, graph)| {
                let launch = instances[idx].launch;
                (graph.as_ref(), launch.teams, launch.threads)
            })
            .collect();
        for (&idx, prediction) in ok_indices
            .iter()
            .zip(self.bundle.predict_relational_batch(&items))
        {
            results[idx] = Ok(f64::from(prediction));
        }
        results
    }
}
