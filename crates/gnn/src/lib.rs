//! # pg-gnn
//!
//! The machine-learning half of the ParaGraph reproduction: a Relational
//! Graph Attention Network (RGAT) over the ParaGraph representation, the
//! full runtime-prediction model of the paper (three RGAT convolutions, a
//! side-feature embedding of the launch configuration, and a fully connected
//! head), the mini-batch Adam training loop and the evaluation metrics used
//! by the paper's tables and figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod batch;
pub mod bundle;
pub mod metrics;
pub mod model;
pub mod reference;
pub mod registry;
pub mod rgat;
pub mod train;

pub use backend::GnnBackend;
pub use batch::{BatchedGraph, CsrRelation, PreparedGraph, PreparedRelation};
pub use bundle::TrainedModel;
pub use metrics::{binned_relative_error, per_application_error, per_variant_error, BinError};
pub use model::{GraphSample, ModelConfig, ParaGraphModel};
pub use registry::{
    load_bundle, save_bundle, BundleError, LoadedBundle, ModelRegistry, BUNDLE_FORMAT_VERSION,
};
pub use rgat::{RgatLayer, SparseDispatch};
pub use train::{
    evaluate, prepare, summarize, train, train_prepared, EpochStats, PredictionRecord,
    PreparedDataset, SampleMeta, TrainConfig, TrainError, TrainedOutcome, TrainingHistory,
};
