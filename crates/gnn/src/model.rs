//! The ParaGraph runtime-prediction model (Section IV-B of the paper):
//! three RGAT convolution layers to embed the graph, a fully connected
//! embedding of the two launch-configuration side features (number of teams
//! and threads), and a fully connected head that maps the concatenation of
//! both embeddings to the predicted runtime.

use crate::batch::{BatchedGraph, PreparedGraph};
use crate::rgat::{RgatLayer, SparseDispatch};
use paragraph_core::{RelationalGraph, NODE_FEATURE_DIM};
use pg_tensor::{init, Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hyper-parameters of the ParaGraph model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Node-feature input dimension.
    pub input_dim: usize,
    /// Hidden dimension of the RGAT layers.
    pub hidden_dim: usize,
    /// Number of RGAT convolution layers (the paper uses three).
    pub num_layers: usize,
    /// Number of edge types (relations).
    pub num_relations: usize,
    /// Dimension of the side-feature (teams, threads) embedding.
    pub side_dim: usize,
    /// Dimension of the fully connected head.
    pub head_dim: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            input_dim: NODE_FEATURE_DIM,
            hidden_dim: 24,
            num_layers: 3,
            num_relations: paragraph_core::EdgeType::COUNT,
            side_dim: 8,
            head_dim: 32,
        }
    }
}

impl ModelConfig {
    /// A smaller configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            hidden_dim: 8,
            num_layers: 2,
            side_dim: 4,
            head_dim: 8,
            ..Self::default()
        }
    }
}

/// A fully connected layer (weights + bias).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DenseLayer {
    /// Weight matrix (`in x out`).
    pub w: Matrix,
    /// Bias (`1 x out`).
    pub b: Matrix,
}

impl DenseLayer {
    fn new(rng: &mut StdRng, input: usize, output: usize) -> Self {
        Self {
            w: init::xavier_uniform(rng, input, output),
            b: Matrix::zeros(1, output),
        }
    }
}

/// The full ParaGraph runtime-prediction model.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ParaGraphModel {
    /// Hyper-parameters.
    pub config: ModelConfig,
    /// Graph convolution layers.
    pub rgat: Vec<RgatLayer>,
    /// Side-feature (teams, threads) embedding layer.
    pub side: DenseLayer,
    /// First fully connected head layer.
    pub head1: DenseLayer,
    /// Output layer producing the scalar runtime prediction.
    pub head2: DenseLayer,
}

/// One sample presented to the model: a relational graph, the scaled side
/// features and the encoded target.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSample {
    /// GNN-ready graph.
    pub graph: RelationalGraph,
    /// Scaled (teams, threads) side features.
    pub side: [f32; 2],
    /// Encoded (scaled) runtime target.
    pub target: f32,
}

impl ParaGraphModel {
    /// Create a model with freshly initialised parameters.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rgat = Vec::with_capacity(config.num_layers);
        for layer in 0..config.num_layers {
            let input = if layer == 0 {
                config.input_dim
            } else {
                config.hidden_dim
            };
            rgat.push(RgatLayer::new(
                &mut rng,
                config.num_relations,
                input,
                config.hidden_dim,
            ));
        }
        let side = DenseLayer::new(&mut rng, 2, config.side_dim);
        let head1 = DenseLayer::new(
            &mut rng,
            config.hidden_dim + config.side_dim,
            config.head_dim,
        );
        let head2 = DenseLayer::new(&mut rng, config.head_dim, 1);
        Self {
            config,
            rgat,
            side,
            head1,
            head2,
        }
    }

    /// Borrow every trainable matrix in a stable order.
    pub fn parameters(&self) -> Vec<&Matrix> {
        let mut out = Vec::new();
        for layer in &self.rgat {
            out.extend(layer.parameters());
        }
        out.push(&self.side.w);
        out.push(&self.side.b);
        out.push(&self.head1.w);
        out.push(&self.head1.b);
        out.push(&self.head2.w);
        out.push(&self.head2.b);
        out
    }

    /// Mutably borrow every trainable matrix, in the same order as
    /// [`ParaGraphModel::parameters`].
    pub fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = Vec::new();
        for layer in &mut self.rgat {
            out.extend(layer.parameters_mut());
        }
        out.push(&mut self.side.w);
        out.push(&mut self.side.b);
        out.push(&mut self.head1.w);
        out.push(&mut self.head1.b);
        out.push(&mut self.head2.w);
        out.push(&mut self.head2.b);
        out
    }

    /// Total number of scalar parameters (for reporting).
    pub fn parameter_scalar_count(&self) -> usize {
        self.parameters().iter().map(|m| m.len()).sum()
    }

    /// Register every trainable matrix as a tape leaf (copying into the
    /// tape's retained slot buffers), in the order of
    /// [`ParaGraphModel::parameters`]. One call serves a whole batch — the
    /// old execution path re-cloned all parameters once per sample.
    fn register_parameters(&self, tape: &mut Tape) -> Vec<Var> {
        self.parameters()
            .into_iter()
            .map(|p| tape.leaf_copy(p))
            .collect()
    }

    /// Run a forward pass over a batched (disjoint-union) graph, producing a
    /// `B x 1` prediction column, the batch-mean MSE loss when `targets` is
    /// given, and the parameter leaves (aligned with
    /// [`ParaGraphModel::parameters`]) for gradient readout.
    ///
    /// Every per-node and per-edge computation is row-identical to a
    /// per-sample pass over each member graph, so batched predictions match
    /// the per-sample path to float precision; the batch-mean loss equals
    /// the mean of per-sample losses, and its gradients equal the mean of
    /// per-sample gradients.
    pub fn forward_batched(
        &self,
        tape: &mut Tape,
        batch: &BatchedGraph,
        targets: Option<&[f32]>,
    ) -> (Var, Option<Var>, Vec<Var>) {
        self.forward_batched_with_dispatch(tape, batch, targets, SparseDispatch::Auto)
    }

    /// [`ParaGraphModel::forward_batched`] with an explicit push/pull
    /// dispatch override for every RGAT layer (testing and benchmarking;
    /// production callers use the density-based `Auto` default).
    pub fn forward_batched_with_dispatch(
        &self,
        tape: &mut Tape,
        batch: &BatchedGraph,
        targets: Option<&[f32]>,
        dispatch: SparseDispatch,
    ) -> (Var, Option<Var>, Vec<Var>) {
        let param_vars = self.register_parameters(tape);
        let n = batch.total_nodes();

        // Input features are constants: no-grad leaf, so backward prunes the
        // whole d(features) branch of the first layer.
        let mut h = tape.leaf_copy_no_grad(&batch.features);

        // RGAT stack over the disjoint union. Each layer's forward pass is
        // timed into the `gnn_forward` stage histogram; with observability
        // disabled the timer is one atomic load and no clock read.
        let mut offset = 0;
        for layer in &self.rgat {
            let timer = pg_obs::obs().timer(pg_obs::Stage::GnnForward);
            let count = layer.parameter_count();
            let layer_params = &param_vars[offset..offset + count];
            h = layer.forward_with_dispatch(tape, h, layer_params, &batch.relations, n, dispatch);
            offset += count;
            timer.finish();
        }

        // Readout: per-graph mean over that graph's node rows.
        let graph_embedding = tape.segment_mean_rows_shared(h, Arc::clone(&batch.offsets));

        // Side features (teams, threads), one row per graph.
        let side_w = param_vars[offset];
        let side_b = param_vars[offset + 1];
        let head1_w = param_vars[offset + 2];
        let head1_b = param_vars[offset + 3];
        let head2_w = param_vars[offset + 4];
        let head2_b = param_vars[offset + 5];

        let side_input = tape.leaf_copy_no_grad(&batch.sides);
        let side_proj = tape.matmul(side_input, side_w);
        let side_proj = tape.add_row_broadcast(side_proj, side_b);
        let side_embedding = tape.relu(side_proj);

        // Concatenate and run the head.
        let z = tape.concat_cols(graph_embedding, side_embedding);
        let h1 = tape.matmul(z, head1_w);
        let h1 = tape.add_row_broadcast(h1, head1_b);
        let h1 = tape.relu(h1);
        let out = tape.matmul(h1, head2_w);
        let prediction = tape.add_row_broadcast(out, head2_b);

        let loss = targets.map(|t| {
            assert_eq!(t.len(), batch.batch_size(), "one target per graph");
            tape.mse_loss(prediction, t)
        });
        (prediction, loss, param_vars)
    }

    /// Predict the encoded runtimes of a whole batch on a caller-owned tape
    /// (the tape is reset first, so one tape amortises across calls).
    pub fn predict_batched(&self, tape: &mut Tape, batch: &BatchedGraph) -> Vec<f32> {
        self.predict_batched_with_dispatch(tape, batch, SparseDispatch::Auto)
    }

    /// [`ParaGraphModel::predict_batched`] with an explicit push/pull
    /// dispatch override.
    pub fn predict_batched_with_dispatch(
        &self,
        tape: &mut Tape,
        batch: &BatchedGraph,
        dispatch: SparseDispatch,
    ) -> Vec<f32> {
        tape.reset();
        let (prediction, _, _) = self.forward_batched_with_dispatch(tape, batch, None, dispatch);
        tape.value(prediction).col(0)
    }

    /// Predict the encoded runtime of one prepared graph on a caller-owned
    /// tape.
    pub fn predict_prepared(&self, tape: &mut Tape, graph: &PreparedGraph, side: [f32; 2]) -> f32 {
        self.predict_batched(tape, &BatchedGraph::single(graph, side))[0]
    }

    /// Predict the encoded runtime of one sample (inference only).
    pub fn predict(&self, sample: &GraphSample) -> f32 {
        self.predict_graph(&sample.graph, sample.side)
    }

    /// Predict the encoded runtime from a borrowed graph and already-scaled
    /// side features, without building a [`GraphSample`].
    pub fn predict_graph(&self, graph: &RelationalGraph, side: [f32; 2]) -> f32 {
        let prepared = PreparedGraph::from_relational(graph);
        let mut tape = Tape::new();
        self.predict_prepared(&mut tape, &prepared, side)
    }

    /// Compute the loss and parameter gradients for one sample.
    /// The gradients are aligned with [`ParaGraphModel::parameters`].
    ///
    /// This is the per-sample reference path: training and serving use
    /// [`ParaGraphModel::forward_batched`], and the golden-equivalence tests
    /// pin the batched results against this one.
    pub fn loss_and_gradients(&self, sample: &GraphSample) -> (f32, Vec<Matrix>) {
        let prepared = PreparedGraph::from_relational(&sample.graph);
        let batch = BatchedGraph::single(&prepared, sample.side);
        let mut tape = Tape::new();
        let (_, loss, param_vars) = self.forward_batched(&mut tape, &batch, Some(&[sample.target]));
        let loss = loss.expect("loss requested");
        let timer = pg_obs::obs().timer(pg_obs::Stage::GnnBackward);
        tape.backward(loss);
        timer.finish();
        let grads = param_vars.iter().map(|&v| tape.grad(v)).collect();
        (tape.value(loss).get(0, 0), grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_core::{build_default, to_relational};
    use pg_frontend::parse;

    fn sample_from_source(src: &str, side: [f32; 2], target: f32) -> GraphSample {
        let ast = parse(src).unwrap();
        let graph = to_relational(&build_default(&ast));
        GraphSample {
            graph,
            side,
            target,
        }
    }

    fn small_sample(target: f32) -> GraphSample {
        sample_from_source(
            "void f(float *a) { for (int i = 0; i < 64; i++) { a[i] = a[i] * 2.0 + 1.0; } }",
            [0.3, 0.7],
            target,
        )
    }

    #[test]
    fn model_has_expected_parameter_structure() {
        let model = ParaGraphModel::new(ModelConfig::default(), 1);
        // 3 RGAT layers * (8 W + 8 a + W_self + bias) + side(2) + head1(2) + head2(2).
        assert_eq!(model.parameters().len(), 3 * 18 + 6);
        assert!(model.parameter_scalar_count() > 1000);
        let shapes: Vec<_> = model.parameters().iter().map(|m| m.shape()).collect();
        let mut model2 = model.clone();
        let shapes_mut: Vec<_> = model2.parameters_mut().iter().map(|m| m.shape()).collect();
        assert_eq!(shapes, shapes_mut);
    }

    #[test]
    fn prediction_is_finite_and_deterministic() {
        let model = ParaGraphModel::new(ModelConfig::tiny(), 7);
        let sample = small_sample(0.4);
        let a = model.predict(&sample);
        let b = model.predict(&sample);
        assert!(a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_have_parameter_shapes_and_are_nonzero() {
        let model = ParaGraphModel::new(ModelConfig::tiny(), 3);
        let sample = small_sample(0.9);
        let (loss, grads) = model.loss_and_gradients(&sample);
        assert!(loss.is_finite() && loss >= 0.0);
        assert_eq!(grads.len(), model.parameters().len());
        for (g, p) in grads.iter().zip(model.parameters()) {
            assert_eq!(g.shape(), p.shape());
        }
        let total_grad_norm: f32 = grads.iter().map(|g| g.frobenius_norm()).sum();
        assert!(
            total_grad_norm > 0.0,
            "at least some gradients must be non-zero"
        );
    }

    #[test]
    fn different_graphs_produce_different_predictions() {
        let model = ParaGraphModel::new(ModelConfig::tiny(), 5);
        let a = small_sample(0.1);
        let b = sample_from_source(
            "void g(float *a, float *b) { for (int i = 0; i < 2048; i++) { for (int j = 0; j < 2048; j++) { a[i * 2048 + j] = b[j * 2048 + i]; } } }",
            [0.3, 0.7],
            0.1,
        );
        assert_ne!(model.predict(&a), model.predict(&b));
    }

    #[test]
    fn side_features_influence_the_prediction() {
        let model = ParaGraphModel::new(ModelConfig::tiny(), 5);
        let mut few_threads = small_sample(0.5);
        few_threads.side = [0.0, 0.05];
        let mut many_threads = small_sample(0.5);
        many_threads.side = [1.0, 1.0];
        assert_ne!(model.predict(&few_threads), model.predict(&many_threads));
    }

    #[test]
    fn single_sample_overfits_with_repeated_steps() {
        use pg_tensor::{Adam, AdamConfig};
        let mut model = ParaGraphModel::new(ModelConfig::tiny(), 11);
        let sample = small_sample(0.75);
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 5e-3,
            ..AdamConfig::default()
        });
        let mut last_loss = f32::INFINITY;
        for _ in 0..150 {
            let (loss, grads) = model.loss_and_gradients(&sample);
            last_loss = loss;
            adam.begin_step();
            for (key, (param, grad)) in model
                .parameters_mut()
                .into_iter()
                .zip(grads.iter())
                .enumerate()
            {
                adam.step(key, param, grad);
            }
        }
        assert!(
            last_loss < 1e-3,
            "model failed to overfit a single sample, final loss {last_loss}"
        );
    }
}
